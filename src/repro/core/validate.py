"""Validation of EMPROF output against simulator ground truth.

Implements the paper's two accuracy metrics (Table II / Table III):

* **miss accuracy** - how close the number of detected stalls is to
  the reference count.  For microbenchmarks the reference is the
  engineered TM; for simulator runs it is the ground-truth LLC miss
  count (the paper compares against misses, accepting that hidden and
  overlapped misses cause principled undercounting, Section III-B).
* **stall accuracy** - how close the total detected stall cycles are
  to the ground-truth memory-stall cycles.

Beyond the paper's scalar accuracies, :func:`match_stalls` performs an
interval-level matching (precision / recall / per-stall duration
error), which is what gives the scalar numbers diagnostic teeth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..sim.trace import GroundTruth
from .events import DetectedStall, ProfileReport


def count_accuracy(reported: float, expected: float) -> float:
    """The paper's accuracy metric: 1 - |reported - expected| / expected.

    Clamped to [0, 1]; an expected count of zero yields 1.0 only for a
    zero report.
    """
    # Counts are integer-valued floats; exact zero is the documented
    # "nothing expected/reported" sentinel, not a computed quantity.
    if expected == 0:  # emlint: disable=float-equality
        return 1.0 if reported == 0 else 0.0  # emlint: disable=float-equality
    return max(0.0, 1.0 - abs(reported - expected) / expected)


def merge_intervals(intervals: np.ndarray, max_gap: float) -> np.ndarray:
    """Merge [begin, end) rows separated by gaps <= ``max_gap``.

    Ground-truth stalls separated by less than one signal sample are
    indistinguishable to any detector operating on that signal; the
    validator merges them before matching so the comparison is against
    what is *observable*, mirroring the paper's MISS-group accounting
    (Section II-B).
    """
    iv = np.asarray(intervals, dtype=np.float64)
    if iv.size == 0:
        return iv.reshape(0, 2)
    order = np.argsort(iv[:, 0])
    iv = iv[order]
    begins = iv[:, 0]
    ends = iv[:, 1]
    # A new group starts where the begin clears the running maximum of
    # all earlier ends by more than max_gap.  The global running max is
    # interchangeable with the per-group one here: once a group
    # boundary is drawn, every later (sorted) begin clears all earlier
    # ends by construction, so the two maxima decide identically.
    running_end = np.maximum.accumulate(ends)
    new_group = np.empty(len(iv), dtype=bool)
    new_group[0] = True
    new_group[1:] = begins[1:] - running_end[:-1] > max_gap
    group_starts = np.flatnonzero(new_group)
    return np.column_stack(
        (begins[group_starts], np.maximum.reduceat(ends, group_starts))
    )


@dataclass(frozen=True)
class MatchResult:
    """Interval-level matching between detected and true stalls.

    Attributes:
        true_positives: detected stalls overlapping a true stall.
        false_positives: detected stalls overlapping nothing.
        false_negatives: true stalls no detection overlapped.
        precision / recall: the usual ratios (1.0 for empty sides).
        duration_errors: per-matched-stall (detected - true) duration,
            in cycles.
    """

    true_positives: int
    false_positives: int
    false_negatives: int
    precision: float
    recall: float
    duration_errors: np.ndarray

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def match_stalls(
    detected: Sequence[DetectedStall],
    true_intervals: np.ndarray,
    tolerance_cycles: float = 0.0,
) -> MatchResult:
    """Greedy interval matching of detections to ground truth.

    A detection matches a true stall when their intervals (each padded
    by ``tolerance_cycles``) overlap.  Each true stall absorbs every
    detection overlapping it (a long true stall fragmented into two
    dips counts one TP and no FP, but contributes a duration error).
    """
    truth = np.asarray(true_intervals, dtype=np.float64).reshape(-1, 2)
    det = sorted(detected, key=lambda s: s.begin_cycle)
    order = np.argsort(truth[:, 0]) if len(truth) else np.array([], dtype=int)
    truth = truth[order]

    n_truth = len(truth)
    n_det = len(det)
    begin = np.asarray([s.begin_cycle for s in det]) - tolerance_cycles
    end = np.asarray([s.end_cycle for s in det]) + tolerance_cycles
    durations = np.asarray([s.duration_cycles for s in det])

    if n_truth and n_det:
        # Detection i absorbs the contiguous truth range [lo_i, hi_i):
        # from the first truth still alive at its (padded) begin to the
        # first truth starting at/after its (padded) end.  Truth begins
        # are sorted; truth ends need a scan since they are not.
        alive = truth[:, 1][None, :] > begin[:, None]
        lo = np.where(alive.any(axis=1), alive.argmax(axis=1), n_truth)
        hi = np.searchsorted(truth[:, 0], end, side="left")
    else:
        lo = np.full(n_det, n_truth, dtype=np.intp)
        hi = np.zeros(n_det, dtype=np.intp)

    hit = hi > lo
    fp = int(np.count_nonzero(~hit))
    counts = np.maximum(hi - lo, 0)
    # Expand the per-detection ranges into (detection, truth) pairs in
    # detection order, so the per-truth duration sums accumulate in
    # exactly the greedy sweep's float-addition order.
    det_idx = np.repeat(np.arange(n_det), counts)
    offsets = np.arange(int(counts.sum())) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    truth_idx = np.repeat(lo, counts) + offsets
    truth_detected_cycles = np.bincount(
        truth_idx, weights=durations[det_idx], minlength=n_truth
    )
    matched_truth = np.zeros(n_truth, dtype=bool)
    matched_truth[truth_idx] = True
    tp = int(np.count_nonzero(matched_truth))
    fn = int(np.count_nonzero(~matched_truth))
    n_det_groups = tp + fp
    precision = tp / n_det_groups if n_det_groups else 1.0
    recall = tp / len(truth) if len(truth) else 1.0
    errors = (
        truth_detected_cycles[matched_truth] - (truth[matched_truth, 1] - truth[matched_truth, 0])
        if len(truth)
        else np.array([])
    )
    return MatchResult(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        precision=precision,
        recall=recall,
        duration_errors=np.asarray(errors, dtype=np.float64),
    )


@dataclass(frozen=True)
class ValidationResult:
    """Full validation of one profile against ground truth.

    Attributes:
        miss_accuracy: paper metric vs. the raw ground-truth LLC miss
            count (Table III "Miss Accuracy").
        group_accuracy: same metric vs. observable stall groups - what
            a perfect detector of stalls could at best achieve.
        stall_accuracy: paper metric on total stall cycles (Table III
            "Stall Accuracy").
        detected_misses / true_misses / true_groups: the raw counts.
        detected_stall_cycles / true_stall_cycles: the raw totals.
        match: interval-level matching detail.
    """

    miss_accuracy: float
    group_accuracy: float
    stall_accuracy: float
    detected_misses: int
    true_misses: int
    true_groups: int
    detected_stall_cycles: float
    true_stall_cycles: float
    match: MatchResult


def validate_profile(
    report: ProfileReport,
    truth: GroundTruth,
    sample_period_cycles: Optional[float] = None,
    window_cycles: Optional[Tuple[float, float]] = None,
) -> ValidationResult:
    """Compare an EMPROF report to simulator ground truth.

    Args:
        report: EMPROF's output.
        truth: the simulator's ground-truth records.
        sample_period_cycles: cycles per signal sample; ground-truth
            stalls closer than this are merged before matching (they
            are unobservable as separate dips).  Defaults to the
            report's own sample period.
        window_cycles: optional (begin, end) restriction; both sides
            are filtered to it (used for the microbenchmark's
            measurement window).
    """
    period = (
        sample_period_cycles
        if sample_period_cycles is not None
        else report.sample_period_cycles
    )
    intervals = truth.stall_intervals().astype(np.float64)
    misses = truth.miss_count()
    stalls: List[DetectedStall] = list(report.stalls)

    if window_cycles is not None:
        lo, hi = window_cycles
        keep = (intervals[:, 0] < hi) & (intervals[:, 1] > lo) if len(intervals) else np.array([], dtype=bool)
        intervals = intervals[keep] if len(intervals) else intervals
        misses = sum(1 for m in truth.misses if lo <= m.detect_cycle < hi)
        stalls = [s for s in stalls if lo <= 0.5 * (s.begin_cycle + s.end_cycle) < hi]

    merged = merge_intervals(intervals, max_gap=period)
    true_groups = len(merged)
    true_cycles = float((merged[:, 1] - merged[:, 0]).sum()) if len(merged) else 0.0
    detected_cycles = float(sum(s.duration_cycles for s in stalls))

    return ValidationResult(
        miss_accuracy=count_accuracy(len(stalls), misses),
        group_accuracy=count_accuracy(len(stalls), true_groups),
        stall_accuracy=count_accuracy(detected_cycles, true_cycles),
        detected_misses=len(stalls),
        true_misses=misses,
        true_groups=true_groups,
        detected_stall_cycles=detected_cycles,
        true_stall_cycles=true_cycles,
        match=match_stalls(stalls, merged, tolerance_cycles=period),
    )
