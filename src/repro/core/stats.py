"""Latency statistics over detected stalls.

Feeds the histogram of Fig. 11 (stall-latency distribution per device)
and the per-region aggregation behind Table V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .events import DetectedStall


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of stall latencies (in cycles)."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    maximum: float
    total: float

    @classmethod
    def from_latencies(cls, latencies: np.ndarray) -> "LatencySummary":
        """Build a summary; all-zero for an empty input."""
        lat = np.asarray(latencies, dtype=np.float64)
        if lat.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=int(lat.size),
            mean=float(lat.mean()),
            median=float(np.median(lat)),
            p95=float(np.percentile(lat, 95)),
            p99=float(np.percentile(lat, 99)),
            maximum=float(lat.max()),
            total=float(lat.sum()),
        )


def latency_histogram(
    latencies: np.ndarray,
    bin_cycles: float = 20.0,
    max_cycles: float = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of stall latencies (the Fig. 11 series).

    Args:
        latencies: stall durations in cycles.
        bin_cycles: histogram bin width; defaults to the signal's
            native 20-cycle resolution.
        max_cycles: upper edge; defaults to the largest latency
            rounded up to a bin boundary.

    Returns:
        (bin_edges, counts) with ``len(edges) == len(counts) + 1``.
    """
    if bin_cycles <= 0:
        raise ValueError("bin width must be positive")
    lat = np.asarray(latencies, dtype=np.float64)
    if lat.size == 0:
        edges = np.array([0.0, bin_cycles])
        return edges, np.zeros(1, dtype=np.int64)
    top = max_cycles if max_cycles is not None else float(lat.max())
    nbins = max(1, int(np.ceil(top / bin_cycles)))
    edges = np.arange(nbins + 1, dtype=np.float64) * bin_cycles
    counts, _ = np.histogram(np.clip(lat, 0, edges[-1] - 1e-9), bins=edges)
    return edges, counts


def tail_fraction(latencies: np.ndarray, threshold_cycles: float) -> float:
    """Fraction of stalls at least ``threshold_cycles`` long.

    The paper's Fig. 11 discussion compares the thickness of the
    latency tail across devices; this is the scalar version of that
    comparison.
    """
    lat = np.asarray(latencies, dtype=np.float64)
    if lat.size == 0:
        return 0.0
    return float(np.count_nonzero(lat >= threshold_cycles)) / lat.size


def stalls_summary(stalls: Sequence[DetectedStall]) -> LatencySummary:
    """Latency summary directly from detected stall events."""
    return LatencySummary.from_latencies(
        np.array([s.duration_cycles for s in stalls], dtype=np.float64)
    )
