"""Refresh-coincident stall analysis.

Section III-C: "a stall for an LLC miss that coincides with a memory
refresh lasts approximately 2-3 us, and this situation occurs
approximately at least every 70 us ... Since these stalls do affect
program performance and (especially) the tail latency of memory
accesses, we count them (and account for their performance impact)
separately."

:func:`detect_stalls` already flags dips beyond a duration threshold
as refresh-coincident; this module aggregates them and estimates the
underlying refresh period from their spacing - a useful cross-check
that what was classified really is periodic refresh activity and not,
say, OS preemption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .events import DetectedStall


@dataclass(frozen=True)
class RefreshStats:
    """Aggregate view of refresh-coincident stalls in one profile.

    Attributes:
        count: number of refresh-classified stalls.
        total_cycles: their combined duration.
        mean_duration_cycles: average duration (0 when count is 0).
        estimated_interval_cycles: median spacing between consecutive
            refresh stalls, or None with fewer than two events.
        fraction_of_stalls: refresh stalls as a fraction of all stalls.
    """

    count: int
    total_cycles: float
    mean_duration_cycles: float
    estimated_interval_cycles: Optional[float]
    fraction_of_stalls: float


def refresh_stats(stalls: Sequence[DetectedStall]) -> RefreshStats:
    """Summarize the refresh-coincident stalls among ``stalls``."""
    refresh = [s for s in stalls if s.is_refresh]
    count = len(refresh)
    total = float(sum(s.duration_cycles for s in refresh))
    mean = total / count if count else 0.0
    interval: Optional[float] = None
    if count >= 2:
        begins = np.array([s.begin_cycle for s in refresh])
        gaps = np.diff(np.sort(begins))
        if len(gaps):
            interval = float(np.median(gaps))
    frac = count / len(stalls) if stalls else 0.0
    return RefreshStats(
        count=count,
        total_cycles=total,
        mean_duration_cycles=mean,
        estimated_interval_cycles=interval,
        fraction_of_stalls=frac,
    )


def split_by_refresh(
    stalls: Sequence[DetectedStall],
) -> "tuple[List[DetectedStall], List[DetectedStall]]":
    """(ordinary, refresh_coincident) partition of ``stalls``.

    The paper reports the two populations separately because refresh
    collisions dominate the tail of the access-latency distribution.
    """
    ordinary = [s for s in stalls if not s.is_refresh]
    refresh = [s for s in stalls if s.is_refresh]
    return ordinary, refresh
