"""Experimental-device presets (Table I)."""

from .models import (
    sesc,
    ALCATEL,
    DEVICE_NAMES,
    OLIMEX,
    SAMSUNG,
    alcatel,
    by_name,
    default_channel,
    olimex,
    samsung,
)

__all__ = [
    "sesc",
    "alcatel",
    "samsung",
    "olimex",
    "by_name",
    "default_channel",
    "ALCATEL",
    "SAMSUNG",
    "OLIMEX",
    "DEVICE_NAMES",
]
