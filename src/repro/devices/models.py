"""Device presets reproducing Table I plus the paper's stated facts.

|           | Alcatel Ideal     | Samsung Centura | Olimex A13        |
|-----------|-------------------|-----------------|-------------------|
| Processor | Snapdragon MSM8909| MSM7625A        | Allwinner A13 SoC |
| Frequency | 1.1 GHz           | 800 MHz         | 1.008 GHz         |
| #Cores    | 4                 | 1               | 1                 |
| ARM core  | Cortex-A7         | Cortex-A5       | Cortex-A8         |

Facts from Section VI-A folded into the configs:

* Alcatel has a 1 MB LLC; Samsung and Olimex have 256 KB.
* Samsung's processor has a hardware prefetcher; the others don't.
* Main-memory latencies in *nanoseconds* are very similar across
  devices, so the higher-clocked parts see more stall *cycles* per
  miss.
* The phones run a full Android stack on shared DRAM (the Alcatel has
  three more cores), so they see more memory contention than the
  bare-bones IoT board - the source of their thicker stall-latency
  tails in Fig. 11.
* Olimex stalls from most LLC misses last around 300 ns (Section
  III-C) -> ~280-cycle device latency + controller transit.
* Refresh collisions on the Olimex board: a 2-3 us stall at least
  every ~70 us (Fig. 5).

Each factory also exposes a per-device probe/channel default via
:func:`default_channel`, since phone mainboards are harder to probe
cleanly than the open Olimex board.
"""

from __future__ import annotations

from ..emsignal.channel import ChannelConfig
from ..sim.config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    MemoryConfig,
    PowerConfig,
)

KB = 1024

ALCATEL = "alcatel"
SAMSUNG = "samsung"
OLIMEX = "olimex"

DEVICE_NAMES = (ALCATEL, SAMSUNG, OLIMEX)


def olimex(bin_cycles: int = 20) -> MachineConfig:
    """Olimex A13-OLinuXino-MICRO: Cortex-A8 @ 1.008 GHz, 256 KB LLC.

    The A8 is a dual-issue in-order core.  Memory is the on-board
    H5TQ2G63BFR DDR3 behind a lightweight controller: ~280 ns load-to-
    use, with the 70 us / 2.4 us burst-refresh behaviour the paper
    measured.
    """
    return MachineConfig(
        name=OLIMEX,
        clock_hz=1.008e9,
        core=CoreConfig(width=2, mshr_entries=4, runahead=1024, fetch_buffer=8),
        l1i=CacheConfig(32 * KB, associativity=4, hit_latency=1),
        l1d=CacheConfig(32 * KB, associativity=4, hit_latency=1),
        llc=CacheConfig(256 * KB, associativity=8, hit_latency=20),
        memory=MemoryConfig(
            access_latency=282,
            num_banks=8,
            bank_busy=32,
            refresh_interval=70_560,  # 70 us at 1.008 GHz
            refresh_duration=2_400,  # ~2.4 us
            contention_prob=0.005,  # bare Linux, occasional DMA
            contention_mean_cycles=150.0,
        ),
        power=PowerConfig(bin_cycles=bin_cycles),
        prefetcher_enabled=False,
    )


def samsung(bin_cycles: int = 16) -> MachineConfig:
    """Samsung Galaxy Centura SCH-S738C: Cortex-A5 @ 800 MHz, 256 KB LLC.

    The A5 is a single-issue in-order core *with* a hardware
    prefetcher (Section VI-A).  Default power bins are 16 cycles so the
    native trace rate is 50 MHz, like the other devices.
    """
    return MachineConfig(
        name=SAMSUNG,
        clock_hz=0.8e9,
        core=CoreConfig(width=1, mshr_entries=2, runahead=512, fetch_buffer=4),
        l1i=CacheConfig(16 * KB, associativity=4, hit_latency=1),
        l1d=CacheConfig(16 * KB, associativity=4, hit_latency=1),
        llc=CacheConfig(256 * KB, associativity=8, hit_latency=18),
        memory=MemoryConfig(
            access_latency=280,  # ~350 ns at 0.8 GHz (older, slower LPDDR)
            num_banks=8,
            bank_busy=26,
            refresh_interval=56_000,  # 70 us at 0.8 GHz
            refresh_duration=1_920,
            contention_prob=0.04,  # Android background services
            contention_mean_cycles=200.0,
        ),
        power=PowerConfig(bin_cycles=bin_cycles),
        prefetcher_enabled=True,
        prefetch_degree=4,
    )


def alcatel(bin_cycles: int = 22) -> MachineConfig:
    """Alcatel Ideal: quad Cortex-A7 @ 1.1 GHz, 1 MB LLC.

    Dual-issue in-order A7 with the large 1 MB LLC that gives this
    phone its much lower miss counts in Table IV.  LPDDR memory is a
    bit faster in nanoseconds, and three sibling cores plus Android
    services contend for it.  Default power bins are 22 cycles so the
    native trace rate is 50 MHz.
    """
    return MachineConfig(
        name=ALCATEL,
        clock_hz=1.1e9,
        core=CoreConfig(width=2, mshr_entries=4, runahead=1024, fetch_buffer=8),
        l1i=CacheConfig(32 * KB, associativity=4, hit_latency=1),
        l1d=CacheConfig(32 * KB, associativity=4, hit_latency=1),
        llc=CacheConfig(1024 * KB, associativity=16, hit_latency=24),
        memory=MemoryConfig(
            access_latency=150,  # ~136 ns at 1.1 GHz (newer LPDDR3)
            num_banks=8,
            bank_busy=28,
            refresh_interval=77_000,  # 70 us at 1.1 GHz
            refresh_duration=2_640,
            contention_prob=0.03,  # three sibling cores + Android
            contention_mean_cycles=260.0,
        ),
        power=PowerConfig(bin_cycles=bin_cycles),
        prefetcher_enabled=False,
    )


def sesc(bin_cycles: int = 20) -> MachineConfig:
    """The paper's SESC simulator configuration (Section III-B / V-C).

    "We model a 4-wide in-order processor, with two levels of caches
    with random replacement policies", collecting power per 20-cycle
    interval (50 MHz at 1 GHz).  The cache geometry mimics the Olimex
    A13 board; the memory model is the *simplified* one the paper used
    - no refresh and no contention, which is why refresh stalls only
    appear on the real devices (Section III-C).
    """
    return MachineConfig(
        name="sesc",
        clock_hz=1.0e9,
        core=CoreConfig(width=4, mshr_entries=4, runahead=2048, fetch_buffer=12),
        l1i=CacheConfig(32 * KB, associativity=4, hit_latency=1),
        l1d=CacheConfig(32 * KB, associativity=4, hit_latency=1),
        llc=CacheConfig(256 * KB, associativity=8, hit_latency=20),
        memory=MemoryConfig(
            access_latency=280,
            num_banks=8,
            bank_busy=32,
            refresh_enabled=False,
        ),
        power=PowerConfig(bin_cycles=bin_cycles),
        prefetcher_enabled=False,
    )


_FACTORIES = {ALCATEL: alcatel, SAMSUNG: samsung, OLIMEX: olimex, "sesc": sesc}


def by_name(name: str, **kwargs) -> MachineConfig:
    """Look up a device preset by its Table I name."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; expected one of {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def default_channel(name: str, seed: int = 0) -> ChannelConfig:
    """Per-device probe/channel defaults.

    The open Olimex board allows close, clean probe placement; the
    phones are probed through their cases/shields, with lower SNR and
    more supply drift (battery + PMIC activity).
    """
    name = name.lower()
    if name == OLIMEX:
        return ChannelConfig(probe_gain=1.0, snr_db=26.0, drift_amplitude=0.04, seed=seed)
    if name == SAMSUNG:
        return ChannelConfig(probe_gain=0.5, snr_db=21.0, drift_amplitude=0.08, seed=seed)
    if name == ALCATEL:
        return ChannelConfig(probe_gain=0.6, snr_db=20.0, drift_amplitude=0.08, seed=seed)
    raise ValueError(f"unknown device {name!r}; expected one of {sorted(_FACTORIES)}")
