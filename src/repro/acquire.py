"""Signal sources: where captures come from.

EMPROF only needs a :class:`~repro.emsignal.receiver.Capture`; this
module abstracts over where one originates so analysis code is
agnostic to the acquisition path:

* :class:`SimulatedSource` - the repository's laptop-scale apparatus
  (machine model + EM chain);
* :class:`FileSource` - a previously recorded ``.npz`` capture (from
  this library, or converted from a real measurement);
* :class:`SdrSource` - the seam for physical hardware.  The paper's
  bench (near-field probe -> ThinkRF WSA5000 -> PX14400 digitizers)
  or any SoapySDR-compatible receiver slots in here; since this
  repository ships no hardware drivers, instantiating it raises with
  instructions for writing the adapter.

All sources are deterministic given their construction arguments
(``SimulatedSource`` takes explicit seeds), so an analysis over any
source is reproducible.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Protocol, Union, runtime_checkable

from . import io as repro_io
from .devices.models import default_channel
from .errors import HardwareMissingError
from .emsignal.apparatus import Apparatus
from .emsignal.channel import ChannelConfig
from .emsignal.receiver import Capture, MHZ
from .emsignal.synth import EmissionModel
from .sim.config import MachineConfig
from .sim.machine import Machine
from .workloads.base import Workload


@runtime_checkable
class SignalSource(Protocol):
    """Anything that can produce a capture."""

    def capture(self) -> Capture:
        """Acquire (or load, or synthesize) one capture."""
        ...  # pragma: no cover - protocol


class SimulatedSource:
    """Capture from the simulated apparatus (the repository default).

    Args:
        workload: what the target executes.
        device: machine configuration (defaults to the Olimex model).
        bandwidth_hz: receiver measurement bandwidth.
        channel: probe/channel config; defaults to the device's.
        seed: machine + channel randomness.
    """

    def __init__(
        self,
        workload: Workload,
        device: Optional[MachineConfig] = None,
        bandwidth_hz: float = 40 * MHZ,
        channel: Optional[ChannelConfig] = None,
        emission: Optional[EmissionModel] = None,
        seed: int = 0,
    ):
        from .devices.models import olimex

        self.workload = workload
        self.device = device if device is not None else olimex()
        self.bandwidth_hz = bandwidth_hz
        self.channel = (
            channel
            if channel is not None
            else default_channel(self.device.name, seed=seed)
        )
        self.emission = emission if emission is not None else EmissionModel()
        self.seed = seed
        self.last_result = None  # SimulationResult of the latest capture()

    def capture(self) -> Capture:
        """Run the workload and record its EM capture.

        The simulation's ground truth is kept on ``last_result`` for
        validation flows; signal-only consumers can ignore it.
        """
        machine = Machine(self.device, seed=self.seed)
        result = machine.run(self.workload)
        self.last_result = result
        apparatus = Apparatus(
            emission=self.emission,
            channel=self.channel,
            bandwidth_hz=self.bandwidth_hz,
        )
        return apparatus.measure(result)


class FileSource:
    """Capture loaded from a saved ``.npz`` file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def capture(self) -> Capture:
        """Load the capture from disk."""
        return repro_io.load_capture(self.path)


class SdrSource:
    """Placeholder for a physical SDR front end.

    A real adapter must tune to the target's clock frequency, capture
    ``bandwidth_hz`` of complex baseband, compute the magnitude, and
    return a :class:`Capture` with ``sample_rate_hz == bandwidth_hz``.
    This repository is hardware-free, so construction always raises
    :class:`repro.errors.HardwareMissingError` - a *permanent*
    acquisition failure, so retry policies
    (:func:`repro.experiments.runner.acquire_with_retry`) fail fast on
    it instead of retrying, unlike
    :class:`repro.errors.TransientAcquisitionError`.
    """

    ADAPTER_HINT = (
        "no SDR driver is bundled; implement SignalSource.capture() over "
        "your receiver (e.g. SoapySDR: tune to clock_hz, stream "
        "bandwidth_hz of CF32, take np.abs, wrap in "
        "repro.emsignal.receiver.Capture) and pass that object wherever a "
        "SignalSource is accepted"
    )

    def __init__(self, *args, **kwargs):
        raise HardwareMissingError(SdrSource.ADAPTER_HINT)


def profile_source(source: SignalSource, config=None):
    """Convenience: acquire from any source and profile it.

    Returns (capture, report).
    """
    from .core.profiler import Emprof

    capture = source.capture()
    report = Emprof.from_capture(capture, config=config).profile()
    return capture, report
