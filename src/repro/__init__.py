"""EMPROF reproduction: memory profiling via EM emanations (MICRO 2018).

The package is organized as the paper's system is:

* :mod:`repro.sim` - SESC-like cycle-level machine producing a power
  side-channel trace plus ground-truth miss/stall records.
* :mod:`repro.emsignal` - EM signal chain: emission synthesis, probe /
  channel distortions, bandwidth-limited receiver, DSP helpers.
* :mod:`repro.core` - EMPROF itself: normalization, stall detection,
  profiling reports, validation metrics.
* :mod:`repro.workloads` - microbenchmark, SPEC CPU2000 models, boot.
* :mod:`repro.attribution` - spectral code attribution (Table V).
* :mod:`repro.baselines` - perf-style sampled hardware counters.
* :mod:`repro.devices` - Alcatel / Samsung / Olimex presets (Table I).
* :mod:`repro.experiments` - drivers regenerating every table/figure.

Quickstart::

    from repro import Emprof, Microbenchmark, simulate
    from repro.devices import olimex

    result = simulate(Microbenchmark(total_misses=256, consecutive_misses=5),
                      olimex())
    profile = Emprof.from_simulation(result).profile()
    print(profile.summary())
"""

from .core.profiler import Emprof
from .core.streaming import StreamingEmprof
from .sim.machine import Machine, SimulationResult, simulate
from .workloads.microbenchmark import Microbenchmark

__version__ = "1.0.0"

__all__ = [
    "Emprof",
    "StreamingEmprof",
    "Machine",
    "SimulationResult",
    "simulate",
    "Microbenchmark",
    "__version__",
]
