"""Typed exception hierarchy for acquisition and capture handling.

Real measurement campaigns fail in qualitatively different ways - the
probe is unplugged (permanent), the digitizer overruns (transient), a
capture file on disk is truncated (corrupt) - and callers need to
branch on *which* happened: retry transient failures, skip permanent
ones, quarantine corrupt files.  Bare ``RuntimeError``/``KeyError``
leaking out of :mod:`repro.io` or a signal source makes that
impossible, so every acquisition-path failure is wrapped in one of the
classes below.

The hierarchy deliberately multiple-inherits from the builtin types
the previous code raised (``NotImplementedError`` for the missing SDR
adapter, ``ValueError`` for format mismatches) so that pre-existing
``except`` clauses keep working while new code branches on the typed
classes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union


class EmprofError(Exception):
    """Base class for all typed EMPROF errors."""


class AcquisitionError(EmprofError, RuntimeError):
    """A capture could not be acquired (hardware, driver, or file).

    Subclasses distinguish *permanent* failures (missing hardware,
    corrupt files - retrying cannot help) from *transient* ones
    (overruns, timeouts - a bounded retry is the right response).
    The :attr:`transient` flag is what retry policies branch on.
    """

    #: Whether retrying the acquisition can plausibly succeed.
    transient: bool = False


class HardwareMissingError(AcquisitionError, NotImplementedError):
    """No physical receiver / driver is available (permanent).

    Inherits ``NotImplementedError`` because that is what the
    driverless :class:`repro.acquire.SdrSource` historically raised.
    """

    transient = False


class TransientAcquisitionError(AcquisitionError):
    """The source failed in a way a retry may fix (overrun, timeout)."""

    transient = True


class CorruptCaptureError(AcquisitionError, ValueError):
    """A capture/ground-truth file is truncated, corrupt, or malformed.

    Attributes:
        path: the offending file, when known.

    Inherits ``ValueError`` because format mismatches historically
    raised that; callers catching ``ValueError`` still work.
    """

    transient = False

    def __init__(
        self, message: str, path: Optional[Union[str, Path]] = None
    ):
        self.path = None if path is None else str(path)
        if self.path is not None and self.path not in message:
            message = f"{message} (file: {self.path})"
        super().__init__(message)


class CampaignError(EmprofError, RuntimeError):
    """An experiment campaign's checkpoint state is unusable."""


class ServiceError(EmprofError, RuntimeError):
    """The campaign daemon was misused or handed an unusable request.

    Raised by :mod:`repro.experiments.service` for conditions the
    *caller* must fix: submitting after a drain was requested, a job
    payload naming an unknown workload or device, starting a service
    twice.  Protocol handlers catch it and turn it into an
    ``{"ok": false, "error": ...}`` response instead of dropping the
    connection.
    """


class JobInterruptedError(EmprofError, RuntimeError):
    """A supervised campaign job's worker died, hung, or timed out.

    Never raised through user code - the supervisor synthesizes it to
    *describe* why a lease was revoked (the message lands in the
    manifest's ``error`` field and the requeue ledger record), keeping
    watchdog verdicts distinguishable from in-run failures
    (:class:`AcquisitionError`), which are terminal and not requeued.
    """
