"""Setup shim; all metadata lives in setup.cfg.

The project intentionally ships setup.cfg + setup.py and no
pyproject.toml: the presence of pyproject.toml makes pip build in an
isolated environment that must download setuptools/wheel, which fails
offline.  The legacy path installs editable with no network at all.
"""

from setuptools import setup

setup()
