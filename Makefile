# Convenience targets for the EMPROF reproduction.

PYTHON ?= python

.PHONY: install test lint lint-cold regress check dashboard chaos chaos-service bench bench-all bench-engine trace watch-demo explain-demo reproduce examples selftest clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

# Whole-program analysis (per-file + cross-module rules) with the
# incremental content-hash cache; known debt lives in the baseline.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint src/ --baseline .emlint_baseline.json

# Cache-busted run: proves the cold path and re-validates every file.
lint-cold:
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint src/ --baseline .emlint_baseline.json --no-cache

# Judge the run ledger against its own recent history; exits 3 on a
# statistically significant slowdown, 0 when stable or when the ledger
# does not exist yet (fresh checkout).
regress:
	PYTHONPATH=src $(PYTHON) -m repro obs regress LEDGER_obs.jsonl --allow-missing

# The default verification flow: static analysis + perf history +
# the engine differential harness (docs/engine.md equivalence
# contract: the vectorized engine is bit-identical to the seed) +
# the supervised-service chaos suite (docs/service.md invariants).
check: lint regress chaos-service
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_engine_equivalence.py tests/test_engine_chunks.py -q

# Render the run observatory over the ledger history.
dashboard:
	PYTHONPATH=src $(PYTHON) -m repro obs dashboard LEDGER_obs.jsonl -o dashboard_obs.html

# Fault-injection suite: impairment injection, quality gating, the
# bounded-error chaos property test, retry and campaign resume.
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_faults_inject.py tests/test_faults_pipeline.py tests/test_faults_chaos.py tests/test_faults_runner.py -q

# Supervisor/daemon chaos suite: kill -9 and SIGSTOP'd workers,
# poison-spec quarantine, lease timeouts, graceful SIGTERM, and the
# 100-run exactly-once acceptance scenario (docs/service.md).
chaos-service:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_campaign_supervisor.py tests/test_service.py -q

# Quick perf-tracking benches; writes BENCH_obs.json (latest session,
# atomic) and appends per-bench history to LEDGER_obs.jsonl.
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_perf_baseline.py benchmarks/test_streaming_throughput.py --benchmark-only -s

# The full figure/table regeneration suite (slow).
bench-all:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Engine throughput: batch vs streaming vs chunked vs the frozen seed
# per-sample loop; records the >=5x speedup claim into the ledger.
bench-engine:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_engine_throughput.py --benchmark-only -s

# Capture + profile one microbenchmark with observability on; drops
# spans.json (chrome://tracing compatible via --trace-format chrome),
# metrics.json into results/.
trace:
	mkdir -p results
	PYTHONPATH=src EMPROF_OBS=1 $(PYTHON) -m repro capture --workload micro -o results/trace_capture.npz
	PYTHONPATH=src EMPROF_OBS=1 $(PYTHON) -m repro profile results/trace_capture.npz --trace-out results/spans.json --metrics-out results/metrics.json

# Self-contained live-telemetry demo: a synthetic streaming producer,
# the line-JSON status server, and the terminal watch client in one
# process.  No hardware, no prior state; exits on its own.
watch-demo:
	PYTHONPATH=src $(PYTHON) -m repro.obs.cli watch --demo

# Flight-recorder demo: build a faulted microbenchmark capture, then
# `repro explain` it — provenance cards on stdout, a self-contained
# HTML report at results/explain_demo.html, and the raw NDJSON
# decision log at results/explain_demo.flight.
explain-demo:
	PYTHONPATH=src $(PYTHON) examples/explain_demo.py

reproduce:
	$(PYTHON) -m repro reproduce -o results/

examples:
	@for s in examples/*.py; do echo "== $$s"; $(PYTHON) $$s || exit 1; done

selftest:
	$(PYTHON) -m repro selftest

# Removes derived artefacts only: the run ledger (LEDGER_obs.jsonl)
# is history, not output, and survives a clean.  The emlint cache is
# derived (content-hashed) and goes.
clean:
	rm -rf results/ .pytest_cache .benchmarks
	rm -f dashboard_obs.html .emlint_cache.json
	find . -name __pycache__ -type d -exec rm -rf {} +
