# Convenience targets for the EMPROF reproduction.

PYTHON ?= python

.PHONY: install test lint bench reproduce examples selftest clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

lint:
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint src/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

reproduce:
	$(PYTHON) -m repro reproduce -o results/

examples:
	@for s in examples/*.py; do echo "== $$s"; $(PYTHON) $$s || exit 1; done

selftest:
	$(PYTHON) -m repro selftest

clean:
	rm -rf results/ .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
