# Convenience targets for the EMPROF reproduction.

PYTHON ?= python

.PHONY: install test lint chaos bench bench-all trace reproduce examples selftest clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

lint:
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint src/

# Fault-injection suite: impairment injection, quality gating, the
# bounded-error chaos property test, retry and campaign resume.
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_faults_inject.py tests/test_faults_pipeline.py tests/test_faults_chaos.py tests/test_faults_runner.py -q

# Quick perf-tracking benches; writes BENCH_obs.json at the repo root.
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_perf_baseline.py benchmarks/test_streaming_throughput.py --benchmark-only -s

# The full figure/table regeneration suite (slow).
bench-all:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Capture + profile one microbenchmark with observability on; drops
# spans.json (chrome://tracing compatible via --trace-format chrome),
# metrics.json into results/.
trace:
	mkdir -p results
	PYTHONPATH=src EMPROF_OBS=1 $(PYTHON) -m repro capture --workload micro -o results/trace_capture.npz
	PYTHONPATH=src EMPROF_OBS=1 $(PYTHON) -m repro profile results/trace_capture.npz --trace-out results/spans.json --metrics-out results/metrics.json

reproduce:
	$(PYTHON) -m repro reproduce -o results/

examples:
	@for s in examples/*.py; do echo "== $$s"; $(PYTHON) $$s || exit 1; done

selftest:
	$(PYTHON) -m repro selftest

clean:
	rm -rf results/ .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
