"""Attribution-scheme comparison: spectral vs ZOP-style matching.

Section VI-D weighs the two attribution families: Spectral Profiling
gives loop-granularity attribution cheaply, while ZOP "can achieve
fine-grain attribution of signal time to code albeit that requires
much more computation so it may not be feasible for long stretches of
execution".  This bench quantifies both halves of that sentence on the
same synthetic signal: ZOP reconstructs the exact block sequence (the
finer result), at orders of magnitude more signal comparisons.
"""

import time

import numpy as np

from repro.attribution.spectral import SpectralProfiler
from repro.attribution.zop import ZopMatcher, sequence_accuracy

RATE = 50e6
BLOCK_LEN = 128
FREQS = {"A": 2.0, "B": 7.0, "C": 13.0}


def block(name, rng):
    t = np.arange(BLOCK_LEN)
    return (
        0.8
        + 0.15 * np.sin(2 * np.pi * FREQS[name] * t / BLOCK_LEN)
        + rng.normal(0, 0.01, BLOCK_LEN)
    )


def test_spectral_vs_zop_cost(once):
    def experiment():
        rng = np.random.default_rng(1)
        sequence = [["A", "B", "C"][int(v)] for v in rng.integers(0, 3, size=200)]
        signal = np.concatenate([block(name, rng) for name in sequence])

        # ZOP: per-block templates, full path reconstruction.
        zop = ZopMatcher(max_distance=0.5)
        for name in FREQS:
            zop.add_template(name, block(name, np.random.default_rng(99)))
        t0 = time.perf_counter()
        zr = zop.match(signal)
        zop_seconds = time.perf_counter() - t0
        zop_acc = sequence_accuracy(zr, sequence)

        # Spectral: one template spectrum per block, frame labelling.
        spectral = SpectralProfiler(window_samples=BLOCK_LEN, smoothing_frames=1)
        for name in FREQS:
            train = np.concatenate(
                [block(name, np.random.default_rng(7 + k)) for k in range(8)]
            )
            spectral.train(name, train, RATE)
        t0 = time.perf_counter()
        timeline = spectral.attribute(signal, RATE)
        spectral_seconds = time.perf_counter() - t0
        # Spectral granularity: fraction of block midpoints labelled right.
        hits = sum(
            1
            for i, name in enumerate(sequence)
            if timeline.region_at((i + 0.5) * BLOCK_LEN) == name
        )
        spectral_acc = hits / len(sequence)
        return {
            "zop_acc": zop_acc,
            "zop_seconds": zop_seconds,
            "zop_comparisons": zr.comparisons,
            "spectral_acc": spectral_acc,
            "spectral_seconds": spectral_seconds,
            "signal_samples": len(signal),
        }

    r = once(experiment)
    print("\nAttribution cost - spectral vs ZOP (200 blocks)")
    print(f"  signal    : {r['signal_samples']} samples")
    print(f"  ZOP       : path accuracy {100 * r['zop_acc']:.1f}%  "
          f"({r['zop_comparisons']} comparisons, {1e3 * r['zop_seconds']:.1f} ms)")
    print(f"  spectral  : block accuracy {100 * r['spectral_acc']:.1f}%  "
          f"({1e3 * r['spectral_seconds']:.1f} ms)")

    # ZOP reconstructs the path essentially exactly on a short burst.
    assert r["zop_acc"] > 0.95
    # Spectral labels most blocks right too (coarser but sufficient
    # for Table V-style reports).
    assert r["spectral_acc"] > 0.8
    # The cost asymmetry the paper calls out: ZOP touches every sample
    # once per hypothesis - far more work than one STFT pass.
    assert r["zop_comparisons"] > 2 * r["signal_samples"]
