"""Ablation A11: supply-voltage drift vs the moving min/max normalization.

Section IV: "the voltage provided by the profiled system's power
supply vary over time.  The impact ... is largely that signal strength
changes in magnitude over time.  EMPROF compensates for these effects
by tracking a moving minimum and maximum."

The sweep applies increasingly violent multiplicative drift to the
same capture and measures miss-count accuracy twice: with the moving
min/max normalization (EMPROF's design) and with a naive *global*
min/max normalization (the strawman the paper's design implicitly
rejects).  The moving window shrugs off drift the global scheme
cannot.
"""

import numpy as np

from repro.core.detect import detect_stalls
from repro.core.normalize import NormalizerConfig, normalize
from repro.core.profiler import Emprof, EmprofConfig
from repro.core.markers import find_marker_window
from repro.core.validate import count_accuracy
from repro.devices import olimex
from repro.emsignal.channel import ChannelConfig
from repro.experiments.runner import run_device
from repro.workloads import Microbenchmark

DRIFTS = (0.0, 0.1, 0.3, 0.6)


def global_normalize(signal: np.ndarray) -> np.ndarray:
    lo, hi = signal.min(), signal.max()
    if hi <= lo:
        return np.ones_like(signal)
    return (signal - lo) / (hi - lo)


def test_drift_compensation(once):
    workload = Microbenchmark(total_misses=512, consecutive_misses=8)

    def sweep():
        results = {}
        for drift in DRIFTS:
            channel = ChannelConfig(
                snr_db=30.0,
                drift_amplitude=drift,
                drift_period_s=0.4e-3,  # a few drift cycles per capture
                seed=3,
            )
            run = run_device(workload, olimex(), bandwidth_hz=40e6, channel=channel)
            # EMPROF path: moving min/max.
            prof = Emprof.from_capture(run.capture)
            window = find_marker_window(prof.signal, marker_min_samples=200)
            moving = prof.profile_window(
                window.begin_sample, window.end_sample
            ).miss_count
            # Strawman: one global normalization for the whole capture.
            norm = global_normalize(run.capture.magnitude)
            naive_all = detect_stalls(
                norm, run.capture.sample_period_cycles
            )
            naive = sum(
                1
                for s in naive_all
                if window.begin_sample <= s.begin_sample < window.end_sample
            )
            results[drift] = (
                count_accuracy(moving, workload.total_misses),
                count_accuracy(naive, workload.total_misses),
            )
        return results

    results = once(sweep)
    print("\nAblation A11 - supply drift vs normalization scheme (TM=512)")
    print(f"  {'drift':>6s} {'moving min/max':>15s} {'global min/max':>15s}")
    for drift, (moving, naive) in results.items():
        print(f"  {drift:6.2f} {100 * moving:14.2f}% {100 * naive:14.2f}%")

    # EMPROF's moving normalization holds through realistic drift
    # (supplies sag by percents, not halves)...
    for drift in (0.0, 0.1, 0.3):
        assert results[drift][0] > 0.97, f"moving min/max degraded at {drift}"
    # ...and still works at a brutal +-60% swing, where the global
    # strawman has long collapsed.
    assert results[0.6][0] > 0.8
    assert results[0.6][1] < results[0.6][0] - 0.2
    assert results[0.3][1] < 0.6  # global normalization is already gone
