"""Ablation A4: memory-level parallelism (MSHRs) vs miss undercount.

Section III-B's core caveat: misses whose latency overlaps other
misses or useful work produce fewer stalls than misses, so a
stall-based detector undercounts *misses* while still tracking their
performance impact.  The sweep runs bursts of independent loads (each
burst touches 6 cold lines back to back) against machines with 1-8
MSHRs: the serialized machine exposes every miss as its own stall,
while the MLP-capable machine overlaps them into few (or no) stalls
with far less total stall time.
"""

from dataclasses import replace

from repro.devices import sesc
from repro.experiments.runner import run_simulator
from repro.sim.isa import NO_CONSUMER, alu, branch, load
from repro.workloads.base import StreamWorkload

MSHRS = (1, 2, 4, 8)
BURSTS = 40
BURST_SIZE = 6


def burst_workload():
    def factory(config):
        pc = 0x1000
        base = 0x4000_0000
        for k in range(BURSTS):
            for j in range(BURST_SIZE):
                # Independent loads: only MSHR pressure can stall them.
                yield load(
                    pc + 4 * j,
                    base + (k * BURST_SIZE + j) * 8192 + 64,
                    dep=NO_CONSUMER,
                )
            for j in range(1500):
                yield alu(pc + 64 + 4 * (j % 16))
            yield branch(pc + 60)

    return StreamWorkload("mlp_bursts", factory, {0: "bursts"})


def test_mlp_vs_undercount(once):
    def sweep():
        results = {}
        for mshr in MSHRS:
            cfg = sesc()
            cfg = replace(cfg, core=replace(cfg.core, mshr_entries=mshr))
            run = run_simulator(burst_workload(), config=cfg)
            truth = run.result.ground_truth
            results[mshr] = {
                "misses": truth.miss_count(),
                "hidden": truth.hidden_miss_count(),
                "stall_groups": truth.memory_stall_count(),
                "stall_cycles": truth.memory_stall_cycles(),
                "detected": run.report.miss_count,
            }
        return results

    results = once(sweep)
    print("\nAblation A4 - MSHR count vs overlap undercounting (load bursts)")
    for mshr, r in results.items():
        cover = r["detected"] / max(1, r["misses"])
        print(
            f"  MSHRs={mshr}: misses={r['misses']:4d} hidden={r['hidden']:4d} "
            f"detected={r['detected']:4d} ({100 * cover:5.1f}%) "
            f"stall cycles={r['stall_cycles']:7d}"
        )

    total = BURSTS * BURST_SIZE
    # The miss population itself is MSHR-independent.
    for r in results.values():
        assert abs(r["misses"] - total) <= 2

    # Serialized machine: each burst is one contiguous wall of stalls
    # whose total time is ~ misses x latency; EMPROF reports one event
    # per burst (back-to-back misses are indistinguishable), but the
    # accounted stall time captures nearly the full serialized cost.
    assert results[1]["detected"] >= 0.9 * BURSTS
    lat = sesc().memory.access_latency
    assert results[1]["stall_cycles"] > 0.6 * total * lat

    # MLP machine: bursts overlap - almost everything is hidden, with
    # a small fraction of the serialized stall time and far fewer
    # detected events.
    assert results[8]["detected"] < 0.2 * results[1]["detected"]
    assert results[8]["stall_cycles"] < 0.1 * results[1]["stall_cycles"]
    assert results[8]["hidden"] > 3 * results[1]["hidden"]

    # Monotone trend in stall time as MLP grows.
    cycles = [results[m]["stall_cycles"] for m in MSHRS]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
