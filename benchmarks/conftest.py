"""Bench harness helpers.

Every bench regenerates one of the paper's tables or figures, prints
it in the paper's layout, and asserts its qualitative claims (who
wins, by roughly what factor, where the crossovers are).  Each bench
runs its experiment exactly once under pytest-benchmark timing.

Each run also executes with observability enabled against a clean
metrics registry, and the session persists two artefacts:

* ``BENCH_obs.json`` at the repo root - the latest session's
  snapshot (one entry per benchmark: wall time, metric snapshot,
  per-span timing aggregate), stamped with a schema version and the
  git revision, and written atomically (temp file + rename) so a
  crashed session never leaves a torn file;
* ``LEDGER_obs.jsonl`` at the repo root - one appended
  :class:`repro.obs.ledger.RunRecord` (kind ``bench``) per benchmark,
  accumulating history across sessions.  ``repro obs regress`` judges
  that history and ``repro obs dashboard`` renders it.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List

import pytest

from repro import obs
from repro.obs import ledger as obs_ledger

_BENCH_RESULTS: List[Dict[str, Any]] = []
_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_obs.json"
_LEDGER_PATH = _REPO_ROOT / obs_ledger.DEFAULT_LEDGER_NAME


@pytest.fixture()
def once(benchmark, request):
    """Run an experiment exactly once under benchmark timing."""

    def runner(func, *args, **kwargs):
        previous = obs.set_obs_enabled(True)
        obs.metrics.reset()
        obs.trace.reset()
        t0 = time.perf_counter()
        try:
            return benchmark.pedantic(
                func, args=args, kwargs=kwargs, rounds=1, iterations=1
            )
        finally:
            elapsed = time.perf_counter() - t0
            _BENCH_RESULTS.append(
                {
                    "benchmark": request.node.nodeid,
                    "wall_time_s": elapsed,
                    "metrics": obs.metrics.snapshot(),
                    "spans": obs.trace.aggregate(),
                }
            )
            obs.set_obs_enabled(previous)

    return runner


def pytest_sessionfinish(session, exitstatus):
    """Persist the per-benchmark observability artefacts, if any ran."""
    if not _BENCH_RESULTS:
        return
    payload = {
        "format": "repro-obs-bench",
        "schema_version": 1,
        "version": 1,
        "git_rev": obs_ledger.git_rev(),
        "benchmarks": _BENCH_RESULTS,
    }
    obs_ledger.atomic_write_json(_OUT_PATH, payload)
    records = [
        obs_ledger.record(
            kind="bench",
            label=entry["benchmark"],
            wall_time_s=entry["wall_time_s"],
            metrics=entry["metrics"],
            spans=entry["spans"],
        )
        for entry in _BENCH_RESULTS
    ]
    obs_ledger.RunLedger(_LEDGER_PATH).append_many(records)
