"""Bench harness helpers.

Every bench regenerates one of the paper's tables or figures, prints
it in the paper's layout, and asserts its qualitative claims (who
wins, by roughly what factor, where the crossovers are).  Each bench
runs its experiment exactly once under pytest-benchmark timing.

Each run also executes with observability enabled against a clean
metrics registry, and the session writes ``BENCH_obs.json`` at the
repo root: one entry per benchmark with its wall time, the metric
snapshot it produced, and a per-span timing aggregate.  That file is
the machine-readable companion to the printed tables - diffable
across commits to spot throughput or workload-shape regressions.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List

import pytest

from repro import obs

_BENCH_RESULTS: List[Dict[str, Any]] = []
_OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


@pytest.fixture()
def once(benchmark, request):
    """Run an experiment exactly once under benchmark timing."""

    def runner(func, *args, **kwargs):
        previous = obs.set_obs_enabled(True)
        obs.metrics.reset()
        obs.trace.reset()
        t0 = time.perf_counter()
        try:
            return benchmark.pedantic(
                func, args=args, kwargs=kwargs, rounds=1, iterations=1
            )
        finally:
            elapsed = time.perf_counter() - t0
            _BENCH_RESULTS.append(
                {
                    "benchmark": request.node.nodeid,
                    "wall_time_s": elapsed,
                    "metrics": obs.metrics.snapshot(),
                    "spans": obs.trace.aggregate(),
                }
            )
            obs.set_obs_enabled(previous)

    return runner


def pytest_sessionfinish(session, exitstatus):
    """Write the per-benchmark observability report, if any ran."""
    if not _BENCH_RESULTS:
        return
    payload = {
        "format": "repro-obs-bench",
        "version": 1,
        "benchmarks": _BENCH_RESULTS,
    }
    _OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
