"""Bench harness helpers.

Every bench regenerates one of the paper's tables or figures, prints
it in the paper's layout, and asserts its qualitative claims (who
wins, by roughly what factor, where the crossovers are).  Each bench
runs its experiment exactly once under pytest-benchmark timing.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def once(benchmark):
    """Run an experiment exactly once under benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
