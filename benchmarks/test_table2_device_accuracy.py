"""Table II: EMPROF miss-count accuracy on the three devices.

The full TM/CM grid of the paper - (256,1), (256,5), (1024,10),
(4096,50) - through the complete EM measurement chain on each device
model.  The paper reports >= 98.98% accuracy everywhere, averaging
99.52%.
"""

import numpy as np

from repro.experiments.tables import MICRO_GRID, format_table2, table2_rows


def test_table2_microbenchmark_accuracy(once):
    rows = once(table2_rows, grid=MICRO_GRID, scale=1.0)

    print("\nTable II - EMPROF accuracy for microbenchmarks (device path)")
    print(format_table2(rows))
    mean_acc = float(np.mean([r.accuracy for r in rows]))
    print(f"Average accuracy: {100 * mean_acc:.2f}% (paper: 99.52%)")

    # Every grid point on every device stays in the paper's band.
    for r in rows:
        assert r.accuracy > 0.96, (r.tm, r.cm, r.device, r.accuracy)
    assert mean_acc > 0.98
