"""Fig. 14: spectrogram of the parser benchmark.

Three distinct regions are visible in the parser spectrogram, each a
different function; spectral attribution segments the timeline into
those regions (the dashed lines the paper marks manually).
"""

from repro.experiments.figures import fig14_parser_spectrogram

PARSER_REGIONS = {"read_dictionary", "init_randtable", "batch_process"}


def test_fig14_parser_spectrogram(once):
    r = once(fig14_parser_spectrogram, scale=1.0)

    print("\nFig. 14 - parser spectrogram and attributed regions")
    print(f"  spectrogram: {r.spectrogram.magnitude.shape} (freqs x frames)")
    print(f"  segments   : {len(r.timeline.segments)}")
    print(f"  regions    : {r.regions_found}")
    shares = r.timeline.samples_per_region()
    total = sum(shares.values())
    for name, samples in sorted(shares.items(), key=lambda kv: -kv[1]):
        print(f"    {name:18s} {100 * samples / total:5.1f}% of timeline")

    # The spectrogram exists and carries energy.
    assert r.spectrogram.n_frames > 10
    assert float(r.spectrogram.magnitude.max()) > 0

    # All three parser functions appear in the attribution.
    assert PARSER_REGIONS <= set(r.regions_found)

    # batch_process occupies the largest share of the timeline, as in
    # Table V (it has by far the most cycles).
    assert max(shares, key=shares.get) == "batch_process"
