"""Fig. 5: memory-refresh collisions.

Section III-C: "a stall for an LLC miss that coincides with a memory
refresh lasts approximately 2-3 us, and this situation occurs
approximately at least every 70 us" on the Olimex board.
"""

from repro.experiments.figures import fig5_refresh


def test_fig5_refresh_stalls(once):
    r = once(fig5_refresh)

    print("\nFig. 5 - refresh-coincident stalls (Olimex)")
    print(f"  refresh stalls      : {r.refresh_stalls}")
    print(f"  mean duration       : {r.mean_duration_us:.2f} us (paper: 2-3 us)")
    print(
        "  estimated interval  : "
        + (f"{r.estimated_interval_us:.1f} us (paper: >= ~70 us)" if r.estimated_interval_us else "n/a")
    )

    assert r.refresh_stalls >= 10
    # The 2-3 us band, with margin for collision-phase averaging.
    assert 1.2 < r.mean_duration_us < 4.0
    # Collisions recur around the 70 us refresh cadence.
    assert r.estimated_interval_us is not None
    assert 45 < r.estimated_interval_us < 140
    # The excerpt shows the long dip.
    assert len(r.excerpt.signal) > 0
