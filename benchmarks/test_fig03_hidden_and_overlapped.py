"""Fig. 3: LLC misses that produce no individually attributable stall.

(a) misses fully hidden by independent work - EMPROF undercounts them
    but they cost (almost) no performance;
(b) overlapped I-fetch + data misses - one stall covers two misses, so
    counting stalls undercounts misses while still tracking their
    performance impact.
"""

from repro.experiments.figures import fig3a_hidden_misses, fig3b_overlapped_misses


def test_fig3a_hidden_misses(once):
    r = once(fig3a_hidden_misses)
    print("\nFig. 3a - misses hidden by MLP/ILP")
    print(f"  LLC misses      : {r.total_misses}")
    print(f"  hidden (no stall): {r.hidden_misses}")
    print(f"  stalls           : {r.stalls}")
    print(f"  EMPROF detected  : {r.detected}")

    # Most engineered misses cause no stall at all.
    assert r.hidden_misses >= 0.8 * r.total_misses
    # And EMPROF, which can only see stalls, reports almost nothing -
    # correctly, since these misses cost almost no performance.
    assert r.detected <= r.stalls + 1


def test_fig3b_overlapped_misses(once):
    r = once(fig3b_overlapped_misses)
    print("\nFig. 3b - overlapped I-fetch + data misses")
    print(f"  LLC misses          : {r.total_misses}")
    print(f"  stalls              : {r.stalls}")
    print(f"  max misses per stall: {r.max_misses_per_stall}")
    print(f"  EMPROF detected     : {r.detected}")

    # At least one stall covers two overlapping misses.
    assert r.max_misses_per_stall >= 2
    # Counting stalls therefore under-counts misses (the paper's point).
    assert r.detected < r.total_misses
