"""Fig. 10: simultaneous processor and memory probes.

Section V-D: every dip EMPROF detects in the processor signal should
coincide with a burst of memory activity, while the memory signal also
carries refresh and DMA activity unrelated to misses - making it a
worse miss detector than the processor signal.
"""

import numpy as np

from repro.experiments.figures import fig10_dual_probe


def test_fig10_dual_probe_coincidence(once):
    r = once(fig10_dual_probe, tm=60, cm=10)

    print("\nFig. 10 - dual-probe validation (Olimex, CM=10)")
    print(f"  processor samples : {len(r.processor.signal)}")
    print(f"  memory samples    : {len(r.memory.signal)}")
    print(f"  dip/burst coincidence: {100 * r.coincidence:.1f}%")

    # Every detected processor-stall dip overlaps memory activity.
    assert r.coincidence > 0.95

    # The memory signal is active for reasons unrelated to misses too
    # (refresh + DMA): its total activity duty exceeds the fraction
    # explainable by miss service alone.
    mem = r.memory.signal
    threshold = 0.5 * (mem.max() + mem.min())
    duty = float(np.mean(mem > threshold))
    assert duty > 0.0
    print(f"  memory busy duty  : {100 * duty:.1f}% (includes refresh + DMA)")
