"""Ablation A1: moving min/max window size vs detection accuracy.

The normalization window must span at least one stall plus busy
context (too short: the stall itself drags the moving maximum down);
very long windows react too slowly to supply drift.  The default
(2001 samples, ~40 us at 50 MS/s) sits on the flat middle of the
curve.
"""

from repro.core.detect import DetectorConfig
from repro.core.normalize import NormalizerConfig
from repro.core.profiler import Emprof, EmprofConfig
from repro.core.validate import count_accuracy
from repro.core.markers import find_marker_window
from repro.devices import olimex
from repro.experiments.runner import run_device
from repro.workloads import Microbenchmark

WINDOWS = (51, 201, 801, 2001, 8001)


def test_normalization_window_sweep(once):
    workload = Microbenchmark(
        total_misses=512, consecutive_misses=8, blank_iterations=20_000,
        gap_instructions=120,
    )

    def sweep():
        base = run_device(workload, olimex(), bandwidth_hz=40e6)
        results = {}
        for window in WINDOWS:
            cfg = EmprofConfig(
                normalizer=NormalizerConfig(window_samples=window),
                detector=DetectorConfig(),
            )
            prof = Emprof.from_capture(base.capture, config=cfg)
            win = find_marker_window(prof.signal, marker_min_samples=200)
            report = prof.profile_window(win.begin_sample, win.end_sample)
            results[window] = count_accuracy(report.miss_count, workload.total_misses)
        return results

    results = once(sweep)
    print("\nAblation A1 - normalization window vs accuracy (TM=512)")
    for window, acc in results.items():
        print(f"  window {window:5d} samples: accuracy {100 * acc:.2f}%")

    # The default and its neighbours are in the high-accuracy plateau.
    assert results[801] > 0.97
    assert results[2001] > 0.97
    # A window shorter than a stall + context degrades detection: a
    # 51-sample window (~1.3 us) barely exceeds one 300 ns stall.
    assert results[51] < results[2001]
