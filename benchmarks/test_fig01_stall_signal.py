"""Fig. 1: an LLC-miss stall dips the EM magnitude.

Regenerates the signal excerpt of Fig. 1 - magnitude (dashed blue in
the paper) with its moving average (solid red) - and checks the
paper's stated facts: the dip is deep relative to the busy level and
lasts roughly the ~300 ns of an Olimex main-memory access.
"""

from repro.experiments.figures import fig1_stall_dip


def test_fig1_stall_dip(once):
    fig = once(fig1_stall_dip)

    begin = fig.annotations["stall_begin_sample"]
    end = fig.annotations["stall_end_sample"]
    ns = 1e9 * fig.annotations["stall_seconds"]
    print("\nFig. 1 - EM magnitude during one LLC-miss stall (Olimex, 40 MHz BW)")
    print(f"  excerpt samples : {len(fig.signal)}")
    print(f"  stall window    : samples [{begin:.1f}, {end:.1f})")
    print(f"  stall duration  : {fig.annotations['stall_cycles']:.0f} cycles = {ns:.0f} ns")

    # The dip bottoms far below the surrounding busy level.
    import numpy as np

    busy = float(np.median(fig.signal))
    assert fig.signal.min() < 0.45 * busy
    # Section III-C: most Olimex LLC-miss stalls last ~300 ns.
    assert 150 < ns < 600
    # The moving average overlay exists and is smoother than the raw signal.
    assert fig.moving_avg is not None
    assert np.std(np.diff(fig.moving_avg)) < np.std(np.diff(fig.signal))
