"""Ablation A9: DRAM row-buffer locality, visible only to EMPROF.

An event counter reports *how many* LLC misses happened; EMPROF
reports *how long each one stalled*.  With an open-page DRAM policy,
the miss population splits into row hits (fast) and row misses (slow)
- a distinction the paper's per-stall latency accounting can resolve
and a counter fundamentally cannot.

The sweep runs a sequential-stride workload (row-hit friendly: many
misses land in the currently open row) and a random workload (row-
conflict heavy) on a row-buffer-enabled Olimex variant, and checks
that EMPROF's latency distribution separates the two populations.
"""

from dataclasses import replace

import numpy as np

from repro.devices import olimex
from repro.experiments.runner import run_simulator
from repro.sim.isa import alu, branch, load
from repro.workloads.base import StreamWorkload


def rb_device(row_hit=120):
    base = olimex()
    return replace(
        base,
        memory=replace(
            base.memory,
            row_buffer_enabled=True,
            row_hit_latency=row_hit,
            contention_prob=0.0,
            refresh_enabled=False,
        ),
    )


def access_workload(sequential: bool, n=400):
    def factory(config):
        rng = np.random.default_rng(4)
        base = 0x4000_0000
        pc = 0x1000
        for k in range(n):
            if sequential:
                addr = base + k * 64  # consecutive lines: same 8 KB row
            else:
                addr = base + int(rng.integers(0, 1 << 14)) * 8192 + 64
            for j in range(160):
                yield alu(pc + 4 * (j % 8))
            yield load(pc + 48, addr, dep=2)
            yield branch(pc + 52)

    name = "rb_sequential" if sequential else "rb_random"
    return StreamWorkload(name, factory, {0: name})


def test_row_buffer_populations(once):
    def experiment():
        results = {}
        for sequential in (True, False):
            run = run_simulator(access_workload(sequential), config=rb_device())
            lat = run.report.latencies_cycles()
            stats = run.result.stats
            results["seq" if sequential else "rand"] = {
                "mean": float(lat.mean()) if len(lat) else 0.0,
                "fast_share": float(np.mean(lat < 220)) if len(lat) else 0.0,
                "detected": run.report.miss_count,
                "misses": run.result.ground_truth.miss_count(),
            }
        return results

    r = once(experiment)
    print("\nAblation A9 - DRAM row-buffer locality (row hit 120 / miss 282 cycles)")
    for kind, v in r.items():
        print(
            f"  {kind:4s}: detected={v['detected']:4d} mean stall={v['mean']:6.1f} cyc  "
            f"fast-population share={100 * v['fast_share']:5.1f}%"
        )

    seq, rand = r["seq"], r["rand"]
    # Both workloads generate the same number of misses: a counter
    # sees no difference between them.
    assert abs(seq["misses"] - rand["misses"]) < 0.05 * rand["misses"]
    # EMPROF's latency view separates them: the sequential stream is
    # dominated by fast row hits, the random one by full-cost misses.
    assert seq["fast_share"] > 0.8
    assert rand["fast_share"] < 0.2
    assert seq["mean"] < 0.7 * rand["mean"]
