"""Ablation A3: probe SNR vs profiling accuracy.

Moving the probe away (or probing through shielding) lowers the SNR
of the received magnitude.  EMPROF's normalization + hysteresis makes
it robust down to moderate SNRs; detection only collapses when noise
excursions rival the busy/stall contrast itself.
"""

from repro.core.validate import count_accuracy
from repro.devices import olimex
from repro.emsignal.channel import ChannelConfig
from repro.experiments.runner import microbenchmark_window, run_device
from repro.workloads import Microbenchmark

SNRS_DB = (3.0, 8.0, 14.0, 20.0, 30.0)


def test_snr_sweep(once):
    workload = Microbenchmark(
        total_misses=512, consecutive_misses=8, blank_iterations=20_000,
        gap_instructions=120,
    )

    def sweep():
        results = {}
        for snr in SNRS_DB:
            channel = ChannelConfig(snr_db=snr, drift_amplitude=0.05, seed=1)
            run = run_device(
                workload, olimex(), bandwidth_hz=40e6, channel=channel
            )
            try:
                report, _ = microbenchmark_window(run)
                acc = count_accuracy(report.miss_count, workload.total_misses)
            except ValueError:
                acc = 0.0  # markers unrecognizable: profiling failed
            results[snr] = acc
        return results

    results = once(sweep)
    print("\nAblation A3 - probe SNR vs miss-count accuracy (TM=512)")
    for snr, acc in results.items():
        print(f"  SNR {snr:5.1f} dB: accuracy {100 * acc:.2f}%")

    # Clean probing is near-perfect; accuracy is monotone-ish in SNR
    # and degrades as noise approaches the signal contrast.
    assert results[30.0] > 0.98
    assert results[20.0] > 0.95
    assert results[3.0] < results[30.0]
