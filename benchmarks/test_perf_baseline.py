"""The Section V perf anecdote: why counters fail on these devices.

"when using perf on Olimex A13-OLinuXino-MICRO to count LLC misses
for a small application that was designed to generate only 1024 cache
misses, the number of misses reported by perf had an average of
32,768 and a standard deviation of 14,543."  EMPROF, on the same
engineered workload, counts within 1% (Table II).
"""

from repro.devices import olimex
from repro.experiments.runner import microbenchmark_window, run_device
from repro.experiments.tables import perf_anecdote
from repro.workloads import Microbenchmark


def test_perf_counter_unreliability(once):
    pa = once(perf_anecdote, true_misses=1024, runs=300)

    print("\nperf baseline - 1024 engineered misses")
    print(f"  perf reported: mean {pa.mean_reported:.0f}, std {pa.std_reported:.0f}")
    print("  paper        : mean 32768, std 14543")

    # The counter overreports by an order of magnitude and is wildly
    # variable run to run - in the paper's bands.
    assert 20_000 < pa.mean_reported < 45_000
    assert 8_000 < pa.std_reported < 22_000


def test_emprof_beats_perf_on_same_workload(once):
    workload = Microbenchmark(
        total_misses=1024, consecutive_misses=10, blank_iterations=20_000,
        gap_instructions=120,
    )

    def run():
        r = run_device(workload, olimex(), bandwidth_hz=40e6)
        report, _ = microbenchmark_window(r)
        return report.miss_count

    detected = once(run)
    print(f"\nEMPROF on the same 1024-miss workload: {detected} (error {abs(detected - 1024)})")
    # Within 1%, vs perf's 32x overreport.
    assert abs(detected - 1024) <= 11
