"""Ablation A2: detection threshold level vs false positives/negatives.

The threshold must sit between the stalled level (~0) and the busy
level (~1) of the normalized signal.  Too low: noise near the stall
floor fragments and misses dips.  Too high: busy-level fluctuations
read as stalls (false positives).  The paper picks a mid threshold;
the default here is 0.45.
"""

from repro.core.detect import DetectorConfig
from repro.core.profiler import Emprof, EmprofConfig
from repro.core.validate import validate_profile
from repro.devices import olimex
from repro.experiments.runner import run_device
from repro.workloads import spec_workload

THRESHOLDS = (0.1, 0.3, 0.45, 0.6, 0.85)


def test_threshold_sweep(once):
    def sweep():
        base = run_device(spec_workload("parser"), olimex(), bandwidth_hz=40e6)
        truth = base.result.ground_truth
        results = {}
        for thr in THRESHOLDS:
            cfg = EmprofConfig(
                detector=DetectorConfig(
                    threshold=thr, recover_threshold=max(0.7, thr + 0.05)
                )
            )
            report = Emprof.from_capture(base.capture, config=cfg).profile()
            v = validate_profile(report, truth)
            results[thr] = (
                v.group_accuracy,
                v.match.false_positives,
                v.match.false_negatives,
            )
        return results

    results = once(sweep)
    print("\nAblation A2 - threshold vs detection quality (parser/Olimex)")
    for thr, (acc, fp, fn) in results.items():
        print(f"  threshold {thr:.2f}: group acc {100 * acc:6.2f}%  FP {fp:4d}  FN {fn:4d}")

    best_acc = results[0.45][0]
    assert best_acc > 0.9
    # Mid thresholds beat the extremes.
    assert results[0.1][0] < best_acc
    # A threshold close to the busy level floods in false positives.
    assert results[0.85][1] > 3 * max(1, results[0.45][1])
