"""Table III: EMPROF accuracy against simulator ground truth.

Microbenchmarks (miss count vs the engineered TM) and the ten SPEC
CPU2000 models (miss count and stall cycles vs the simulator's
records).  The paper reports 97.7-99.8% / 99.3-99.9% on the
microbenchmarks and 93.2-100% / 98.4-100% on SPEC.
"""

import numpy as np

from repro.experiments.tables import (
    MICRO_GRID,
    format_table3,
    table3_micro_rows,
    table3_spec_rows,
)


def test_table3_microbenchmarks(once):
    rows = once(table3_micro_rows, grid=MICRO_GRID, scale=1.0)
    print("\nTable III (top) - microbenchmarks on the simulator")
    print(format_table3(rows))
    for r in rows:
        assert r.miss_accuracy > 0.96, r
        assert r.stall_accuracy > 0.97, r


def test_table3_spec(once):
    rows = once(table3_spec_rows, scale=1.0)
    print("\nTable III (bottom) - SPEC CPU2000 on the simulator")
    print(format_table3(rows))
    miss_accs = [r.miss_accuracy for r in rows]
    stall_accs = [r.stall_accuracy for r in rows]
    print(
        f"Average: miss {100 * np.mean(miss_accs):.2f}% "
        f"(paper 98.5%), stall {100 * np.mean(stall_accs):.2f}% (paper 99.5%)"
    )

    assert len(rows) == 10
    # Per-benchmark floors: the paper's worst case is equake at 93.2%
    # miss / 98.4% stall; our scaled runs sit a few points lower on
    # miss count (overlap undercounting bites harder at small scale).
    for r in rows:
        assert r.miss_accuracy > 0.85, r
        assert r.stall_accuracy > 0.97, r
    assert np.mean(miss_accs) > 0.90
    assert np.mean(stall_accs) > 0.98
