"""Ablation A6: EMPROF-driven DVFS profitability prediction.

The paper motivates stall-time accounting partly through the DVFS
literature it cites ([30]-[32]): knowing how much of execution is
memory-stall time predicts how runtime responds to frequency scaling
(busy time scales with the clock, DRAM time does not).  This bench
validates the prediction loop end to end:

1. profile a memory-light and a memory-heavy benchmark on the Olimex
   model at the stock clock,
2. predict the runtime at 2x the clock from each EMPROF report alone,
3. actually re-simulate at 2x (memory latency fixed in nanoseconds)
   and compare.
"""

from dataclasses import replace

from repro.analysis import dvfs_runtime_scale
from repro.devices import olimex
from repro.experiments.runner import run_simulator
from repro.workloads import spec_workload

SCALE = 2.0  # frequency multiplier


def scaled_device(base):
    """The same board clocked 2x with identical DRAM nanoseconds."""
    memory = replace(
        base.memory,
        access_latency=int(base.memory.access_latency * SCALE),
        bank_busy=int(base.memory.bank_busy * SCALE),
        refresh_interval=int(base.memory.refresh_interval * SCALE),
        refresh_duration=int(base.memory.refresh_duration * SCALE),
    )
    return replace(base, clock_hz=base.clock_hz * SCALE, memory=memory)


def test_dvfs_prediction(once):
    def experiment():
        results = {}
        for bench in ("vpr", "bzip2"):
            wl = spec_workload(bench)
            base_run = run_simulator(wl, config=olimex())
            fast_run = run_simulator(wl, config=scaled_device(olimex()))
            base_s = (
                base_run.result.ground_truth.total_cycles / base_run.result.config.clock_hz
            )
            fast_s = (
                fast_run.result.ground_truth.total_cycles / fast_run.result.config.clock_hz
            )
            predicted = dvfs_runtime_scale(base_run.report, SCALE)
            results[bench] = {
                "stall_frac": base_run.report.stall_fraction,
                "predicted": predicted,
                "actual": fast_s / base_s,
            }
        return results

    results = once(experiment)
    print("\nAblation A6 - DVFS runtime prediction from EMPROF profiles (2x clock)")
    for bench, r in results.items():
        err = abs(r["predicted"] - r["actual"]) / r["actual"]
        print(
            f"  {bench:6s}: stall {100 * r['stall_frac']:5.1f}%  "
            f"T'/T predicted {r['predicted']:.3f}  actual {r['actual']:.3f}  "
            f"(error {100 * err:.1f}%)"
        )

    vpr = results["vpr"]
    bzip2 = results["bzip2"]

    # The compute-lighter benchmark benefits more from the clock bump.
    assert vpr["actual"] < bzip2["actual"]
    # Predictions from the EM profile land close to the re-simulated
    # truth for both.
    for r in results.values():
        assert abs(r["predicted"] - r["actual"]) / r["actual"] < 0.12
    # Sanity: 2x clock can at best halve runtime; memory-bound bzip2
    # stays well short of that.
    assert 0.5 <= vpr["actual"] < 0.75
    assert bzip2["actual"] > vpr["actual"] + 0.05
