"""Fig. 8: the same microbenchmark in the simulator and on the device.

The paper's point: the simulator power trace and the real EM capture
agree on everything EMPROF needs - marker loops are recognizable and
the engineered misses produce the same countable dips - so the
simulator is a valid validation substrate.
"""

from repro.experiments.figures import fig8_sim_vs_device


def test_fig8_simulator_matches_device(once):
    sim, dev = once(fig8_sim_vs_device, tm=100, cm=10)

    print("\nFig. 8 - SESC simulator vs Olimex device, TM=100 CM=10")
    print(f"  simulator: detected {sim.detected_in_window} / {sim.expected}")
    print(f"  device   : detected {dev.detected_in_window} / {dev.expected}")

    # Both paths count the engineered misses correctly.
    assert abs(sim.detected_in_window - sim.expected) <= 2
    assert abs(dev.detected_in_window - dev.expected) <= 3
    # And they agree with each other.
    assert abs(sim.detected_in_window - dev.detected_in_window) <= 3
    # Both signals carry recognizable marker windows.
    assert sim.overview.annotations["window_end"] > sim.overview.annotations["window_begin"]
    assert dev.overview.annotations["window_end"] > dev.overview.annotations["window_begin"]
