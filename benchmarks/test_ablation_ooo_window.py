"""Ablation A5: in-order vs out-of-order stall visibility.

Section II-B: "In a sophisticated out-of-order processor, the
fully-stalled condition is averted for tens of cycles because the
processor already has many tens of instructions in various stages of
completion ... an LLC miss has latencies in the hundreds of cycles and
thus typically still results in numerous fully-stalled cycles."

The sweep runs mcf (dependent loads) on the in-order SESC machine and
on OoO variants with growing reorder windows: the OoO cores avert the
first part of each stall (shorter stalls), and with a large enough
window plus MLP, some misses vanish from the stall record entirely -
but the long-latency misses still surface, which is why EMPROF remains
applicable to OoO targets.
"""

from dataclasses import replace

import numpy as np

from repro.devices import sesc
from repro.experiments.runner import run_simulator
from repro.workloads import spec_workload

# (label, out_of_order, reorder window in instructions)
VARIANTS = (
    ("in-order", False, 2048),
    ("ooo-rob64", True, 64),
    ("ooo-rob128", True, 128),
    ("ooo-rob256", True, 256),
)


def test_ooo_stall_aversion(once):
    def sweep():
        results = {}
        for label, ooo, window in VARIANTS:
            cfg = sesc()
            cfg = replace(
                cfg, core=replace(cfg.core, out_of_order=ooo, runahead=window)
            )
            run = run_simulator(spec_workload("mcf"), config=cfg)
            truth = run.result.ground_truth
            durations = truth.stall_durations()
            results[label] = {
                "misses": truth.miss_count(),
                "stalls": truth.memory_stall_count(),
                "stall_cycles": truth.memory_stall_cycles(),
                "mean_stall": float(durations.mean()) if len(durations) else 0.0,
                "total_cycles": truth.total_cycles,
                "detected": run.report.miss_count,
            }
        return results

    results = once(sweep)
    print("\nAblation A5 - in-order vs out-of-order stall visibility (mcf)")
    for label, r in results.items():
        print(
            f"  {label:11s}: stalls={r['stalls']:4d} mean={r['mean_stall']:6.1f}cyc "
            f"stall_cycles={r['stall_cycles']:7d} exec={r['total_cycles']:8d} "
            f"EMPROF detected={r['detected']:4d}"
        )

    io = results["in-order"]
    rob64 = results["ooo-rob64"]
    rob256 = results["ooo-rob256"]

    # The workload's misses are core-independent.
    assert abs(io["misses"] - rob256["misses"]) < 0.05 * io["misses"]

    # OoO averts the first tens of cycles of each stall: mean stall
    # duration shrinks with the reorder window...
    assert rob64["mean_stall"] < io["mean_stall"]
    assert rob256["mean_stall"] < rob64["mean_stall"]

    # ...and execution gets faster (that's the point of OoO).
    assert rob256["total_cycles"] < io["total_cycles"]

    # But mcf's dependent chains still stall for hundreds of cycles,
    # so EMPROF still sees the bulk of the memory events even on the
    # biggest window.
    assert rob256["mean_stall"] > 100
    assert rob256["detected"] > 0.5 * io["detected"]
