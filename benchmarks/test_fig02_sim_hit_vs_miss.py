"""Fig. 2: LLC-hit vs LLC-miss stalls in the SESC power trace.

The same load loop run over (a) an LLC-resident array and (b) an
array of cold lines.  The paper's claim: the LLC miss produces an
"order-of-magnitude longer low-power-consumption period".
"""

from repro.experiments.figures import fig2_hit_vs_miss


def test_fig2_hit_vs_miss(once):
    hit, miss = once(fig2_hit_vs_miss)

    print("\nFig. 2 - simulator stalls: (a) LLC hit vs (b) LLC miss")
    print(
        f"  (a) LLC hit : {hit.annotations['memory_stalls']:.0f} memory stalls, "
        f"brief stalls mean {hit.annotations['mean_brief_stall_cycles']:.1f} cycles"
    )
    print(
        f"  (b) LLC miss: {miss.annotations['memory_stalls']:.0f} memory stalls, "
        f"mean {miss.annotations['mean_memory_stall_cycles']:.1f} cycles"
    )

    # (a) the resident array causes only brief (LLC-hit) stalls.
    assert hit.annotations["memory_stalls"] <= 2
    assert 0 < hit.annotations["mean_brief_stall_cycles"] < 30
    # (b) every measured load stalls for the main-memory latency.
    assert miss.annotations["memory_stalls"] >= 55
    # Order-of-magnitude contrast, as the paper states.
    assert (
        miss.annotations["mean_memory_stall_cycles"]
        > 8 * hit.annotations["mean_brief_stall_cycles"]
    )
