"""The zero-observer-effect claim, measured.

Section I / VII: counter-based profiling interrupts the target, and
"increased interrupt rate as well as binary software calls introduce
overhead and may distort the measurement, creating an 'observer
effect'" - while EMPROF "is totally observer-effect free".

This bench runs the same benchmark three ways on the Olimex model:

1. clean, profiled by EMPROF from outside (the paper's method);
2. instrumented with a coarse profiling-interrupt rate;
3. instrumented with a fine rate (per-function-grade attribution).

and reports, for each: runtime overhead, distortion of the program's
own miss count, and what fraction of all observed misses are the
profiler's own.
"""

from repro.baselines.instrumentation import (
    InstrumentationConfig,
    InstrumentedWorkload,
    observer_effect,
)
from repro.core.validate import validate_profile
from repro.devices import olimex
from repro.experiments.runner import run_device, run_simulator
from repro.workloads import spec_workload

PERIODS = (50_000, 10_000, 2_000)


def test_observer_effect(once):
    def experiment():
        workload = spec_workload("twolf")
        clean_run = run_simulator(workload, config=olimex())
        clean = clean_run.result.ground_truth

        # EMPROF's view of the clean run (through the EM chain).
        em_run = run_device(workload, olimex(), bandwidth_hz=40e6)
        em_validation = validate_profile(
            em_run.report, em_run.result.ground_truth
        )

        rows = []
        for period in PERIODS:
            instrumented = InstrumentedWorkload(
                workload, InstrumentationConfig(period_instructions=period)
            )
            instr_truth = run_simulator(
                instrumented, config=olimex()
            ).result.ground_truth
            effect = observer_effect(clean, instr_truth)
            total_misses = instr_truth.miss_count()
            rows.append(
                {
                    "period": period,
                    "overhead": effect.overhead_fraction,
                    "app_delta": effect.app_miss_delta,
                    "handler_share": (
                        effect.handler_misses / total_misses if total_misses else 0.0
                    ),
                }
            )
        return {
            "clean_misses": clean.miss_count(),
            "emprof_stall_acc": em_validation.stall_accuracy,
            "rows": rows,
        }

    r = once(experiment)
    print("\nObserver effect - twolf on the Olimex model")
    print(f"  clean run: {r['clean_misses']} app misses")
    print(f"  EMPROF (external): 0.0% overhead, 0 app-miss distortion, "
          f"stall accuracy {100 * r['emprof_stall_acc']:.1f}%")
    for row in r["rows"]:
        print(
            f"  interrupts every {row['period']:6d} instr: "
            f"overhead {100 * row['overhead']:6.1f}%  "
            f"app-miss distortion {row['app_delta']:+4d}  "
            f"profiler's own misses {100 * row['handler_share']:5.1f}% of total"
        )

    rows = {row["period"]: row for row in r["rows"]}

    # EMPROF itself: by construction, profiling is external - the
    # clean run *is* the profiled run - and its accounting is accurate.
    assert r["emprof_stall_acc"] > 0.95

    # Instrumentation overhead grows as sampling tightens...
    assert rows[2_000]["overhead"] > rows[10_000]["overhead"] > rows[50_000]["overhead"]
    # ...is substantial at attribution-grade rates...
    assert rows[2_000]["overhead"] > 0.5
    # ...distorts the measured program's own memory behaviour...
    assert abs(rows[2_000]["app_delta"]) > abs(rows[50_000]["app_delta"])
    # ...and floods the counter with the profiler's own misses.
    assert rows[2_000]["handler_share"] > 0.5
