"""Fig. 11: stall-latency histograms for mcf on the three devices.

The paper: "Most stalls are brief in duration ... However, a
significant number of stalls last hundreds of cycles, and we observe
that, compared to the IoT board, the two phones have a thicker 'tail'
in the stall time histogram."
"""

import numpy as np

from repro.experiments.figures import fig11_latency_histograms


def test_fig11_mcf_latency_histograms(once):
    results = once(fig11_latency_histograms, benchmark="mcf", scale=1.0)

    print("\nFig. 11 - mcf stall-latency histograms")
    by_dev = {}
    for r in results:
        by_dev[r.device] = r
        print(
            f"  {r.device:8s}: n={int(r.counts.sum()):5d} mean={r.mean_cycles:6.0f} "
            f"p99={r.p99_cycles:6.0f} tail(>=600cyc)={100 * r.tail_fraction_600:.2f}%"
        )

    for r in results:
        # Histograms are populated and dominated by the main mode.
        assert r.counts.sum() > 100
        peak_bin = int(np.argmax(r.counts))
        peak_cycles = r.edges_cycles[peak_bin]
        assert peak_cycles < 500  # most stalls are "brief"
        # A real tail exists: some stalls run into many hundreds of cycles.
        assert r.p99_cycles > 1.5 * r.mean_cycles

    # The phones' tails are thicker than the IoT board's (contention
    # from sibling cores / Android background activity).
    oli = by_dev["olimex"].tail_fraction_600
    assert by_dev["alcatel"].tail_fraction_600 > 0.8 * oli
    assert by_dev["samsung"].tail_fraction_600 > oli
