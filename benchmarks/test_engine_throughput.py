"""Vectorized engine throughput: batch vs streaming vs chunked vs seed.

The chunked engine (``repro.core.engine``) replaced the seed's
per-sample Python state machines with vectorized passes; this bench
records samples/second for every production path on a ~1M-sample
capture, times the frozen seed loop on a subset, and pins the
headline claim: the engine is at least 5x faster than the per-sample
implementation it replaced.  Results land in ``BENCH_obs.json`` and
the run ledger, so ``repro obs regress`` guards the speedup across
future sessions.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

# The frozen seed implementations live under tests/ (they are the
# differential-harness reference); make the repo root importable no
# matter how pytest was invoked.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core.profiler import Emprof
from repro.core.streaming import StreamingEmprof

from tests.conftest import make_dip_signal
from tests.reference_pipeline import ReferenceStreamingEmprof

RATE_HZ = 40e6
CLOCK_HZ = 1e9

N_ENGINE = 1_000_000  # engine paths process the full capture
N_SEED = 100_000  # the seed loop is timed on a subset, then scaled
CHUNK = 4096


def _throughput(n_samples, seconds):
    return n_samples / max(seconds, 1e-12)


def test_engine_throughput(once):
    def experiment():
        x = make_dip_signal(n=N_ENGINE, seed=31)

        t0 = time.perf_counter()
        batch = Emprof(x, RATE_HZ, CLOCK_HZ).profile()
        batch_s = time.perf_counter() - t0

        streamer = StreamingEmprof(RATE_HZ, CLOCK_HZ)
        t0 = time.perf_counter()
        for start in range(0, len(x), CHUNK):
            streamer.process(x[start : start + CHUNK])
        stream = streamer.finish()
        stream_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        chunked = Emprof(x, RATE_HZ, CLOCK_HZ).profile_chunked(65536)
        chunked_s = time.perf_counter() - t0

        # The frozen seed per-sample loop, timed on a subset (running
        # it over the full megasample would dominate the bench) and
        # reported as a per-sample rate, which is what the 5x claim
        # compares against: both loops are O(n) so rates extrapolate.
        seed = ReferenceStreamingEmprof(RATE_HZ, CLOCK_HZ)
        subset = x[:N_SEED]
        t0 = time.perf_counter()
        for start in range(0, len(subset), CHUNK):
            seed.process(subset[start : start + CHUNK])
        seed.finish()
        seed_s = time.perf_counter() - t0

        return {
            "samples": len(x),
            "batch_sps": _throughput(len(x), batch_s),
            "stream_sps": _throughput(len(x), stream_s),
            "chunked_sps": _throughput(len(x), chunked_s),
            "seed_sps": _throughput(len(subset), seed_s),
            "batch_count": batch.miss_count,
            "stream_count": stream.miss_count,
            "chunked_count": chunked.miss_count,
        }

    r = once(experiment)
    speedup = r["stream_sps"] / r["seed_sps"]
    print("\nEngine throughput on a 1M-sample capture")
    print(f"  batch    : {r['batch_sps'] / 1e6:8.2f} MS/s")
    print(f"  chunked  : {r['chunked_sps'] / 1e6:8.2f} MS/s")
    print(f"  streaming: {r['stream_sps'] / 1e6:8.2f} MS/s")
    print(f"  seed loop: {r['seed_sps'] / 1e6:8.2f} MS/s "
          f"(per-sample Python, timed on {N_SEED} samples)")
    print(f"  streaming vs seed: {speedup:.1f}x")

    # All three production paths agree on the stall count.
    assert r["batch_count"] == r["stream_count"] == r["chunked_count"]
    assert r["batch_count"] > 1000  # ~5.9k dips in the generated signal

    # The headline claim: the vectorized engine beats the seed
    # per-sample loop by at least 5x (in practice it is far more).
    assert speedup >= 5.0, f"engine only {speedup:.1f}x over seed loop"
