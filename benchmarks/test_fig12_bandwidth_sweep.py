"""Fig. 12: effect of the measurement bandwidth (20-160 MHz).

Paper (Section VI-B): on the Alcatel phone the lowest bandwidths miss
most stalls - "at 20 MHz EMPROF detects only the very few stalls that
have extremely long durations (their average duration is 1100 clock
cycles)" - while on the IoT board low bandwidth mostly degrades the
latency measurement.  "For both devices, the average stall time
stabilizes at 60 MHz or more."
"""

from repro.experiments.figures import fig12_bandwidth_sweep


def test_fig12_bandwidth_sweep(once):
    points = once(fig12_bandwidth_sweep, benchmark="mcf", scale=1.0)

    print("\nFig. 12 - measurement-bandwidth sweep, mcf")
    by_key = {}
    for p in points:
        by_key[(p.device, p.bandwidth_hz)] = p
        print(
            f"  {p.device:8s} {p.bandwidth_hz / 1e6:5.0f} MHz: "
            f"stalls={p.detected_stalls:5d} mean={p.mean_stall_cycles:7.1f} cycles"
        )

    MHZ = 1e6
    alc20 = by_key[("alcatel", 20 * MHZ)]
    alc60 = by_key[("alcatel", 60 * MHZ)]
    alc160 = by_key[("alcatel", 160 * MHZ)]
    oli20 = by_key[("olimex", 20 * MHZ)]
    oli60 = by_key[("olimex", 60 * MHZ)]
    oli160 = by_key[("olimex", 160 * MHZ)]

    # Alcatel at 20 MHz: only a small fraction of stalls survive, and
    # the survivors are the extreme-duration ones.
    assert alc20.detected_stalls < 0.3 * alc160.detected_stalls
    assert alc20.mean_stall_cycles > 2.5 * alc160.mean_stall_cycles

    # Olimex detects fine even at 20 MHz (longer stalls in samples).
    assert oli20.detected_stalls > 0.8 * oli160.detected_stalls

    # Stabilization at 60 MHz and beyond, for both devices.
    assert alc60.detected_stalls > 0.85 * alc160.detected_stalls
    assert abs(oli60.mean_stall_cycles - oli160.mean_stall_cycles) < 0.2 * oli160.mean_stall_cycles
