"""Ablation A10: address translation cost in the stall population.

The paper's microbenchmark touches every page up front "to avoid
encountering page faults later" (Section V-B) - translation is part
of the memory behaviour of these devices.  With the data-TLB model
enabled, page-crossing access patterns pay a hardware page walk on
top of each LLC miss, shifting EMPROF's measured stall population
upward by the walk latency - while a miss *counter* reports identical
numbers with and without the TLB pressure.
"""

from dataclasses import replace

import numpy as np

from repro.devices import olimex
from repro.experiments.runner import run_simulator
from repro.sim.isa import alu, branch, load
from repro.workloads.base import StreamWorkload

WALK = 80


def device(tlb: bool):
    base = olimex()
    base = replace(
        base,
        memory=replace(base.memory, refresh_enabled=False, contention_prob=0.0),
    )
    if tlb:
        base = replace(
            base, tlb_enabled=True, tlb_entries=32, tlb_walk_cycles=WALK
        )
    return base


def page_cross_workload(n=350):
    """Every load on a fresh page: maximal TLB pressure."""

    def factory(config):
        for k in range(n):
            addr = 0x4000_0000 + k * 4096 + 64
            for j in range(180):
                yield alu(0x100 + 4 * (j % 8))
            yield load(0x148, addr, dep=2)
            yield branch(0x14C)

    return StreamWorkload("page_cross", factory, {0: "page_cross"})


def test_tlb_walk_population_shift(once):
    def experiment():
        results = {}
        for tlb in (False, True):
            run = run_simulator(page_cross_workload(), config=device(tlb))
            lat = run.report.latencies_cycles()
            results["tlb" if tlb else "base"] = {
                "misses": run.result.ground_truth.miss_count(),
                "detected": run.report.miss_count,
                "mean": float(lat.mean()) if len(lat) else 0.0,
                "tlb_misses": run.result.stats["tlb_misses"],
            }
        return results

    r = once(experiment)
    print("\nAblation A10 - data-TLB page walks in the stall population")
    for kind, v in r.items():
        print(
            f"  {kind:4s}: LLC misses={v['misses']:4d} detected={v['detected']:4d} "
            f"mean stall={v['mean']:6.1f} cyc  TLB misses={v['tlb_misses']:.0f}"
        )

    base, tlb = r["base"], r["tlb"]
    # A counter sees the same LLC miss population either way.
    assert abs(base["misses"] - tlb["misses"]) <= 2
    assert tlb["tlb_misses"] > 300
    # EMPROF's per-stall latency shifts up by approximately the walk.
    shift = tlb["mean"] - base["mean"]
    assert 0.6 * WALK < shift < 1.5 * WALK
    # Detection itself is unimpaired.
    assert tlb["detected"] == base["detected"]
