"""Streaming EMPROF: batch equivalence and throughput on a long capture.

The paper's long SPEC captures had to be taken with a streaming
digitizer chain (Section VI); the software analogue is a bounded-
memory profiler that keeps up with the capture rate.  This bench
streams a full SPEC capture chunk-by-chunk, checks equivalence with
the batch profiler, and measures samples/second throughput against
the 40 MHz capture rate.
"""

import time

import numpy as np

from repro.core.normalize import NormalizerConfig
from repro.core.profiler import Emprof, EmprofConfig
from repro.core.streaming import StreamingEmprof
from repro.devices import olimex
from repro.experiments.runner import run_device
from repro.workloads import spec_workload

NORM = NormalizerConfig(window_samples=2001)
CHUNK = 4096  # ~100 us of capture at 40 MHz


def test_streaming_long_capture(once):
    def experiment():
        run = run_device(spec_workload("parser"), olimex(), bandwidth_hz=40e6)
        x = run.capture.magnitude
        rate = run.capture.sample_rate_hz
        clock = run.capture.clock_hz

        batch = Emprof(
            x, rate, clock, config=EmprofConfig(normalizer=NORM)
        ).profile()

        streamer = StreamingEmprof(rate, clock, normalizer=NORM)
        t0 = time.perf_counter()
        for start in range(0, len(x), CHUNK):
            streamer.process(x[start : start + CHUNK])
        report = streamer.finish()
        seconds = time.perf_counter() - t0
        return {
            "samples": len(x),
            "batch_count": batch.miss_count,
            "stream_count": report.miss_count,
            "batch_cycles": batch.stall_cycles,
            "stream_cycles": report.stall_cycles,
            "throughput": len(x) / seconds,
            "capture_rate": rate,
        }

    r = once(experiment)
    print("\nStreaming EMPROF on a full parser capture")
    print(f"  capture      : {r['samples']} samples at "
          f"{r['capture_rate'] / 1e6:.0f} MS/s")
    print(f"  batch        : {r['batch_count']} stalls, "
          f"{r['batch_cycles']:.0f} stall cycles")
    print(f"  streamed     : {r['stream_count']} stalls, "
          f"{r['stream_cycles']:.0f} stall cycles")
    print(f"  throughput   : {r['throughput'] / 1e6:.2f} MS/s "
          f"(capture rate {r['capture_rate'] / 1e6:.0f} MS/s)")

    # Bit-equivalent accounting.
    assert r["stream_count"] == r["batch_count"]
    assert abs(r["stream_cycles"] - r["batch_cycles"]) < 1e-6
    # The pure-Python streamer processes a meaningful fraction of the
    # capture rate; a production C implementation of the same O(1)
    # algorithm keeps up trivially.  The floor is deliberately loose:
    # wall-clock throughput varies with machine load during the suite.
    assert r["throughput"] > 3e4
