"""Table IV: total LLC misses and miss latency (% of execution time).

EMPROF applied through the full EM chain to the four microbenchmarks
and all ten SPEC CPU2000 models on the three device models.  The
paper's qualitative claims, asserted below:

* the Alcatel's 1 MB LLC gives it far fewer misses than the 256 KB
  devices;
* the Samsung's prefetcher keeps its counts below the Olimex's on
  prefetchable (streaming) benchmarks;
* the Olimex spends the largest fraction of time stalled (fast clock,
  slow memory), the Alcatel the smallest - in the paper's averages,
  2.3% (Alcatel) < 2.77% (Samsung) < 4.43% (Olimex).

Absolute counts are ~1/1000 of the paper's (scaled runs; see
EXPERIMENTS.md), and stall percentages are inflated by the same
scaling; the orderings are the reproduction target.
"""

import numpy as np

from repro.experiments.tables import format_table4, table4_rows
from repro.workloads.spec import SPEC_BENCHMARKS


def test_table4_profiles(once):
    rows = once(table4_rows, scale=1.0)

    print("\nTable IV - EMPROF statistics per benchmark per device")
    print(format_table4(rows))

    by_key = {(r.benchmark, r.device): r for r in rows}
    spec = list(SPEC_BENCHMARKS)

    # 1. Alcatel's counts are lowest on (almost) every benchmark.
    fewer = sum(
        by_key[(b, "alcatel")].total_misses
        <= min(by_key[(b, "samsung")].total_misses, by_key[(b, "olimex")].total_misses)
        for b in spec
    )
    assert fewer >= 8, f"Alcatel lowest on only {fewer}/10 benchmarks"

    # 2. The prefetcher pays off on the streaming benchmarks.
    for bench in ("bzip2", "equake", "gzip"):
        assert (
            by_key[(bench, "samsung")].total_misses
            < by_key[(bench, "olimex")].total_misses
        ), bench

    # 3. Average stall-time ordering across devices.
    avg = {
        d: float(np.mean([by_key[(b, d)].stall_percent for b in spec]))
        for d in ("alcatel", "samsung", "olimex")
    }
    print(f"Average stall%: {avg}")
    assert avg["alcatel"] < avg["samsung"] < avg["olimex"]

    # 4. Microbenchmark counts track the engineered TM on all devices.
    for tm, cm in ((256, 1), (256, 5), (1024, 10), (4096, 50)):
        name = f"micro_tm{tm}_cm{cm}"
        for d in ("alcatel", "samsung", "olimex"):
            # Whole-program count: TM plus page-touch/startup blobs.
            assert by_key[(name, d)].total_misses >= 0.95 * tm
