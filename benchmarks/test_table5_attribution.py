"""Table V: per-function attribution of parser's misses and stalls.

The paper's conclusion from Table V: "the batch_process function
should be the main target for optimizations that target LLC misses -
it occupies the largest fraction of execution time, it suffers the
highest LLC miss rate, and it has the highest fraction of its
execution time spent on stalls caused by these LLC misses."
"""

from repro.attribution.report import format_region_table
from repro.experiments.tables import table5_rows


def test_table5_parser_attribution(once):
    rows = once(table5_rows, scale=1.0)

    print("\nTable V - parser regions (EMPROF + spectral attribution)")
    print(format_region_table(rows))

    by_name = {r.region: r for r in rows}
    assert {"read_dictionary", "init_randtable", "batch_process"} <= set(by_name)

    batch = by_name["batch_process"]
    read = by_name["read_dictionary"]
    rand = by_name["init_randtable"]

    # batch_process wins on every Table V column.
    assert batch.cycles == max(r.cycles for r in rows)
    assert batch.total_misses == max(r.total_misses for r in rows)
    assert batch.miss_rate_per_mcycle == max(r.miss_rate_per_mcycle for r in rows)
    assert batch.stall_percent == max(r.stall_percent for r in rows)

    # init_randtable is the quiet region (paper: 318/Mcycle vs 16.8k).
    assert rand.miss_rate_per_mcycle < 0.4 * batch.miss_rate_per_mcycle
    assert rand.total_misses < read.total_misses

    # Average latencies for the big regions sit near the device's
    # memory latency (paper: 211-219 cycles on their device; ours is
    # an Olimex model with a ~282-cycle latency).
    assert 230 < batch.avg_latency_cycles < 380
    assert 230 < read.avg_latency_cycles < 380
