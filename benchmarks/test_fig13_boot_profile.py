"""Fig. 13: profiling the boot sequence.

EMPROF profiles two boots of the IoT device - something no on-device
profiler can do, since during boot nothing is initialized.  The two
runs show the same characteristic miss-rate-vs-time shape with small
run-to-run variation.
"""

import numpy as np

from repro.experiments.figures import fig13_boot_profile


def test_fig13_boot_miss_rate_timeline(once):
    runs = once(fig13_boot_profile, seeds=(0, 1), scale=1.0)

    print("\nFig. 13 - boot-sequence miss rate over time (two runs)")
    for r in runs:
        peak = float(r.miss_rate.max())
        t_end = float(r.time_ms[-1]) if len(r.time_ms) else 0.0
        print(
            f"  run {r.run_id}: {r.total_misses} misses over {t_end:.2f} ms, "
            f"peak rate {peak:.0f} misses/ms"
        )

    a, b = runs
    assert a.total_misses > 300
    assert b.total_misses > 300

    # Same boot flow: totals agree within ~25%.
    assert abs(a.total_misses - b.total_misses) < 0.25 * a.total_misses

    # The profile is structured, not flat: the miss-heavy early phases
    # (bootloader/kernel image streaming) against the quieter tail
    # once services are up.
    n = len(a.miss_rate)
    early = a.miss_rate[: n // 2].mean()
    late = a.miss_rate[-n // 5 :].mean()
    assert early > 2 * max(late, 1e-9)
    # The rate peak sits in the first half of the boot.
    assert int(np.argmax(a.miss_rate)) < n // 2

    # Distinct runs: the timelines differ sample-by-sample.
    m = min(len(a.miss_rate), len(b.miss_rate))
    assert not np.array_equal(a.miss_rate[:m], b.miss_rate[:m])

    # ... but correlate strongly (same boot structure).
    if m > 10:
        corr = np.corrcoef(a.miss_rate[:m], b.miss_rate[:m])[0, 1]
        print(f"  run-to-run correlation: {corr:.3f}")
        assert corr > 0.3
