"""Fig. 7: the microbenchmark's EM signal, overview and CM-group zoom.

One run with CM=10 on the Olimex model: the marker loops delimit the
measurement window, and the zoom shows one group of ten distinguishable
misses.
"""

from repro.experiments.figures import fig7_microbenchmark_signal


def test_fig7_signal_and_zoom(once):
    r = once(fig7_microbenchmark_signal, tm=100, cm=10)

    print("\nFig. 7 - microbenchmark EM signal (Olimex, TM=100, CM=10)")
    print(f"  overview samples : {len(r.overview.signal)}")
    print(
        f"  marker window    : [{r.overview.annotations['window_begin']:.0f}, "
        f"{r.overview.annotations['window_end']:.0f})"
    )
    print(f"  zoom samples     : {len(r.zoom.signal)}")
    print(f"  detected / TM    : {r.detected_in_window} / {r.expected}")

    # The window was found and the count matches the engineered TM.
    assert r.overview.annotations["window_end"] > r.overview.annotations["window_begin"]
    assert abs(r.detected_in_window - r.expected) <= 2
    # The zoom contains the first CM group's dips.
    assert r.zoom.signal.min() < 0.5 * r.zoom.signal.max()
