"""Ablation A7: multi-core EM interference vs profiling accuracy.

The paper profiles single-threaded programs, but the Alcatel is a
quad-core part: sibling cores emit EM energy that adds to the received
magnitude and *fills in* the profiled core's stall dips.  This sweep
raises the interference level (relative to the profiled core's busy
emission) and measures miss-count accuracy on the engineered
microbenchmark - quantifying how quiet the rest of the SoC must be
for contactless profiling to stay trustworthy.
"""

from repro.core.validate import count_accuracy
from repro.devices import alcatel, default_channel
from repro.experiments.runner import microbenchmark_window, run_device
from repro.workloads import Microbenchmark

from dataclasses import replace

LEVELS = (0.0, 0.1, 0.25, 0.45, 0.8)


def test_interference_sweep(once):
    workload = Microbenchmark(total_misses=512, consecutive_misses=8)

    def sweep():
        results = {}
        base = default_channel("alcatel", seed=2)
        for level in LEVELS:
            channel = replace(
                base,
                interference_level=level,
                interference_duty=0.3,
            )
            run = run_device(
                workload, alcatel(), bandwidth_hz=40e6, channel=channel
            )
            try:
                report, _ = microbenchmark_window(run)
                acc = count_accuracy(report.miss_count, workload.total_misses)
            except ValueError:
                acc = 0.0
            results[level] = acc
        return results

    results = once(sweep)
    print("\nAblation A7 - sibling-core interference vs accuracy (Alcatel, TM=512)")
    for level, acc in results.items():
        print(f"  interference {level:4.2f} x busy level: accuracy {100 * acc:6.2f}%")

    # A quiet SoC profiles essentially perfectly.
    assert results[0.0] > 0.98
    # Light interference (10% of the busy level) is absorbed by the
    # normalization.
    assert results[0.1] > 0.95
    # Interference comparable to the core's own emission destroys the
    # dip contrast - the quantified "keep the other cores idle" rule.
    assert results[0.8] < results[0.1]
