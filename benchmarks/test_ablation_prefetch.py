"""Ablation A8: prefetch aggressiveness on the Samsung model.

Section VI-A credits the Samsung's hardware prefetcher for its lower
miss counts.  This sweep varies the prefetch degree (lines fetched
ahead per confirmed stream) on two workload shapes:

* a prefetchable streaming benchmark (equake) - misses should fall
  steeply with degree;
* the pointer-chasing mcf - immune by construction, as the
  microbenchmark's randomization argument (Section V-B) predicts.
"""

from dataclasses import replace

from repro.devices import samsung
from repro.experiments.runner import run_simulator
from repro.workloads import spec_workload

DEGREES = (0, 1, 2, 4, 8)


def test_prefetch_degree_sweep(once):
    def sweep():
        results = {}
        for bench in ("equake", "mcf"):
            per_degree = {}
            for degree in DEGREES:
                cfg = samsung()
                cfg = replace(
                    cfg,
                    prefetcher_enabled=degree > 0,
                    prefetch_degree=max(degree, 1) if degree else 0,
                )
                run = run_simulator(spec_workload(bench), config=cfg)
                truth = run.result.ground_truth
                per_degree[degree] = {
                    "misses": truth.miss_count(),
                    "stall_cycles": truth.memory_stall_cycles(),
                    "prefetches": run.result.stats["prefetches"],
                }
            results[bench] = per_degree
        return results

    results = once(sweep)
    print("\nAblation A8 - prefetch degree (Samsung model)")
    for bench, per_degree in results.items():
        print(f"  {bench}:")
        for degree, r in per_degree.items():
            print(
                f"    degree {degree}: misses={r['misses']:5d} "
                f"stall cycles={r['stall_cycles']:8d} "
                f"prefetches={r['prefetches']:6.0f}"
            )

    equake = results["equake"]
    mcf = results["mcf"]

    # Streaming: monotone-ish miss reduction with degree, saturating.
    assert equake[4]["misses"] < 0.7 * equake[0]["misses"]
    assert equake[8]["misses"] <= equake[1]["misses"]
    assert equake[4]["stall_cycles"] < equake[0]["stall_cycles"]

    # Pointer chasing: no degree helps (within a few percent).
    base = mcf[0]["misses"]
    for degree in DEGREES[1:]:
        assert abs(mcf[degree]["misses"] - base) < 0.08 * base

    # The prefetcher actually worked (issued requests) in both cases;
    # on mcf they were simply useless.
    assert equake[4]["prefetches"] > 100
