"""Fig. 4: LLC hit and miss in the physical (EM-chain) signal.

The Fig. 2 experiment repeated through the full measurement chain on
the Olimex device model: probe gain, supply drift, noise, 40 MHz
receiver.  The hit/miss contrast must survive the channel.
"""

from repro.experiments.figures import fig4_physical_hit_vs_miss


def test_fig4_physical_hit_vs_miss(once):
    hit, miss = once(fig4_physical_hit_vs_miss)

    print("\nFig. 4 - physical side-channel signal (Olimex, 40 MHz BW)")
    print(
        f"  resident array : {hit.annotations['detected_stalls']:.0f} detected stalls"
    )
    print(
        f"  cold array     : {miss.annotations['detected_stalls']:.0f} detected stalls, "
        f"mean {miss.annotations['mean_stall_ns']:.0f} ns"
    )

    # The resident array produces essentially no detectable stalls
    # (LLC-hit stalls are too brief); the cold array produces one
    # long stall per load.
    assert miss.annotations["detected_stalls"] >= 50
    assert hit.annotations["detected_stalls"] < 0.2 * miss.annotations["detected_stalls"]
    # "stalls produced by most LLC misses lasts around 300 ns" (Sec. III-C).
    assert 180 < miss.annotations["mean_stall_ns"] < 600
