#!/usr/bin/env python3
"""Calibrate EMPROF for a new target from one engineered capture.

Section IV chooses the dip-duration threshold from device facts; in a
real campaign those facts are discovered by calibration: record the
TM/CM microbenchmark (known miss count) once, then search the detector
parameter grid for the configuration that recovers it best.

This example deliberately starts from a *bad* situation - a noisy
probe position on the Samsung phone - and shows the calibration
recovering a working configuration, plus the sensitivity profile that
says which knobs actually matter on this target.
"""

from repro.acquire import SimulatedSource
from repro.core.calibrate import calibrate_detector, sensitivity
from repro.core.markers import find_marker_window
from repro.core.profiler import Emprof
from repro.devices import samsung
from repro.emsignal.channel import ChannelConfig
from repro.workloads import Microbenchmark


def main() -> None:
    device = samsung()
    workload = Microbenchmark(total_misses=256, consecutive_misses=8)
    # A mediocre probe position: low-ish SNR, noticeable drift.
    channel = ChannelConfig(probe_gain=0.4, snr_db=18.0, drift_amplitude=0.1,
                            seed=7)
    source = SimulatedSource(workload, device=device, channel=channel, seed=7)
    capture = source.capture()
    print(f"calibration capture: {len(capture.magnitude)} samples on "
          f"{device.name} (SNR 18 dB, 10% drift)")

    result = calibrate_detector(
        capture,
        expected_misses=workload.total_misses,
        thresholds=(0.30, 0.38, 0.45, 0.52, 0.60),
        min_durations=(40.0, 70.0, 100.0),
        windows=(801, 2001),
    )
    best = result.best
    print(f"\nsearched {len(result.points)} parameter combinations")
    print(f"best: threshold={best.threshold:.2f}, "
          f"min_duration={best.min_duration_cycles:.0f} cycles, "
          f"window={best.window_samples} samples")
    print(f"accuracy: {100 * result.accuracy:.2f}% "
          f"({best.detected} / {result.expected} engineered misses)")

    print("\nsensitivity (mean accuracy per setting):")
    for knob, profile in sensitivity(result.points).items():
        cells = "  ".join(f"{v:g}:{100 * acc:.1f}%" for v, acc in profile.items())
        print(f"  {knob:22s} {cells}")

    # Use the calibrated configuration on a fresh capture.
    fresh = SimulatedSource(workload, device=device, channel=channel,
                            seed=8).capture()
    profiler = Emprof.from_capture(fresh, config=result.config)
    window = find_marker_window(profiler.signal, marker_min_samples=200)
    report = profiler.profile_window(window.begin_sample, window.end_sample)
    print(f"\nfresh capture with the calibrated config: "
          f"{report.miss_count} / {workload.total_misses} detected")


if __name__ == "__main__":
    main()
