#!/usr/bin/env python3
"""Live monitoring: profile a capture stream with bounded memory.

Long captures (the paper's SPEC runs needed a streaming digitizer
chain, Section VI) cannot be profiled by loading everything first.
:class:`~repro.core.streaming.StreamingEmprof` consumes the capture in
chunks - here fed from a simulated boot as if arriving from an SDR in
~100 us pieces - and reports stalls as they are finalized, with memory
bounded by one normalization window regardless of capture length.

The streamed result is bit-identical to the batch profiler's.
"""

import numpy as np

from repro.core.normalize import NormalizerConfig
from repro.core.profiler import Emprof, EmprofConfig
from repro.core.streaming import StreamingEmprof
from repro.devices import default_channel, olimex
from repro.emsignal import measure
from repro.render import sparkline
from repro.sim.machine import simulate
from repro.workloads.boot import BootWorkload

CHUNK = 4096  # ~100 us of capture at 40 MHz
NORM = NormalizerConfig(window_samples=2001)


def main() -> None:
    device = olimex()
    print("recording a boot of the IoT device ...")
    result = simulate(BootWorkload(seed=0), device)
    capture = measure(result, bandwidth_hz=40e6,
                      channel=default_channel(device.name))
    x = capture.magnitude
    print(f"capture: {len(x)} samples "
          f"({capture.duration_s * 1e3:.2f} ms at 40 MS/s)\n")

    streamer = StreamingEmprof(
        capture.sample_rate_hz, capture.clock_hz, normalizer=NORM
    )
    print(f"{'t (ms)':>8s} {'chunk stalls':>12s} {'total':>6s}  activity")
    for start in range(0, len(x), CHUNK):
        chunk = x[start : start + CHUNK]
        new = streamer.process(chunk)
        t_ms = 1e3 * (start + len(chunk)) / capture.sample_rate_hz
        print(f"{t_ms:8.3f} {len(new):12d} {len(streamer.stalls_so_far):6d}"
              f"  [{sparkline(chunk, width=32, ascii_only=True)}]")

    report = streamer.finish()
    print()
    print(report.summary())

    # Cross-check against the batch profiler on the same capture.
    batch = Emprof.from_capture(
        capture, config=EmprofConfig(normalizer=NORM)
    ).profile()
    assert report.miss_count == batch.miss_count
    assert abs(report.stall_cycles - batch.stall_cycles) < 1e-6
    print(f"\nstreamed result identical to batch "
          f"({batch.miss_count} stalls) - memory bounded by one "
          f"{NORM.window_samples}-sample window.")


if __name__ == "__main__":
    main()
