#!/usr/bin/env python3
"""How much receiver bandwidth does EMPROF need?  (Fig. 12)

Equipment cost scales steeply with capture bandwidth, so Section VI-B
asks the practical question: how narrow can the measurement be before
profiling degrades?  This example sweeps 20-160 MHz on the Alcatel
phone and Olimex board models running mcf and prints detected-stall
counts and mean stall durations per bandwidth.

The paper's findings, visible in the output:
* at 20 MHz the (faster-clocked, shorter-stall) Alcatel loses almost
  every stall, keeping only extreme-duration outliers;
* the IoT board still detects at 20 MHz but measures durations more
  coarsely;
* both devices stabilize by 60 MHz - ~6% of the clock frequency.
"""

from repro.experiments.figures import fig12_bandwidth_sweep


def main() -> None:
    print("Measurement-bandwidth sweep - SPEC CPU2000 mcf (Fig. 12)")
    print("=" * 64)
    points = fig12_bandwidth_sweep(benchmark="mcf")

    by_device = {}
    for p in points:
        by_device.setdefault(p.device, []).append(p)

    for device, series in by_device.items():
        print(f"\n{device}")
        print(f"  {'BW (MHz)':>9s} {'stalls':>7s} {'mean (cyc)':>11s} {'total (cyc)':>12s}")
        for p in series:
            print(
                f"  {p.bandwidth_hz / 1e6:9.0f} {p.detected_stalls:7d} "
                f"{p.mean_stall_cycles:11.1f} {p.total_stall_cycles:12.0f}"
            )
        full = series[-1]
        narrow = series[0]
        if narrow.detected_stalls < 0.5 * full.detected_stalls:
            print(f"  -> at {narrow.bandwidth_hz / 1e6:.0f} MHz this device keeps only "
                  f"{narrow.detected_stalls} stalls (mean "
                  f"{narrow.mean_stall_cycles:.0f} cycles - the extreme tail)")
        else:
            print("  -> detection survives even the narrowest capture; only "
                  "duration resolution degrades")

    print("\nRule of thumb from the paper: bandwidth equal to ~6% of the")
    print("target's clock frequency (60 MHz for ~1 GHz parts) suffices.")


if __name__ == "__main__":
    main()
