#!/usr/bin/env python3
"""Profile a device's boot sequence - where no other profiler works.

Section VI-C's headline capability: during boot there is no OS, no
perf, no initialized performance counters, and nowhere to store
profiling data - but the EM signal exists from the first instruction
fetch.  EMPROF profiles it from outside.

This example boots the IoT device model twice and prints the LLC
miss-rate timeline of each run (the Fig. 13 series), then summarizes
where the memory time goes - the input a developer would use to decide
whether memory-locality work could speed up boot.
"""

import numpy as np

from repro.core.profiler import Emprof
from repro.devices import default_channel, olimex
from repro.emsignal import measure
from repro.sim.machine import simulate
from repro.workloads.boot import BootWorkload


def ascii_sparkline(values, width=60) -> str:
    """Render a rate series as a one-line ASCII chart."""
    blocks = " .:-=+*#%@"
    if len(values) == 0:
        return ""
    folded = np.array_split(np.asarray(values, dtype=float), width)
    folded = np.array([chunk.mean() if len(chunk) else 0.0 for chunk in folded])
    top = folded.max() or 1.0
    return "".join(blocks[int(v / top * (len(blocks) - 1))] for v in folded)


def profile_boot(seed: int):
    device = olimex()
    boot = BootWorkload(seed=seed)
    result = simulate(boot, device)
    capture = measure(result, bandwidth_hz=40e6,
                      channel=default_channel(device.name, seed=seed))
    report = Emprof.from_capture(capture).profile()
    return device, report


def main() -> None:
    print("EMPROF boot profiling (two runs, Fig. 13)")
    print("=" * 64)
    for seed in (0, 1):
        device, report = profile_boot(seed)
        bin_ms = 0.05
        bin_cycles = bin_ms * 1e-3 * device.clock_hz
        starts, counts = report.miss_rate_timeline(bin_cycles)
        rate = counts / bin_ms  # misses per millisecond
        duration_ms = report.total_cycles / device.clock_hz * 1e3

        print(f"\nboot run {seed}: {report.miss_count} LLC-miss stalls over "
              f"{duration_ms:.2f} ms "
              f"({100 * report.stall_fraction:.1f}% of boot spent stalled)")
        print(f"  rate/ms  [{ascii_sparkline(rate)}]")
        print(f"  peak     {rate.max():.0f} misses/ms at "
              f"t = {starts[np.argmax(rate)] / device.clock_hz * 1e3:.2f} ms")

        # Where would locality work pay off?  The early image-streaming
        # phases dominate the miss budget.
        half = len(counts) // 2
        early = counts[:half].sum()
        print(f"  first half of boot: {early} misses "
              f"({100 * early / max(1, counts.sum()):.0f}% of total)")

    print("\nInterpretation: the bootloader/kernel-image streaming phases")
    print("dominate the boot's memory stalls; locality or prefetch work")
    print("there shortens boot the most (the Section VI-C decision).")


if __name__ == "__main__":
    main()
