#!/usr/bin/env python3
"""Quickstart: profile a known workload with EMPROF.

Runs the paper's TM/CM microbenchmark (Fig. 6) on the Olimex
A13-OLinuXino-MICRO device model, records its EM emanations through
the measurement apparatus (near-field probe -> 40 MHz receiver), and
profiles the capture with EMPROF:

1. the engineered workload produces exactly TM = 256 LLC misses,
2. EMPROF finds the marker-loop window in the signal,
3. counts the miss-induced stalls inside it, and
4. reports each stall's latency.

Expected output: a detected count within ~1% of 256 and a mean stall
around 300 ns, matching Table II and Section III-C.
"""

from repro import Emprof, Microbenchmark, simulate
from repro.core.markers import find_marker_window
from repro.core.stats import stalls_summary
from repro.devices import default_channel, olimex
from repro.emsignal import measure


def main() -> None:
    # 1. The workload: 256 misses in groups of 5 (Fig. 6).
    workload = Microbenchmark(total_misses=256, consecutive_misses=5)
    device = olimex()
    print(f"device   : {device.name} @ {device.clock_hz / 1e9:.3f} GHz, "
          f"LLC {device.llc.size_bytes // 1024} KB")
    print(f"workload : {workload.name} "
          f"(expected LLC misses: {workload.expected_misses()})")

    # 2. Execute on the device model and record the EM emanations.
    result = simulate(workload, device)
    capture = measure(
        result, bandwidth_hz=40e6, channel=default_channel(device.name)
    )
    print(f"capture  : {len(capture.magnitude)} samples @ "
          f"{capture.sample_rate_hz / 1e6:.0f} MS/s "
          f"({capture.duration_s * 1e3:.2f} ms)")

    # 3. Profile with EMPROF.  The profiler never sees the simulator's
    #    internals - only the received magnitude.
    profiler = Emprof.from_capture(capture)
    window = find_marker_window(capture.magnitude, marker_min_samples=200)
    report = profiler.profile_window(window.begin_sample, window.end_sample)

    print()
    print(report.summary())

    # 4. Compare against the engineered ground truth.
    expected = workload.expected_misses()
    error = abs(report.miss_count - expected)
    print()
    print(f"engineered misses : {expected}")
    print(f"EMPROF detected   : {report.miss_count} "
          f"(accuracy {100 * (1 - error / expected):.2f}%)")

    summary = stalls_summary(report.stalls)
    mean_ns = 1e9 * summary.mean / device.clock_hz
    print(f"mean stall        : {summary.mean:.0f} cycles = {mean_ns:.0f} ns "
          f"(paper: ~300 ns on this board)")


if __name__ == "__main__":
    main()
