#!/usr/bin/env python3
"""Attribute LLC-miss stalls to application code (Table V / Fig. 14).

EMPROF locates stalls on the timeline; Spectral-Profiling-style
matching of the *same* signal identifies which code region each part
of the timeline belongs to.  Joining the two yields a per-function
memory profile with zero observer effect.

Flow:
1. train the spectral profiler on each parser region in isolation,
2. capture a full parser run on the Olimex model,
3. segment the timeline into regions and attribute every stall,
4. print the Table V report and the optimization conclusion.
"""

from repro.attribution import SpectralProfiler, attribute_stalls, format_region_table
from repro.core.profiler import Emprof
from repro.devices import default_channel, olimex
from repro.emsignal import measure
from repro.sim.machine import simulate
from repro.workloads.spec import SpecWorkload, spec_workload


def capture_run(workload, device, seed=0):
    result = simulate(workload, device)
    return measure(result, bandwidth_hz=40e6,
                   channel=default_channel(device.name, seed=seed))


def main() -> None:
    device = olimex()
    parser = spec_workload("parser")

    # 1. Training: run each region's code alone (the lab calibration
    #    step of Spectral Profiling - done once per target binary).
    profiler = SpectralProfiler(window_samples=128, smoothing_frames=7)
    for phase in parser.phases:
        solo = SpecWorkload(f"train_{phase.region}", [phase], seed=parser.seed)
        train = capture_run(solo, device)
        profiler.train(phase.region, train.magnitude, train.sample_rate_hz)
        print(f"trained region {phase.region!r} "
              f"({len(train.magnitude)} samples)")

    # 2. The profiled run: full parser, one capture.
    capture = capture_run(parser, device)
    report = Emprof.from_capture(capture).profile()
    print(f"\nfull run: {report.miss_count} stalls, "
          f"{100 * report.stall_fraction:.1f}% of time stalled")

    # 3. Attribution.
    timeline = profiler.attribute(capture.magnitude, capture.sample_rate_hz)
    print(f"timeline segmented into {len(timeline.segments)} region segments")

    rows = attribute_stalls(report, timeline)
    print("\nTable V - per-region memory profile")
    print(format_region_table(rows))

    # 4. The actionable conclusion (paper, Section VI-D).
    worst = max(rows, key=lambda r: r.stall_percent)
    print(f"\n=> optimize {worst.region!r}: it has the highest miss rate "
          f"({worst.miss_rate_per_mcycle:.0f}/Mcycle) and spends "
          f"{worst.stall_percent:.1f}% of its time stalled on memory.")


if __name__ == "__main__":
    main()
