#!/usr/bin/env python3
"""Flight-recorder walkthrough: a faulted capture through `repro explain`.

Builds the paper's TM/CM microbenchmark capture, impairs it with
sample dropouts and an AGC gain step (the fault families from
`repro.faults`), and then asks the engine to *explain itself*:

1. `repro explain` re-profiles the capture with the flight recorder
   attached and prints one provenance card per stall — the exact
   trigger sample, threshold margin, hysteresis merge chain, carry
   provenance, and quality overlaps;
2. the same evidence is rendered as a self-contained HTML page
   (`results/explain_demo.html`, no scripts, no network);
3. the raw decision log is kept as an NDJSON sidecar
   (`results/explain_demo.flight`) for grepping and diffing.

This is the script behind `make explain-demo`.
"""

from dataclasses import replace
from pathlib import Path

from repro import Microbenchmark, simulate
from repro.cli import main as repro_main
from repro.devices import default_channel, olimex
from repro.emsignal import measure
from repro.faults import DropoutFault, FaultInjector, GainStepFault
from repro.io import save_capture

RESULTS = Path("results")


def main() -> int:
    RESULTS.mkdir(exist_ok=True)

    # 1. A clean capture of the engineered workload.
    workload = Microbenchmark(total_misses=256, consecutive_misses=5)
    device = olimex()
    result = simulate(workload, device)
    capture = measure(
        result, bandwidth_hz=40e6, channel=default_channel(device.name)
    )
    print(f"capture  : {len(capture.magnitude)} samples @ "
          f"{capture.sample_rate_hz / 1e6:.0f} MS/s")

    # 2. Impair it: receiver dropouts plus one AGC gain step, so the
    #    explanation has quality events and near misses to talk about.
    injector = FaultInjector(
        [DropoutFault(rate=0.002), GainStepFault(steps=1)], seed=7
    )
    impaired = injector.apply(capture.magnitude)
    print(f"faults   : {impaired.log.summary()}")
    faulted = replace(capture, magnitude=impaired.signal)
    capture_path = RESULTS / "explain_demo_capture.npz"
    save_capture(capture_path, faulted)

    # 3. Ask why.  This is exactly `repro explain <capture> --html ...
    #    --flight-out ...` from the shell.
    print()
    return repro_main([
        "explain",
        str(capture_path),
        "--html", str(RESULTS / "explain_demo.html"),
        "--flight-out", str(RESULTS / "explain_demo.flight"),
    ])


if __name__ == "__main__":
    raise SystemExit(main())
