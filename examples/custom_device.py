#!/usr/bin/env python3
"""Bring your own device: model new hardware and check EMPROF on it.

The library's device presets mirror the paper's three targets, but the
machine model is fully parametric.  This example builds a hypothetical
quad-issue 1.5 GHz edge SoC with a 512 KB LLC and fast LPDDR4, runs
the validation microbenchmark, and checks whether the default EMPROF
parameters still profile it accurately - the workflow for qualifying
a new target before a real measurement campaign.
"""

from repro import Emprof, Microbenchmark, simulate
from repro.core.markers import find_marker_window
from repro.devices import default_channel, OLIMEX
from repro.emsignal import measure
from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    MemoryConfig,
    PowerConfig,
)

KB = 1024


def edge_soc() -> MachineConfig:
    """A hypothetical 1.5 GHz quad-issue in-order edge SoC."""
    return MachineConfig(
        name="edge_soc",
        clock_hz=1.5e9,
        core=CoreConfig(width=4, mshr_entries=6, runahead=2048, fetch_buffer=16),
        l1i=CacheConfig(32 * KB, associativity=4, hit_latency=1),
        l1d=CacheConfig(32 * KB, associativity=4, hit_latency=1),
        llc=CacheConfig(512 * KB, associativity=8, hit_latency=18),
        memory=MemoryConfig(
            access_latency=165,  # 110 ns LPDDR4 at 1.5 GHz
            num_banks=16,
            bank_busy=24,
            refresh_interval=105_000,  # 70 us
            refresh_duration=1_800,
            contention_prob=0.02,
        ),
        power=PowerConfig(bin_cycles=30),  # native trace still 50 MS/s
        prefetcher_enabled=True,
        prefetch_degree=2,
    )


def main() -> None:
    device = edge_soc()
    print(f"custom device: {device.name} @ {device.clock_hz / 1e9:.1f} GHz, "
          f"LLC {device.llc.size_bytes // KB} KB, "
          f"memory {device.memory.access_latency} cycles "
          f"({1e9 * device.memory.access_latency / device.clock_hz:.0f} ns)")

    # Qualify with the engineered microbenchmark: randomized accesses
    # defeat this SoC's prefetcher, so every access is a real miss.
    # Quad-issue at 1.5 GHz chews the default inter-miss gap in ~1
    # signal sample; give this faster target a longer gap so dips stay
    # separable (part of qualifying a new device).
    workload = Microbenchmark(
        total_misses=512, consecutive_misses=8, gap_instructions=300
    )
    result = simulate(workload, device)
    capture = measure(result, bandwidth_hz=60e6, channel=default_channel(OLIMEX))
    print(f"capture: {capture.duration_s * 1e3:.2f} ms at "
          f"{capture.bandwidth_hz / 1e6:.0f} MHz "
          f"({capture.sample_period_cycles:.1f} cycles/sample)")

    profiler = Emprof.from_capture(capture)
    window = find_marker_window(capture.magnitude, marker_min_samples=200)
    report = profiler.profile_window(window.begin_sample, window.end_sample)

    expected = workload.expected_misses()
    acc = 1 - abs(report.miss_count - expected) / expected
    print()
    print(report.summary())
    print(f"\nqualification: detected {report.miss_count} / {expected} "
          f"engineered misses ({100 * acc:.2f}%)")
    if acc > 0.98:
        print("=> default EMPROF parameters qualify on this target.")
    else:
        print("=> tune DetectorConfig (threshold / min duration) for this "
              "target before a campaign.")

    # Cross-check the stall length against the device's memory latency.
    mean = report.mean_latency_cycles
    print(f"mean stall {mean:.0f} cycles vs device latency "
          f"{device.memory.access_latency} cycles")


if __name__ == "__main__":
    main()
