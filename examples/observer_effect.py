#!/usr/bin/env python3
"""The observer effect, demonstrated (the paper's core motivation).

Profile the same program three ways:

1. with EMPROF, from outside - the program never knows;
2. with coarse counter sampling (interrupt every 50k instructions);
3. with fine, attribution-grade sampling (every 2k instructions).

The instrumented runs *change the program being measured*: handler
code and data evict the application's cache lines, runtime inflates,
and most of the counted misses end up being the profiler's own.
"""

from repro.baselines.instrumentation import (
    InstrumentationConfig,
    InstrumentedWorkload,
    observer_effect,
)
from repro.core.profiler import Emprof
from repro.core.validate import validate_profile
from repro.devices import default_channel, olimex
from repro.emsignal import measure
from repro.sim.machine import simulate
from repro.workloads import spec_workload


def main() -> None:
    device = olimex()
    workload = spec_workload("twolf")

    # The clean run: what the program actually does.
    clean_result = simulate(workload, device)
    clean = clean_result.ground_truth
    print(f"clean run: {clean.miss_count()} LLC misses, "
          f"{clean.total_cycles} cycles")

    # 1. EMPROF: profile the clean run from outside.
    capture = measure(clean_result, bandwidth_hz=40e6,
                      channel=default_channel(device.name))
    report = Emprof.from_capture(capture).profile()
    v = validate_profile(report, clean)
    print(f"\nEMPROF (external, zero contact):")
    print(f"  overhead          : 0.00% (the profiled run IS the real run)")
    print(f"  stall accounting  : {100 * v.stall_accuracy:.1f}% accurate")

    # 2./3. On-device sampling at two rates.
    for period in (50_000, 2_000):
        instrumented = InstrumentedWorkload(
            workload, InstrumentationConfig(period_instructions=period)
        )
        instr_truth = simulate(instrumented, device).ground_truth
        effect = observer_effect(clean, instr_truth)
        total = instr_truth.miss_count()
        print(f"\ncounter sampling every {period} instructions:")
        print(f"  overhead          : {100 * effect.overhead_fraction:.1f}% "
              f"more cycles")
        print(f"  app-miss distortion: {effect.app_miss_delta:+d} misses the "
              f"application would not have had")
        print(f"  counter pollution : {effect.handler_misses} of {total} "
              f"counted misses ({100 * effect.handler_misses / total:.0f}%) "
              f"are the profiler's own")

    print("\nConclusion: the finer the on-device sampling, the less the")
    print("measured program resembles the unprofiled one - while EMPROF's")
    print("measurement is the unprofiled run.")


if __name__ == "__main__":
    main()
