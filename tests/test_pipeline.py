"""Behavioural tests of the in-order pipeline timing model."""

import numpy as np
import pytest

from repro.sim.cache import CacheHierarchy
from repro.sim.config import CacheConfig, CoreConfig, MemoryConfig, PowerConfig
from repro.sim.dram import MainMemory
from repro.sim.isa import NO_CONSUMER, alu, branch, load, store
from repro.sim.pipeline import Pipeline
from repro.sim.power import PowerAccumulator
from repro.sim.trace import (
    CAUSE_DATA_MEM,
    CAUSE_IFETCH_MEM,
    CAUSE_LLC_HIT,
    CAUSE_MSHR_FULL,
    CAUSE_RUNAHEAD,
    CAUSE_STOREBUF,
)

MEM_LAT = 100


def build(width=2, mshr=4, runahead=1000, store_buffer=2, llc_hit_latency=20):
    core = CoreConfig(
        width=width,
        mshr_entries=mshr,
        runahead=runahead,
        fetch_buffer=4,
        store_buffer=store_buffer,
    )
    power_cfg = PowerConfig(bin_cycles=10)
    hierarchy = CacheHierarchy(
        CacheConfig(4 * 1024, associativity=2),
        CacheConfig(4 * 1024, associativity=2),
        CacheConfig(64 * 1024, associativity=8),
        np.random.default_rng(0),
    )
    memory = MainMemory(
        MemoryConfig(
            access_latency=MEM_LAT, num_banks=8, bank_busy=0, refresh_enabled=False
        )
    )
    pipe = Pipeline(
        core, power_cfg, hierarchy, memory, llc_hit_latency=llc_hit_latency
    )
    return pipe, PowerAccumulator(power_cfg)


def run(pipe, power, instrs):
    return pipe.run(iter(instrs), power)


def prewarm(pipe, pcs=(0x100,), addrs=()):
    """Pre-touch code/data lines so tests see only the misses they plant."""
    for pc in pcs:
        pipe.hierarchy.lookup_instruction(pc)
    for addr in addrs:
        pipe.hierarchy.lookup_data(addr)


def warm_code(n, pc=0x100):
    """ALU filler on a handful of warm I-lines."""
    return [alu(pc + 4 * (k % 8)) for k in range(n)]


class TestIssueTiming:
    def test_width_limits_ipc(self):
        pipe, power = build(width=2)
        prewarm(pipe)
        truth = run(pipe, power, warm_code(100))
        assert truth.total_cycles == pytest.approx(50, abs=2)

    def test_wider_core_is_faster(self):
        cycles = []
        for width in (1, 4):
            pipe, power = build(width=width)
            prewarm(pipe)
            cycles.append(run(pipe, power, warm_code(120)).total_cycles)
        assert cycles[0] > 3 * cycles[1]

    def test_instruction_count_recorded(self):
        pipe, power = build()
        truth = run(pipe, power, warm_code(37))
        assert truth.total_instructions == 37


class TestDataMissStalls:
    def test_cold_load_with_immediate_consumer_stalls(self):
        pipe, power = build()
        prewarm(pipe)
        instrs = warm_code(8) + [load(0x100, 0x10_0000, dep=0)] + warm_code(8)
        truth = run(pipe, power, instrs)
        mem_stalls = [s for s in truth.stalls if s.cause == CAUSE_DATA_MEM]
        assert len(mem_stalls) == 1
        assert mem_stalls[0].duration == pytest.approx(MEM_LAT, abs=8)

    def test_miss_recorded_with_latency(self):
        pipe, power = build()
        prewarm(pipe)
        truth = run(pipe, power, warm_code(4) + [load(0x100, 0x20_0000, dep=0)] + warm_code(4))
        assert truth.miss_count() == 1
        assert truth.misses[0].latency == MEM_LAT

    def test_far_consumer_hides_latency(self):
        pipe, power = build(width=1)
        prewarm(pipe)
        # 150 independent instructions cover the 100-cycle latency.
        instrs = [load(0x100, 0x30_0000, dep=150)] + warm_code(160)
        truth = run(pipe, power, instrs)
        assert truth.miss_count() == 1
        assert truth.hidden_miss_count() == 1
        assert truth.memory_stall_count() == 0

    def test_near_consumer_partially_hides(self):
        pipe, power = build(width=1)
        prewarm(pipe)
        instrs = [load(0x100, 0x40_0000, dep=40)] + warm_code(200)
        truth = run(pipe, power, instrs)
        stalls = truth.memory_stalls()
        assert len(stalls) == 1
        # ~40 cycles of the 100 were hidden by independent work.
        assert stalls[0].duration == pytest.approx(MEM_LAT - 40, abs=8)

    def test_l1_hit_causes_no_stall(self):
        pipe, power = build()
        prewarm(pipe)
        instrs = (
            warm_code(4)
            + [load(0x100, 0x50_0000, dep=5)]
            + warm_code(200)
            + [load(0x100, 0x50_0000, dep=0)]
            + warm_code(8)
        )
        truth = run(pipe, power, instrs)
        # Second load hits L1: exactly one memory stall at most (first load).
        assert truth.miss_count() == 1

    def test_llc_hit_produces_brief_stall(self):
        pipe, power = build(llc_hit_latency=20)
        prewarm(pipe)
        # Touch a line, evict it from L1 by filling the L1 set, re-load.
        target = 0x60_0000
        l1_sets = 4 * 1024 // (64 * 2)
        evict = [load(0x100, target + (k + 1) * l1_sets * 64, dep=2) for k in range(4)]
        instrs = (
            warm_code(4)
            + [load(0x100, target, dep=2)]
            + warm_code(150)
            + evict
            + warm_code(150)
            + [load(0x100, target, dep=0)]
            + warm_code(8)
        )
        truth = run(pipe, power, instrs)
        brief = [s for s in truth.stalls if s.cause == CAUSE_LLC_HIT]
        if truth.misses and not any(
            m.addr == target and m.detect_cycle > 100 for m in truth.misses
        ):
            # The re-load stayed out of memory; it must show as a brief stall.
            assert brief
            assert all(s.duration < 25 for s in brief)


class TestResources:
    def test_mshr_exhaustion_stalls(self):
        pipe, power = build(mshr=2)
        prewarm(pipe)
        # Three back-to-back dead-load misses: third must wait for an MSHR.
        instrs = [
            load(0x100, 0x70_0000, dep=NO_CONSUMER),
            load(0x104, 0x71_0000, dep=NO_CONSUMER),
            load(0x108, 0x72_0000, dep=NO_CONSUMER),
        ] + warm_code(8)
        truth = run(pipe, power, instrs)
        assert any(s.cause == CAUSE_MSHR_FULL for s in truth.stalls)

    def test_runahead_exhaustion_stalls(self):
        pipe, power = build(runahead=20)
        prewarm(pipe)
        instrs = [load(0x100, 0x73_0000, dep=NO_CONSUMER)] + warm_code(400)
        truth = run(pipe, power, instrs)
        assert any(s.cause == CAUSE_RUNAHEAD for s in truth.stalls)

    def test_store_misses_buffered_silently(self):
        pipe, power = build(store_buffer=8)
        prewarm(pipe)
        instrs = warm_code(4) + [store(0x100, 0x74_0000)] + warm_code(300)
        truth = run(pipe, power, instrs)
        assert truth.miss_count() == 1
        assert truth.misses[0].kind == "store"
        assert truth.memory_stall_count() == 0

    def test_store_buffer_overflow_stalls(self):
        pipe, power = build(store_buffer=1)
        prewarm(pipe)
        instrs = [store(0x100, 0x75_0000 + k * 4096) for k in range(4)] + warm_code(8)
        truth = run(pipe, power, instrs)
        assert any(s.cause == CAUSE_STOREBUF for s in truth.stalls)


class TestInstructionFetch:
    def test_cold_code_sweep_causes_ifetch_misses(self):
        pipe, power = build()
        instrs = [alu(0x8_0000 + 4 * k) for k in range(64)]  # 4 cold I-lines
        truth = run(pipe, power, instrs)
        ifetch = [m for m in truth.misses if m.kind == "ifetch"]
        assert len(ifetch) == 4
        assert any(s.cause == CAUSE_IFETCH_MEM for s in truth.stalls)

    def test_warm_loop_causes_no_fetch_misses(self):
        pipe, power = build()
        body = [alu(0x9_0000 + 4 * k) for k in range(8)]
        truth = run(pipe, power, body * 50)
        ifetch = [m for m in truth.misses if m.kind == "ifetch"]
        assert len(ifetch) <= 1  # only the first-line cold miss

    def test_ifetch_stall_begins_after_drain(self):
        pipe, power = build()
        instrs = warm_code(40) + [alu(0xA_0000)] + warm_code(8)
        truth = run(pipe, power, instrs)
        stall = next(s for s in truth.stalls if s.cause == CAUSE_IFETCH_MEM)
        miss = next(m for m in truth.misses if m.kind == "ifetch")
        assert stall.begin_cycle > miss.detect_cycle
        assert stall.end_cycle == miss.ready_cycle


class TestOverlapAttribution:
    def test_overlapping_misses_share_one_stall(self):
        pipe, power = build(mshr=4)
        prewarm(pipe)
        instrs = (
            warm_code(4)
            + [
                load(0x100, 0xB0_0000, dep=NO_CONSUMER),
                load(0x104, 0xB1_0000, dep=0),
            ]
            + warm_code(8)
        )
        truth = run(pipe, power, instrs)
        stalls = truth.memory_stalls()
        assert len(stalls) == 1
        assert len(stalls[0].miss_ids) == 2

    def test_miss_stall_linkage(self):
        pipe, power = build()
        prewarm(pipe)
        instrs = warm_code(4) + [load(0x100, 0xC0_0000, dep=0)] + warm_code(8)
        truth = run(pipe, power, instrs)
        miss = next(m for m in truth.misses if m.kind == "load")
        assert miss.stall_id is not None
        assert miss.miss_id in truth.stalls[miss.stall_id].miss_ids


class TestRegionAccounting:
    def test_region_cycles_sum_to_total(self):
        pipe, power = build()
        prewarm(pipe)
        instrs = [alu(0x100 + 4 * (k % 8), region=1 + k // 50) for k in range(100)]
        truth = run(pipe, power, instrs)
        assert sum(truth.region_cycles.values()) == truth.total_cycles

    def test_stall_carries_region(self):
        pipe, power = build()
        prewarm(pipe)
        instrs = warm_code(4) + [load(0x100, 0xD0_0000, dep=0, region=7)] + [
            alu(0x104, region=7)
        ] * 8
        truth = run(pipe, power, instrs)
        assert truth.memory_stalls()[0].region == 7
