"""The reusable ledger appender and its campaign integration.

:class:`repro.obs.ledger.LedgerAppender` keeps one append handle open
across a burst of appends (a campaign writing one record per run)
while preserving the ledger's contract: one write of one terminated
line per record, torn-line tolerance for readers, and fsync either
per-append or deferred to close.
"""

import json
from unittest import mock

from repro.obs.ledger import LedgerAppender, RunLedger, record


def make_record(label="run", wall_time_s=1.0):
    return record(kind="profile", label=label, wall_time_s=wall_time_s)


def test_appends_visible_to_readers(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    with ledger.appender() as sink:
        for i in range(5):
            sink.append(make_record(label=f"run{i}"))
    records = ledger.read()
    assert [r.label for r in records] == [f"run{i}" for i in range(5)]


def test_appender_interoperates_with_plain_append(tmp_path):
    # Records written before, through, and after an appender all land.
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    ledger.append(make_record(label="before"))
    with ledger.appender() as sink:
        sink.append(make_record(label="during"))
    ledger.append(make_record(label="after"))
    assert [r.label for r in ledger.read()] == ["before", "during", "after"]


def test_each_record_is_one_flushed_line(tmp_path):
    # Readers must never depend on close(): every append is flushed, so
    # a record is visible (one complete line) the moment append returns.
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    with ledger.appender(fsync_each=False) as sink:
        sink.append(make_record(label="early"))
        text = ledger.path.read_text()
        assert text.endswith("\n")
        assert json.loads(text.splitlines()[0])["label"] == "early"


def test_fsync_each_mode(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    with mock.patch("repro.obs.ledger.os.fsync") as fsync:
        with ledger.appender(fsync_each=True) as sink:
            sink.append(make_record())
            sink.append(make_record())
    assert fsync.call_count == 2


def test_deferred_fsync_happens_once_at_close(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    with mock.patch("repro.obs.ledger.os.fsync") as fsync:
        with ledger.appender(fsync_each=False) as sink:
            for _ in range(10):
                sink.append(make_record())
            assert fsync.call_count == 0
    assert fsync.call_count == 1


def test_deferred_fsync_skipped_when_nothing_written(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    with mock.patch("repro.obs.ledger.os.fsync") as fsync:
        with ledger.appender(fsync_each=False):
            pass
    assert fsync.call_count == 0


def test_append_after_close_raises(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    sink = ledger.appender()
    sink.append(make_record())
    sink.close()
    assert sink.closed
    try:
        sink.append(make_record())
    except ValueError as exc:
        assert "closed" in str(exc)
    else:  # pragma: no cover - the assertion above must trip
        raise AssertionError("append after close did not raise")
    sink.close()  # idempotent


def test_torn_final_line_still_tolerated(tmp_path):
    # The appender preserves the reader contract: a torn trailing line
    # (simulated crash mid-write) is skipped and counted, earlier
    # records survive.
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    with ledger.appender(fsync_each=False) as sink:
        sink.append(make_record(label="ok"))
    with open(ledger.path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "profile", "label": "torn')
    records, bad = ledger.read_with_errors()
    assert [r.label for r in records] == ["ok"]
    assert bad == 1


def test_appender_creates_parent_directory(tmp_path):
    ledger = RunLedger(tmp_path / "nested" / "dir" / "ledger.jsonl")
    with ledger.appender() as sink:
        sink.append(make_record())
    assert len(ledger) == 1


def test_constructor_type(tmp_path):
    sink = RunLedger(tmp_path / "l.jsonl").appender()
    assert isinstance(sink, LedgerAppender)
    sink.close()


# -- campaign integration ----------------------------------------------------


def _static_source(seed=0, n=3000):
    import numpy as np

    from repro.emsignal.receiver import Capture

    class StaticSource:
        def capture(self):
            rng = np.random.default_rng(seed)
            x = np.full(n, 0.9) + rng.normal(0, 0.02, n)
            for s in range(200, n - 200, 170):
                x[s : s + 13] = 0.1
            return Capture(
                magnitude=np.clip(x, 0.0, None),
                sample_rate_hz=50e6,
                clock_hz=1e9,
                bandwidth_hz=50e6,
                region_names={},
            )

    return StaticSource()


def test_campaign_uses_one_appender_for_all_runs(tmp_path, monkeypatch):
    """A campaign's per-run records go through one reusable handle."""
    from repro.core.detect import DetectorConfig
    from repro.core.normalize import NormalizerConfig
    from repro.core.profiler import EmprofConfig
    from repro.experiments import Campaign, RunSpec

    config = EmprofConfig(
        normalizer=NormalizerConfig(window_samples=301),
        detector=DetectorConfig(),
    )
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    opened = []
    original = RunLedger.appender

    def spying_appender(self, fsync_each=True):
        sink = original(self, fsync_each=fsync_each)
        opened.append(sink)
        return sink

    monkeypatch.setattr(RunLedger, "appender", spying_appender)

    campaign = Campaign(tmp_path / "camp", sleep=lambda _: None, ledger=ledger)
    specs = [
        RunSpec(f"r{i}", (lambda s=i: _static_source(seed=s)), config=config)
        for i in range(4)
    ]
    result = campaign.execute(specs)
    assert result.completed

    # One appender for the whole campaign, deferred-fsync mode, closed.
    assert len(opened) == 1
    assert opened[0].fsync_each is False
    assert opened[0].closed

    # One campaign-run record per run plus the campaign summary.
    records = ledger.read()
    assert len(records) == 5
    assert [r.kind for r in records].count("campaign-run") == 4
    assert records[-1].kind == "campaign"
