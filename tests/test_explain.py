"""`repro explain` internals: provenance cards, the near-miss log,
stall alignment, diff attribution, and first-divergence search.

The acceptance scenario lives here too: profile a clean signal and a
faulted copy, diff them, and check the attribution pinpoints the
injected fault window.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.normalize import NormalizerConfig
from repro.core.profiler import Emprof, EmprofConfig
from repro.obs.explain import (
    align_stalls,
    diff_reports,
    explain_report,
    first_divergence,
    near_miss_line,
    near_misses_between,
    stall_card,
)
from repro.obs.flight import FLIGHT_SCHEMA_VERSION, FlightEvent, FlightRecorder
from repro.render import diff_text, explain_html, explain_text

from tests.conftest import make_dip_signal

RATE_HZ = 50e6
CLOCK_HZ = 1e9
CFG = EmprofConfig(normalizer=NormalizerConfig(window_samples=301))


def _profile(x, flight=True):
    recorder = FlightRecorder() if flight else None
    report = Emprof(x, RATE_HZ, CLOCK_HZ, config=CFG).profile(flight=recorder)
    return report, recorder


@pytest.fixture(scope="module")
def dip_report():
    report, recorder = _profile(make_dip_signal())
    return report, recorder


class TestCards:
    def test_one_card_per_stall_with_trigger_and_margin(self, dip_report):
        report, _ = dip_report
        cards = explain_report(report)
        assert len(cards) == len(report.stalls)
        for card, ev in zip(cards, report.evidence.stalls):
            text = "\n".join(card.lines)
            assert f"sample {ev.trigger_sample}" in text
            assert f"margin {ev.depth_margin:.4f}" in text

    def test_card_mentions_merges_when_present(self):
        x = np.full(4000, 0.9)
        x[2000:2020] = 0.05
        x[2020:2022] = 0.5
        x[2022:2040] = 0.05
        report, _ = _profile(x)
        (card,) = explain_report(report)
        assert any("merged across a gap" in line for line in card.lines)

    def test_explain_without_evidence_raises(self):
        report, _ = _profile(make_dip_signal(), flight=False)
        with pytest.raises(ValueError, match="no evidence"):
            explain_report(report)

    def test_card_to_dict_is_json_safe(self, dip_report):
        import json

        report, _ = dip_report
        card = stall_card(report.evidence.stalls[0])
        json.dumps(card.to_dict())


class TestNearMisses:
    def test_lone_spike_is_a_near_miss_not_a_stall(self):
        x = np.full(4000, 0.9)
        x[2000] = 0.05
        report, _ = _profile(x)
        assert report.stalls == []
        misses = near_misses_between(report.evidence, 1900, 2100)
        assert len(misses) == 1
        assert misses[0].reason == "too_few_samples"
        assert misses[0].trigger_sample == 2000
        line = near_miss_line(misses[0])
        assert "2000" in line and "rejected" in line

    def test_window_filter_excludes_far_misses(self):
        x = np.full(4000, 0.9)
        x[2000] = 0.05
        report, _ = _profile(x)
        assert near_misses_between(report.evidence, 0, 100) == []


class _Interval:
    def __init__(self, begin, end):
        self.begin_sample = begin
        self.end_sample = end


class TestAlign:
    def test_identical_lists_pair_up(self):
        a = [_Interval(0, 10), _Interval(20, 30)]
        pairs, only_a, only_b = align_stalls(a, a)
        assert pairs == [(0, 0), (1, 1)]
        assert only_a == [] and only_b == []

    def test_offset_overlap_still_pairs(self):
        a = [_Interval(0, 10)]
        b = [_Interval(8, 15)]
        pairs, only_a, only_b = align_stalls(a, b)
        assert pairs == [(0, 0)]

    def test_disjoint_stalls_are_singletons(self):
        a = [_Interval(0, 10), _Interval(100, 110)]
        b = [_Interval(50, 60)]
        pairs, only_a, only_b = align_stalls(a, b)
        assert pairs == []
        assert only_a == [0, 1]
        assert only_b == [0]

    def test_trailing_b_stalls_are_unmatched(self):
        a = [_Interval(0, 10)]
        b = [_Interval(5, 12), _Interval(90, 95)]
        pairs, only_a, only_b = align_stalls(a, b)
        assert pairs == [(0, 0)]
        assert only_b == [1]


class TestDiff:
    def test_identical_runs_are_identical(self):
        report_a, _ = _profile(make_dip_signal())
        report_b, _ = _profile(make_dip_signal())
        diff = diff_reports(report_a, report_b)
        assert diff.identical
        assert diff.deltas == ()
        assert "identical" in diff_text(diff)

    def test_diff_pinpoints_injected_fault_window(self):
        # The acceptance scenario: erase one dip from the faulted copy
        # (fill the window with busy level) - run B must lose exactly
        # the stalls in that window, attributed as no_candidate there.
        x = make_dip_signal()
        report_a, _ = _profile(x)
        assert len(report_a.stalls) >= 3
        victim = report_a.stalls[2]
        lo = int(victim.begin_sample) - 5
        hi = int(victim.end_sample) + 5
        y = x.copy()
        y[lo:hi] = 0.9
        report_b, _ = _profile(y)

        diff = diff_reports(report_a, report_b)
        assert not diff.identical
        a_only = [d for d in diff.deltas if d.side == "a"]
        assert len(a_only) >= 1
        # Every lost stall lies inside the erased window.
        for delta in a_only:
            assert delta.begin_sample >= lo - 1
            assert delta.end_sample <= hi + 1
            assert delta.cause == "no_candidate"
            assert "never crossed the threshold" in delta.detail
        text = diff_text(diff)
        assert "only in A" in text

    def test_rejected_candidate_attribution(self):
        # Run A: a 6-sample dip (reported).  Run B: the same dip
        # shortened to one sample (rejected as too short) - the diff
        # must name the rejection, not claim B saw nothing.
        x = np.full(4000, 0.9)
        x[2000:2006] = 0.05
        y = np.full(4000, 0.9)
        y[2000] = 0.05
        report_a, _ = _profile(x)
        report_b, _ = _profile(y)
        assert len(report_a.stalls) == 1 and report_b.stalls == []
        diff = diff_reports(report_a, report_b)
        (delta,) = diff.deltas
        assert delta.side == "a"
        assert delta.cause == "rejected:too_few_samples"
        assert "trigger sample 2000" in delta.detail

    def test_missing_evidence_is_unknown(self):
        report_a, _ = _profile(make_dip_signal())
        report_b, _ = _profile(np.full(4000, 0.9), flight=False)
        diff = diff_reports(report_a, report_b)
        assert diff.deltas
        assert all(d.cause == "unknown" for d in diff.deltas)


def _ev(kind, pos, **attrs):
    return FlightEvent(
        schema_version=FLIGHT_SCHEMA_VERSION, kind=kind, pos=pos, attrs=attrs
    )


class TestFirstDivergence:
    def test_equal_streams_agree(self):
        a = [_ev("gap", 1.0, n=3), _ev("finish", 2.0)]
        b = [_ev("gap", 1.0, n=3), _ev("finish", 2.0)]
        assert first_divergence(a, b) is None

    def test_kind_divergence(self):
        a = [_ev("gap", 1.0), _ev("finish", 2.0)]
        b = [_ev("gap", 1.0), _ev("resync", 2.0)]
        idx, ea, eb = first_divergence(a, b)
        assert idx == 1
        assert ea.kind == "finish" and eb.kind == "resync"

    def test_position_divergence_respects_tolerance(self):
        a = [_ev("gap", 1.0)]
        b = [_ev("gap", 1.0 + 1e-12)]
        assert first_divergence(a, b) is None
        c = [_ev("gap", 1.5)]
        idx, _, _ = first_divergence(a, c)
        assert idx == 0

    def test_short_stream_diverges_at_its_end(self):
        a = [_ev("gap", 1.0), _ev("finish", 2.0)]
        b = [_ev("gap", 1.0)]
        idx, ea, eb = first_divergence(a, b)
        assert idx == 1
        assert ea is not None and eb is None

    def test_real_runs_diverge_at_the_fault(self):
        x = make_dip_signal()
        _, rec_a = _profile(x)
        y = x.copy()
        victim_lo = 2000
        y[victim_lo:victim_lo + 200] = 0.9
        _, rec_b = _profile(y)
        hit = first_divergence(rec_a.events(), rec_b.events())
        assert hit is not None


class TestRenderers:
    def test_explain_text_is_complete(self, dip_report):
        report, _ = dip_report
        text = explain_text(report)
        assert f"{len(report.stalls)} stall(s)" in text
        assert "stall #0:" in text
        assert f"stall #{len(report.stalls) - 1}:" in text

    def test_explain_html_is_self_contained(self, dip_report):
        report, _ = dip_report
        html = explain_html(report, title="t")
        assert html.lower().startswith("<!doctype html>")
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html

    def test_html_escapes_untrusted_strings(self, dip_report):
        report, _ = dip_report
        html = explain_html(report, title="<svg onload=x>")
        assert "<svg onload" not in html
