"""Cross-module rules, each proven by a failing fixture mini-package.

The fixtures are synthetic package trees written into ``tmp_path`` and
analyzed with :func:`repro.devtools.engine.analyze_paths` under a
purpose-built layer map — one failing and one clean case per rule
family, plus graph construction and suppression mechanics.
"""

from pathlib import Path

import pytest

from repro.devtools.engine import analyze_paths
from repro.devtools.graph import (
    LayerConfig,
    build_import_graph,
    find_cycles,
    layer_config_from_dict,
    load_layer_config,
)

LAYERS = LayerConfig(
    layers={
        "core": ("pkg.core",),
        "cli": ("pkg.cli",),
        "obs": ("pkg.obs",),
    },
    forbidden={"core": ("cli", "obs")},
    stdlib_only=("obs",),
    hot=("pkg.core",),
)


def write_tree(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "proj"
    for relpath, source in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    # every directory under the root is a package
    for directory in root.rglob("*"):
        if directory.is_dir():
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
    (root / "pkg" / "__init__.py").touch()
    return root


def analyze(tmp_path: Path, files: dict, **kw):
    root = write_tree(tmp_path, files)
    kw.setdefault("layers", LAYERS)
    kw.setdefault("rules", [])  # cross-module rules only
    return analyze_paths([root], **kw)


def rule_hits(result, rule: str):
    return [f for f in result.findings if f.rule == rule]


# -- layering ---------------------------------------------------------------


def test_layering_flags_forbidden_cross_layer_import(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/core/detect.py": "from ..cli import main\n",
            "pkg/cli/__init__.py": "def main():\n    return 0\n",
        },
    )
    (finding,) = rule_hits(result, "layering")
    assert "layer 'core'" in finding.message
    assert "layer 'cli'" in finding.message
    assert finding.path.endswith("detect.py")


def test_layering_allows_sanctioned_direction(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/cli/__init__.py": "from ..core.detect import run\n",
            "pkg/core/detect.py": "def run():\n    return 0\n",
        },
    )
    assert rule_hits(result, "layering") == []


def test_layering_deferred_import_is_exempt(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/core/detect.py": (
                "def run():\n"
                "    from ..cli import main\n"
                "    return main()\n"
            ),
            "pkg/cli/__init__.py": "def main():\n    return 0\n",
        },
    )
    assert rule_hits(result, "layering") == []


def test_stdlib_only_layer_flags_third_party_import(tmp_path):
    result = analyze(
        tmp_path,
        {"pkg/obs/metrics.py": "import json\nimport numpy\n"},
    )
    (finding,) = rule_hits(result, "layering")
    assert "numpy" in finding.message
    assert "stdlib-only" in finding.message


def test_stdlib_only_layer_flags_project_import_outside_layer(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/obs/metrics.py": "from ..core.detect import run\n",
            "pkg/core/detect.py": "def run():\n    return 0\n",
        },
    )
    (finding,) = rule_hits(result, "layering")
    assert "defer" in finding.message


def test_stdlib_only_layer_may_import_itself(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/obs/metrics.py": "from .runtime import enabled\n",
            "pkg/obs/runtime.py": "def enabled():\n    return False\n",
        },
    )
    assert rule_hits(result, "layering") == []


# -- import cycles ----------------------------------------------------------


def test_import_cycle_detected(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/core/a.py": "from . import b\n",
            "pkg/core/b.py": "from . import a\n",
        },
    )
    (finding,) = rule_hits(result, "import-cycle")
    assert "pkg.core.a -> pkg.core.b -> pkg.core.a" in finding.message


def test_cycle_broken_by_deferred_import_is_clean(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/core/a.py": "from . import b\n",
            "pkg/core/b.py": "def f():\n    from . import a\n    return a\n",
        },
    )
    assert rule_hits(result, "import-cycle") == []


def test_find_cycles_on_adjacency():
    graph = {"a": {"b"}, "b": {"c"}, "c": {"a"}, "d": set()}
    assert find_cycles(graph) == [["a", "b", "c"]]
    assert find_cycles({"a": {"b"}, "b": set()}) == []


# -- concurrency safety -----------------------------------------------------


def test_shared_mutable_state_flagged_without_lock(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/core/registry.py": (
                "_REGISTRY = {}\n"
                "def register(name, obj):\n"
                "    _REGISTRY[name] = obj\n"
            )
        },
    )
    (finding,) = rule_hits(result, "shared-mutable-state")
    assert "_REGISTRY" in finding.message
    assert "cache" in finding.message  # registry counts as cache-like


def test_shared_mutable_state_quiet_under_lock(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/core/registry.py": (
                "import threading\n"
                "_REGISTRY = {}\n"
                "_LOCK = threading.Lock()\n"
                "def register(name, obj):\n"
                "    with _LOCK:\n"
                "        _REGISTRY[name] = obj\n"
            )
        },
    )
    assert rule_hits(result, "shared-mutable-state") == []


def test_global_rebind_flagged(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/core/state.py": (
                "_current = None\n"
                "def set_current(x):\n"
                "    global _current\n"
                "    _current = x\n"
            )
        },
    )
    (finding,) = rule_hits(result, "shared-mutable-state")
    assert "rebinds" in finding.message


def test_fork_unsafety_flags_import_time_rng_and_handle(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/core/unsafe.py": (
                "from numpy.random import default_rng\n"
                "RNG = default_rng(0)\n"
                "LOG = open('log.txt', 'a')\n"
            )
        },
    )
    messages = [f.message for f in rule_hits(result, "fork-unsafety")]
    assert any("RNG" in m and "same stream" in m for m in messages)
    assert any("LOG" in m and "descriptor" in m for m in messages)


def test_unpicklable_target_flagged(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/core/workers.py": (
                "from multiprocessing import Process\n"
                "def launch():\n"
                "    def job():\n"
                "        return 1\n"
                "    Process(target=job).start()\n"
            )
        },
    )
    (finding,) = rule_hits(result, "unpicklable-target")
    assert "nested-function" in finding.message
    assert "pickled" in finding.message


# -- signal handlers --------------------------------------------------------


def test_signal_handler_blocking_call_flagged(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/cli/daemon.py": (
                "import signal\n"
                "import time\n"
                "def handler(signum, frame):\n"
                "    time.sleep(1)\n"
                "def install():\n"
                "    signal.signal(signal.SIGTERM, handler)\n"
            )
        },
    )
    (finding,) = rule_hits(result, "signal-handler")
    assert "blocking 'sleep'" in finding.message
    assert "SIGTERM" in finding.message
    assert finding.line == 4


def test_signal_handler_nonreentrant_method_handler_flagged(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/cli/daemon.py": (
                "import signal\n"
                "import logging\n"
                "logger = logging.getLogger(__name__)\n"
                "class Svc:\n"
                "    def _on_signal(self, signum, frame):\n"
                "        print('caught')\n"
                "        logger.info('caught')\n"
                "    def install(self):\n"
                "        signal.signal(signal.SIGTERM, self._on_signal)\n"
            )
        },
    )
    hits = rule_hits(result, "signal-handler")
    messages = " | ".join(f.message for f in hits)
    assert "non-reentrant 'print'" in messages
    assert "non-reentrant 'info'" in messages
    assert all("Svc._on_signal" in f.message for f in hits)


def test_signal_handler_inline_lambda_flagged(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/cli/daemon.py": (
                "import signal\n"
                "import time\n"
                "def install():\n"
                "    signal.signal(signal.SIGINT, "
                "lambda s, f: time.sleep(5))\n"
            )
        },
    )
    (finding,) = rule_hits(result, "signal-handler")
    assert "inline lambda" in finding.message
    assert "blocking 'sleep'" in finding.message


def test_signal_handler_flag_setter_is_clean(tmp_path):
    # The sanctioned shape: the handler only sets an Event; join/sleep
    # elsewhere in the module (and str.join anywhere) must not trip it.
    result = analyze(
        tmp_path,
        {
            "pkg/cli/daemon.py": (
                "import signal\n"
                "import threading\n"
                "class Svc:\n"
                "    def __init__(self):\n"
                "        self._stop = threading.Event()\n"
                "    def _on_signal(self, signum, frame):\n"
                "        self._stop.set()\n"
                "    def install(self):\n"
                "        signal.signal(signal.SIGTERM, self._on_signal)\n"
                "    def banner(self):\n"
                "        return ', '.join(['a', 'b'])\n"
                "    def run(self, worker):\n"
                "        worker.join()\n"
            )
        },
    )
    assert rule_hits(result, "signal-handler") == []


def test_signal_handler_dispositions_ignored(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/cli/daemon.py": (
                "import signal\n"
                "def install():\n"
                "    signal.signal(signal.SIGINT, signal.SIG_IGN)\n"
                "    signal.signal(signal.SIGTERM, signal.SIG_DFL)\n"
            )
        },
    )
    assert rule_hits(result, "signal-handler") == []


# -- hot loops --------------------------------------------------------------

HOT_LOOP_SRC = (
    "import numpy as np\n"
    "def process(signal: np.ndarray):\n"
    "    total = 0.0\n"
    "    for value in signal:\n"
    "        total = total + float(value)\n"
    "    return total\n"
)


def test_hot_loop_flagged_in_hot_module(tmp_path):
    result = analyze(tmp_path, {"pkg/core/dsp.py": HOT_LOOP_SRC})
    (finding,) = rule_hits(result, "hot-loop")
    assert "'signal'" in finding.message
    assert finding.line == 4


def test_hot_loop_ignored_outside_hot_modules(tmp_path):
    result = analyze(tmp_path, {"pkg/cli/report.py": HOT_LOOP_SRC})
    assert rule_hits(result, "hot-loop") == []


def test_hot_loop_ignores_non_array_iteration(tmp_path):
    result = analyze(
        tmp_path,
        {
            "pkg/core/meta.py": (
                "def names(items):\n"
                "    out = []\n"
                "    for item in items:\n"
                "        out.append(item.name)\n"
                "    return out\n"
            )
        },
    )
    assert rule_hits(result, "hot-loop") == []


# -- suppression of cross findings ------------------------------------------


def test_inline_suppression_silences_cross_finding(tmp_path):
    suppressed_src = HOT_LOOP_SRC.replace(
        "    for value in signal:\n",
        "    for value in signal:  # emlint: disable=hot-loop\n",
    )
    result = analyze(tmp_path, {"pkg/core/dsp.py": suppressed_src})
    assert rule_hits(result, "hot-loop") == []
    assert result.suppressed_count == 1


# -- layer config loading ---------------------------------------------------


def test_layer_config_from_pyproject(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        "[tool.emlint]\n"
        'hot = ["pkg.core"]\n'
        'stdlib_only = ["obs"]\n'
        "[tool.emlint.layers]\n"
        'core = ["pkg.core"]\n'
        'obs = ["pkg.obs"]\n'
        "[tool.emlint.forbidden]\n"
        'core = ["obs"]\n'
    )
    config = load_layer_config(pyproject)
    assert config.layer_of("pkg.core.detect") == "core"
    assert config.forbidden["core"] == ("obs",)
    assert config.is_hot("pkg.core.detect")
    assert not config.is_hot("pkg.obs.metrics")


def test_layer_config_rejects_unknown_forbidden_layer():
    with pytest.raises(ValueError, match="unknown layer"):
        layer_config_from_dict(
            {"layers": {"core": ["pkg.core"]}, "forbidden": {"core": ["nope"]}}
        )


def test_missing_pyproject_falls_back_to_default(tmp_path):
    config = load_layer_config(tmp_path / "does-not-exist.toml")
    assert config.layer_of("repro.core.detect") == "core"
    assert config.layer_of("repro.obs.metrics") == "obs-api"
    assert config.layer_of("repro.obs.ledger") == "obs-internal"


def test_longest_prefix_wins():
    config = load_layer_config(Path("/nonexistent"))
    # repro.obs.trace is carved out of repro.obs by the longer prefix.
    assert config.layer_of("repro.obs.trace") == "obs-api"
    assert config.layer_of("repro.obs.dashboard") == "obs-internal"


def test_import_graph_edges_resolve_submodules(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "pkg/core/a.py": "from .b import thing\nfrom ..cli import main\n",
            "pkg/core/b.py": "thing = 1\n",
            "pkg/cli/__init__.py": "def main():\n    return 0\n",
        },
    )
    result = analyze_paths([root], rules=[], cross_rules=[], layers=LAYERS)
    assert result.findings == []  # graph building alone yields nothing
    from repro.devtools.cache import extract_outcomes

    outcomes, _, _ = extract_outcomes([root], [])
    modules = {o.facts.module: o.facts for o in outcomes if o.facts}
    graph = build_import_graph(modules)
    assert graph["pkg.core.a"] == {"pkg.core.b", "pkg.cli"}
