"""Unit tests for dip detection."""

import numpy as np
import pytest

from repro.core.detect import DetectorConfig, detect_stalls


def dip_signal(n=400, dips=((100, 120), (200, 230)), low=0.05, high=0.95):
    x = np.full(n, high)
    for start, end in dips:
        x[start:end] = low
    return x


CFG = DetectorConfig(
    threshold=0.45,
    recover_threshold=0.7,
    min_duration_cycles=50.0,
    min_duration_samples=3,
    refresh_min_cycles=1200.0,
)


class TestBasicDetection:
    def test_finds_both_dips(self):
        stalls = detect_stalls(dip_signal(), 20.0, CFG)
        assert len(stalls) == 2

    def test_positions_match(self):
        stalls = detect_stalls(dip_signal(), 20.0, CFG)
        assert stalls[0].begin_sample == pytest.approx(99.5, abs=0.6)
        assert stalls[0].end_sample == pytest.approx(119.5, abs=0.6)

    def test_durations_in_cycles(self):
        stalls = detect_stalls(dip_signal(), 20.0, CFG)
        assert stalls[0].duration_cycles == pytest.approx(400, abs=25)
        assert stalls[1].duration_cycles == pytest.approx(600, abs=25)

    def test_min_level_recorded(self):
        stalls = detect_stalls(dip_signal(), 20.0, CFG)
        assert stalls[0].min_level == pytest.approx(0.05)

    def test_no_dips_in_busy_signal(self):
        x = np.full(300, 0.9)
        assert detect_stalls(x, 20.0, CFG) == []

    def test_empty_signal(self):
        assert detect_stalls(np.array([]), 20.0, CFG) == []

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            detect_stalls(dip_signal(), 0.0, CFG)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            detect_stalls(np.zeros((2, 2)), 20.0, CFG)


class TestDurationFilters:
    def test_short_dip_rejected_by_cycles(self):
        x = dip_signal(dips=((100, 102),))  # 2 samples = 40 cycles < 50
        assert detect_stalls(x, 20.0, CFG) == []

    def test_min_samples_rejects_narrow_dip(self):
        cfg = DetectorConfig(
            min_duration_cycles=10.0, min_duration_samples=4, refresh_min_cycles=1200.0
        )
        x = dip_signal(dips=((100, 103),))  # 3 samples below threshold
        assert detect_stalls(x, 20.0, cfg) == []
        x2 = dip_signal(dips=((100, 105),))
        assert len(detect_stalls(x2, 20.0, cfg)) == 1

    def test_dip_at_boundary_duration_kept(self):
        cfg = DetectorConfig(
            min_duration_cycles=60.0, min_duration_samples=3, refresh_min_cycles=1200.0
        )
        x = dip_signal(dips=((100, 104),))  # ~4 samples ~= 80 cycles
        assert len(detect_stalls(x, 20.0, cfg)) == 1


class TestHysteresisMerging:
    def test_noisy_spike_inside_stall_does_not_split(self):
        x = dip_signal(dips=((100, 130),))
        x[115] = 0.5  # above threshold, below recover level
        stalls = detect_stalls(x, 20.0, CFG)
        assert len(stalls) == 1

    def test_full_recovery_splits(self):
        x = dip_signal(dips=((100, 115), (118, 130)))
        # The gap returns to 0.95 > recover threshold.
        stalls = detect_stalls(x, 20.0, CFG)
        assert len(stalls) == 2

    def test_merge_gap_samples_unconditional(self):
        cfg = DetectorConfig(
            min_duration_cycles=50.0,
            min_duration_samples=3,
            merge_gap_samples=5,
            refresh_min_cycles=1200.0,
        )
        x = dip_signal(dips=((100, 115), (118, 130)))
        stalls = detect_stalls(x, 20.0, cfg)
        assert len(stalls) == 1


class TestEdgeInterpolation:
    def test_gradual_edge_interpolated(self):
        x = np.full(200, 0.9)
        x[99] = 0.6
        x[100:120] = 0.05
        x[120] = 0.6
        stalls = detect_stalls(x, 20.0, CFG)
        assert len(stalls) == 1
        # Crossing of 0.45 lies between samples 99 and 100.
        assert 99.0 < stalls[0].begin_sample < 100.0

    def test_cycle_positions_consistent(self):
        stalls = detect_stalls(dip_signal(), 25.0, CFG)
        s = stalls[0]
        assert s.begin_cycle == pytest.approx(s.begin_sample * 25.0)
        assert s.duration_cycles == pytest.approx(s.duration_samples * 25.0)


class TestRefreshClassification:
    def test_long_dip_flagged_refresh(self):
        x = dip_signal(n=800, dips=((100, 200),))  # 100 samples * 20 = 2000 cycles
        stalls = detect_stalls(x, 20.0, CFG)
        assert len(stalls) == 1
        assert stalls[0].is_refresh

    def test_ordinary_dip_not_flagged(self):
        stalls = detect_stalls(dip_signal(), 20.0, CFG)
        assert not any(s.is_refresh for s in stalls)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": 0.0},
            {"threshold": 1.0},
            {"recover_threshold": 0.3},  # below threshold
            {"min_duration_cycles": 0.0},
            {"min_duration_samples": 0},
            {"merge_gap_samples": -1},
            {"refresh_min_cycles": 10.0},  # below min duration
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            DetectorConfig(**kwargs)

    def test_stall_ordering_in_time(self):
        stalls = detect_stalls(dip_signal(), 20.0, CFG)
        begins = [s.begin_sample for s in stalls]
        assert begins == sorted(begins)
