"""Unit tests for the instruction model and the power accumulator."""

import numpy as np
import pytest

from repro.sim import isa
from repro.sim.config import PowerConfig
from repro.sim.power import PowerAccumulator


class TestInstructionBuilders:
    def test_alu(self):
        ins = isa.alu(0x100, region=3)
        assert ins.op == isa.ALU
        assert ins.pc == 0x100
        assert ins.region == 3
        assert ins.dep == isa.NO_CONSUMER

    def test_load_dep(self):
        ins = isa.load(0x100, 0x2000, dep=4)
        assert ins.op == isa.LOAD
        assert ins.addr == 0x2000
        assert ins.dep == 4

    def test_load_rejects_negative_dep(self):
        with pytest.raises(ValueError):
            isa.load(0x100, 0x2000, dep=-1)

    def test_store_never_blocks_directly(self):
        assert isa.store(0x100, 0x2000).dep == isa.NO_CONSUMER

    def test_weights_ordering(self):
        # A multiply switches more transistors than a nop.
        assert isa.DEFAULT_WEIGHTS[isa.MUL] > isa.DEFAULT_WEIGHTS[isa.ALU]
        assert isa.DEFAULT_WEIGHTS[isa.ALU] > isa.DEFAULT_WEIGHTS[isa.NOP]

    def test_straightline_pcs_advance(self):
        seq = list(isa.straightline(0x0, 5))
        assert [i.pc for i in seq] == [0, 4, 8, 12, 16]

    def test_op_names_cover_all(self):
        for op in (isa.ALU, isa.LOAD, isa.STORE, isa.BRANCH, isa.MUL, isa.NOP):
            assert op in isa.OP_NAMES


class TestPowerAccumulator:
    def make(self, bin_cycles=10, idle=0.1):
        return PowerAccumulator(PowerConfig(bin_cycles=bin_cycles, idle_level=idle))

    def test_idle_floor(self):
        acc = self.make()
        acc.note_cycle(99)
        trace = acc.finalize(100)
        assert len(trace) == 10
        assert np.allclose(trace, 0.1)

    def test_single_issue_lands_in_right_bin(self):
        acc = self.make()
        acc.add_issue(25, 1.0)
        trace = acc.finalize(100)
        assert trace[2] == pytest.approx(0.1 + 1.0 / 10)
        assert trace[0] == pytest.approx(0.1)

    def test_multiple_issues_accumulate(self):
        acc = self.make()
        acc.add_issue(5, 1.0)
        acc.add_issue(7, 2.0)
        trace = acc.finalize(10)
        assert trace[0] == pytest.approx(0.1 + 3.0 / 10)

    def test_busy_span_single_bin(self):
        acc = self.make()
        acc.add_busy_span(2, 6, 0.5)
        trace = acc.finalize(10)
        assert trace[0] == pytest.approx(0.1 + 4 * 0.5 / 10)

    def test_busy_span_multiple_bins(self):
        acc = self.make()
        acc.add_busy_span(5, 35, 1.0)
        trace = acc.finalize(40)
        # Bins: [5,10) -> 5 cycles, [10,20) -> 10, [20,30) -> 10, [30,35) -> 5
        assert trace[0] == pytest.approx(0.1 + 0.5)
        assert trace[1] == pytest.approx(0.1 + 1.0)
        assert trace[2] == pytest.approx(0.1 + 1.0)
        assert trace[3] == pytest.approx(0.1 + 0.5)

    def test_busy_span_empty_is_noop(self):
        acc = self.make()
        acc.add_busy_span(5, 5, 1.0)
        assert np.allclose(acc.finalize(10), 0.1)

    def test_growth_beyond_initial_capacity(self):
        acc = self.make(bin_cycles=1)
        acc.add_issue(100_000, 1.0)
        trace = acc.finalize(100_001)
        assert trace[100_000] == pytest.approx(0.1 + 1.0)

    def test_finalize_extends_to_total(self):
        acc = self.make()
        acc.add_issue(3, 1.0)
        assert len(acc.finalize(200)) == 20

    def test_finalize_covers_max_seen_cycle(self):
        acc = self.make()
        acc.add_issue(95, 1.0)
        assert len(acc.finalize(10)) == 10  # 96 cycles -> 10 bins

    def test_activity_conservation(self):
        # Total activity in the trace equals what was deposited.
        acc = self.make(idle=0.0)
        total = 0.0
        rng = np.random.default_rng(0)
        for _ in range(100):
            c = int(rng.integers(0, 500))
            w = float(rng.random())
            acc.add_issue(c, w)
            total += w
        trace = acc.finalize(500)
        assert trace.sum() * 10 == pytest.approx(total)
