"""Shared fixtures.

Expensive end-to-end runs are session-scoped so the whole suite pays
for each simulation once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Microbenchmark, simulate
from repro.core.profiler import Emprof
from repro.devices import olimex, sesc


@pytest.fixture(scope="session")
def micro_workload():
    """A small but realistic TM/CM microbenchmark."""
    return Microbenchmark(
        total_misses=64,
        consecutive_misses=4,
        blank_iterations=8000,
        gap_instructions=120,
        seed=7,
    )


@pytest.fixture(scope="session")
def sesc_run(micro_workload):
    """Microbenchmark simulated on the SESC configuration."""
    return simulate(micro_workload, sesc(), seed=0)


@pytest.fixture(scope="session")
def olimex_run(micro_workload):
    """Microbenchmark simulated on the Olimex device model."""
    return simulate(micro_workload, olimex(), seed=0)


@pytest.fixture(scope="session")
def sesc_profile(sesc_run):
    """EMPROF profile of the SESC power trace."""
    return Emprof.from_simulation(sesc_run).profile()


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
