"""Shared fixtures and signal/fault/chunking generators.

Expensive end-to-end runs are session-scoped so the whole suite pays
for each simulation once.  The module-level generators below are the
shared vocabulary of the engine differential harness
(``tests/test_engine_equivalence.py`` / ``tests/test_engine_chunks.py``
/ ``benchmarks/test_engine_throughput.py``): one signal family, one
set of adversarial chunkings, one set of fault mixes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Microbenchmark, simulate
from repro.core.profiler import Emprof
from repro.devices import olimex, sesc
from repro.faults import (
    BurstFault,
    ClippingFault,
    DcDriftFault,
    DropoutFault,
    FaultInjector,
    GainStepFault,
)

# -- engine differential-harness generators ---------------------------------

#: Dip geometry of :func:`make_dip_signal` (used to build chunkings
#: that deliberately straddle dip boundaries).
DIP_FIRST = 200
DIP_EVERY = 170
DIP_LEN = 13


def make_dip_signal(n=5000, seed=0, dip_every=DIP_EVERY, dip_len=DIP_LEN):
    """Busy-level magnitude with periodic stall dips (noisy, clipped)."""
    rng = np.random.default_rng(seed)
    x = np.full(n, 0.9) + rng.normal(0, 0.02, n)
    for s in range(DIP_FIRST, n - DIP_FIRST, dip_every):
        x[s : s + dip_len] = 0.1 + rng.normal(0, 0.01, dip_len)
    return np.clip(x, 0.0, None)


#: Adversarial chunkings: degenerate (1), primes (7, 101), typical
#: (64, 4096), the whole signal, and boundaries cut mid-dip.
CHUNKING_NAMES = (
    "size-1",
    "prime-7",
    "size-64",
    "prime-101",
    "size-4096",
    "whole",
    "dip-straddling",
)

#: Plain chunk sizes (``None`` = whole signal) for parametrizing code
#: that feeds ``(chunk, gap_before)`` pairs via ``iter_chunks``.
CHUNK_SIZES = (1, 7, 64, 4096, None)


def chunk_plan(x, name):
    """Split ``x`` into the named adversarial chunking."""
    n = len(x)
    if name == "whole":
        return [x]
    if name == "dip-straddling":
        # A boundary 5 samples into every dip of make_dip_signal's
        # geometry: each dip straddles two chunks.
        bounds = [s + 5 for s in range(DIP_FIRST, n - DIP_FIRST, DIP_EVERY)]
        return np.split(x, [b for b in bounds if 0 < b < n])
    size = int(name.rsplit("-", 1)[1])
    return np.array_split(x, np.arange(size, n, size))


def make_fault_injector(family, seed=0):
    """A seeded :class:`FaultInjector` for one named fault family."""
    mixes = {
        "clean": [],
        "dropout": [DropoutFault(rate=0.01, mean_gap_samples=40)],
        "clipping": [ClippingFault(rate=0.02)],
        "gain_step": [GainStepFault(steps=3)],
        "burst": [BurstFault(bursts=4, length_samples=48)],
        "dc_drift": [DcDriftFault(max_offset_ratio=0.2)],
        "mixed": [
            GainStepFault(steps=2),
            DcDriftFault(),
            BurstFault(bursts=2),
            ClippingFault(rate=0.01),
            DropoutFault(rate=0.005, mean_gap_samples=64),
        ],
    }
    return FaultInjector(mixes[family], seed=100 + seed)


#: Every fault family exercised by the differential harness.
FAULT_FAMILIES = (
    "clean",
    "dropout",
    "clipping",
    "gain_step",
    "burst",
    "dc_drift",
    "mixed",
)


@pytest.fixture(scope="session")
def micro_workload():
    """A small but realistic TM/CM microbenchmark."""
    return Microbenchmark(
        total_misses=64,
        consecutive_misses=4,
        blank_iterations=8000,
        gap_instructions=120,
        seed=7,
    )


@pytest.fixture(scope="session")
def sesc_run(micro_workload):
    """Microbenchmark simulated on the SESC configuration."""
    return simulate(micro_workload, sesc(), seed=0)


@pytest.fixture(scope="session")
def olimex_run(micro_workload):
    """Microbenchmark simulated on the Olimex device model."""
    return simulate(micro_workload, olimex(), seed=0)


@pytest.fixture(scope="session")
def sesc_profile(sesc_run):
    """EMPROF profile of the SESC power trace."""
    return Emprof.from_simulation(sesc_run).profile()


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
