"""Resilient experiment execution: retry policies and campaign resume."""

import json

import numpy as np
import pytest

from repro import io as repro_io
from repro.core.detect import DetectorConfig
from repro.core.normalize import NormalizerConfig
from repro.core.profiler import EmprofConfig
from repro.emsignal.receiver import Capture
from repro.errors import (
    AcquisitionError,
    CampaignError,
    CorruptCaptureError,
    HardwareMissingError,
    TransientAcquisitionError,
)
from repro.experiments import Campaign, RetryPolicy, RunSpec, acquire_with_retry
from repro.faults import FlakySource

SMALL = EmprofConfig(
    normalizer=NormalizerConfig(window_samples=301),
    detector=DetectorConfig(),
)


class StaticSource:
    """A SignalSource returning a synthetic dip capture; counts calls."""

    def __init__(self, seed=0, n=3000):
        self.seed = seed
        self.n = n
        self.captures = 0

    def capture(self):
        self.captures += 1
        rng = np.random.default_rng(self.seed)
        x = np.full(self.n, 0.9) + rng.normal(0, 0.02, self.n)
        for s in range(200, self.n - 200, 170):
            x[s : s + 13] = 0.1
        return Capture(
            magnitude=np.clip(x, 0.0, None),
            sample_rate_hz=50e6,
            clock_hz=1e9,
            bandwidth_hz=50e6,
            region_names={},
        )


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff_base_s=0.1, backoff_factor=2.0)
        assert [policy.delay(a) for a in (1, 2, 3)] == [0.1, 0.2, 0.4]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestAcquireWithRetry:
    def test_transient_failures_are_retried(self):
        sleeps = []
        source = FlakySource(StaticSource(), failures=2)
        capture = acquire_with_retry(
            source, RetryPolicy(max_attempts=3), sleep=sleeps.append
        )
        assert len(capture.magnitude) == 3000
        assert source.attempts == 3
        assert sleeps == [0.05, 0.1]

    def test_gives_up_after_max_attempts(self):
        source = FlakySource(StaticSource(), failures=5)
        with pytest.raises(TransientAcquisitionError):
            acquire_with_retry(
                source, RetryPolicy(max_attempts=3), sleep=lambda _: None
            )
        assert source.attempts == 3

    def test_permanent_failures_fail_fast(self):
        class Dead:
            def __init__(self):
                self.attempts = 0

            def capture(self):
                self.attempts += 1
                raise HardwareMissingError("no SDR")

        dead = Dead()
        with pytest.raises(HardwareMissingError):
            acquire_with_retry(dead, RetryPolicy(max_attempts=5),
                               sleep=lambda _: None)
        assert dead.attempts == 1

    def test_corrupt_capture_fails_fast(self):
        class Corrupt:
            def capture(self):
                raise CorruptCaptureError("checksum mismatch", path="x.npz")

        with pytest.raises(CorruptCaptureError):
            acquire_with_retry(Corrupt(), sleep=lambda _: None)

    def test_foreign_exceptions_propagate(self):
        class Broken:
            def capture(self):
                raise KeyError("not an acquisition problem")

        with pytest.raises(KeyError):
            acquire_with_retry(Broken(), sleep=lambda _: None)


class TestCampaign:
    def specs(self, sources):
        return [
            RunSpec(name, (lambda s=src: s), config=SMALL)
            for name, src in sources
        ]

    def test_executes_and_persists_reports(self, tmp_path):
        campaign = Campaign(tmp_path / "camp", sleep=lambda _: None)
        result = campaign.execute(
            self.specs([("a", StaticSource(0)), ("b", StaticSource(1))])
        )
        assert result.completed
        assert result.counts() == {"done": 2, "failed": 0, "skipped": 0}
        for name in ("a", "b"):
            report = campaign.load_report(name)
            assert report.miss_count > 5
        manifest = json.loads((tmp_path / "camp" / "manifest.json").read_text())
        assert manifest["runs"]["a"]["status"] == "done"

    def test_transient_failures_retried_inside_run(self, tmp_path):
        campaign = Campaign(
            tmp_path / "camp",
            retry=RetryPolicy(max_attempts=3),
            sleep=lambda _: None,
        )
        flaky = FlakySource(StaticSource(), failures=2)
        result = campaign.execute([RunSpec("flaky", lambda: flaky, config=SMALL)])
        assert result.counts()["done"] == 1

    def test_failed_run_does_not_stop_campaign(self, tmp_path):
        class Dead:
            def capture(self):
                raise TransientAcquisitionError("always down")

        campaign = Campaign(
            tmp_path / "camp",
            retry=RetryPolicy(max_attempts=2),
            sleep=lambda _: None,
        )
        result = campaign.execute(
            self.specs([("ok", StaticSource())])
            + [RunSpec("dead", Dead, config=SMALL)]
            + self.specs([("ok2", StaticSource(2))])
        )
        assert result.counts() == {"done": 2, "failed": 1, "skipped": 0}
        assert not result.completed
        manifest = json.loads((tmp_path / "camp" / "manifest.json").read_text())
        assert manifest["runs"]["dead"]["status"] == "failed"
        assert "always down" in manifest["runs"]["dead"]["error"]

    def test_failed_runs_are_reattempted_on_resume(self, tmp_path):
        class DeadOnce:
            def __init__(self):
                self.calls = 0

            def capture(self):
                self.calls += 1
                if self.calls == 1:
                    raise TransientAcquisitionError("down")
                return StaticSource().capture()

        campaign = Campaign(
            tmp_path / "camp",
            retry=RetryPolicy(max_attempts=1),
            sleep=lambda _: None,
        )
        dead = DeadOnce()
        spec = [RunSpec("r", lambda: dead, config=SMALL)]
        assert campaign.execute(spec).counts()["failed"] == 1
        assert campaign.execute(spec).counts()["done"] == 1

    def test_rejects_duplicate_names(self, tmp_path):
        campaign = Campaign(tmp_path / "camp")
        with pytest.raises(CampaignError):
            campaign.execute(
                self.specs([("a", StaticSource()), ("a", StaticSource())])
            )

    def test_rejects_foreign_manifest(self, tmp_path):
        directory = tmp_path / "camp"
        directory.mkdir()
        (directory / "manifest.json").write_text('{"format": "other"}')
        with pytest.raises(CampaignError):
            Campaign(directory).execute([])


class TestKillAndResume:
    """The integration scenario: a campaign dies mid-run and resumes."""

    def test_resume_skips_completed_runs(self, tmp_path):
        directory = tmp_path / "camp"
        sources = {name: StaticSource(i) for i, name in enumerate("abcd")}

        class Killed(RuntimeError):
            """Stands in for SIGKILL: propagates out of execute()."""

        def factory(name, die=False):
            def make():
                if die:
                    raise Killed(name)
                return sources[name]
            return make

        def specs(die_on=None):
            return [
                RunSpec(n, factory(n, die=(n == die_on)), config=SMALL)
                for n in "abcd"
            ]

        # first pass dies while starting run "c": a and b are durable,
        # and c's pre-marked lease survives as "running" + attempts so
        # the next pass can tell it apart from a fresh run
        first = Campaign(directory, sleep=lambda _: None)
        with pytest.raises(Killed):
            first.execute(specs(die_on="c"))
        manifest = json.loads((directory / "manifest.json").read_text())
        assert set(manifest["runs"]) == {"a", "b", "c"}
        assert manifest["runs"]["a"]["status"] == "done"
        assert manifest["runs"]["b"]["status"] == "done"
        assert manifest["runs"]["c"]["status"] == "running"
        assert manifest["runs"]["c"]["attempts"] == 1

        # a fresh process resumes: a and b are skipped (their sources
        # are not even constructed), c and d run to completion - and c
        # is surfaced as a resumed interruption with its attempt count
        resumed = Campaign(directory, sleep=lambda _: None)
        result = resumed.execute(specs())
        statuses = {o.name: o.status for o in result.outcomes}
        assert statuses == {
            "a": "skipped", "b": "skipped", "c": "done", "d": "done"
        }
        assert result.completed
        assert result.interrupted() == {"c": 2}
        assert sources["a"].captures == 1  # not re-acquired
        assert sources["c"].captures == 1
        for name in "abcd":
            assert resumed.load_report(name).miss_count > 5

    def test_done_without_report_file_is_rerun(self, tmp_path):
        directory = tmp_path / "camp"
        campaign = Campaign(directory, sleep=lambda _: None)
        source = StaticSource()
        spec = [RunSpec("a", lambda: source, config=SMALL)]
        campaign.execute(spec)
        campaign.report_path("a").unlink()
        result = Campaign(directory, sleep=lambda _: None).execute(spec)
        assert result.counts()["done"] == 1
        assert source.captures == 2

    def test_reports_roundtrip_through_campaign(self, tmp_path):
        campaign = Campaign(tmp_path / "camp", sleep=lambda _: None)
        campaign.execute([RunSpec("a", StaticSource, config=SMALL)])
        direct = repro_io.load_report(campaign.report_path("a"))
        assert direct == campaign.load_report("a")


def test_sdr_source_raises_typed_hardware_error():
    from repro.acquire import SdrSource

    with pytest.raises(HardwareMissingError) as excinfo:
        SdrSource()
    # back-compat: still a NotImplementedError, still an AcquisitionError
    assert isinstance(excinfo.value, NotImplementedError)
    assert isinstance(excinfo.value, AcquisitionError)
    assert not excinfo.value.transient
    assert "SoapySDR" in str(excinfo.value)
