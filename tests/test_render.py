"""Tests for the ASCII rendering helpers."""

import numpy as np
import pytest

from repro.core.events import DetectedStall, ProfileReport
from repro.render import histogram_bars, report_panel, signal_strip, sparkline


class TestSparkline:
    def test_width(self):
        assert len(sparkline(np.sin(np.arange(500)), width=40)) == 40

    def test_constant_is_flat(self):
        line = sparkline(np.full(100, 3.0), width=20)
        assert len(set(line)) == 1

    def test_empty(self):
        assert len(sparkline([], width=10)) == 10

    def test_ascii_only_uses_ascii(self):
        line = sparkline(np.arange(100.0), width=20, ascii_only=True)
        assert all(ord(c) < 128 for c in line)

    def test_ramp_is_monotone(self):
        line = sparkline(np.arange(200.0), width=10, ascii_only=True)
        order = " .:-=+*#%@"
        ranks = [order.index(c) for c in line]
        assert ranks == sorted(ranks)


class TestSignalStrip:
    def test_shape(self):
        art = signal_strip(np.random.default_rng(0).random(500), width=40, height=6)
        lines = art.splitlines()
        assert len(lines) == 7  # height rows + axis
        assert all(len(line) == 40 for line in lines)

    def test_dip_shows_as_valley(self):
        x = np.full(400, 1.0)
        x[180:220] = 0.05
        art = signal_strip(x, width=40, height=6, ascii_only=True)
        top_row = art.splitlines()[0]
        # The middle columns (the dip) are empty at the top level.
        assert top_row[18:22].strip() == ""
        assert top_row[0] == "#"

    def test_rejects_tiny_height(self):
        with pytest.raises(ValueError):
            signal_strip(np.zeros(10), height=1)


class TestHistogramBars:
    def test_renders_rows(self):
        edges = np.array([0.0, 100.0, 200.0, 300.0])
        counts = np.array([5, 10, 2])
        art = histogram_bars(edges, counts, width=20)
        assert len(art.splitlines()) == 3
        assert "100" in art

    def test_bar_lengths_proportional(self):
        edges = np.array([0.0, 100.0, 200.0])
        counts = np.array([2, 10])
        art = histogram_bars(edges, counts, width=20, ascii_only=True)
        rows = art.splitlines()
        assert rows[1].count("#") > 3 * rows[0].count("#")

    def test_empty_histogram(self):
        assert "empty" in histogram_bars(np.array([0.0, 1.0]), np.array([0]))

    def test_rejects_mismatched_edges(self):
        with pytest.raises(ValueError):
            histogram_bars(np.array([0.0, 1.0]), np.array([1, 2]))

    def test_folds_many_bins(self):
        edges = np.arange(101.0)
        counts = np.ones(100, dtype=int)
        art = histogram_bars(edges, counts, max_rows=10)
        assert len(art.splitlines()) == 10


class TestReportPanel:
    def make_report(self):
        stalls = [DetectedStall(10 * k, 10 * k + 14, 200.0 * k, 200.0 * k + 280, 0.05)
                  for k in range(1, 6)]
        return ProfileReport(
            stalls=stalls, total_cycles=100_000, clock_hz=1e9,
            sample_period_cycles=20.0,
        )

    def test_panel_contains_sections(self):
        x = np.random.default_rng(0).random(400)
        panel = report_panel(self.make_report(), signal=x)
        assert "EMPROF profile" in panel
        assert "signal (time ->)" in panel
        assert "stall-latency histogram" in panel

    def test_panel_without_signal(self):
        panel = report_panel(self.make_report())
        assert "signal" not in panel
        assert "histogram" in panel

    def test_panel_empty_report(self):
        report = ProfileReport([], 1000, 1e9, 20.0)
        panel = report_panel(report)
        assert "0 LLC-miss stalls" in panel
