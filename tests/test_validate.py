"""Unit tests for the validation metrics."""

import numpy as np
import pytest

from repro.core.detect import DetectorConfig
from repro.core.events import DetectedStall, ProfileReport
from repro.core.validate import (
    count_accuracy,
    match_stalls,
    merge_intervals,
)


def det(begin_cycle, end_cycle):
    period = 20.0
    return DetectedStall(
        begin_sample=begin_cycle / period,
        end_sample=end_cycle / period,
        begin_cycle=begin_cycle,
        end_cycle=end_cycle,
        min_level=0.05,
    )


class TestCountAccuracy:
    def test_exact(self):
        assert count_accuracy(100, 100) == 1.0

    def test_undercount(self):
        assert count_accuracy(95, 100) == pytest.approx(0.95)

    def test_overcount(self):
        assert count_accuracy(105, 100) == pytest.approx(0.95)

    def test_clamped_at_zero(self):
        assert count_accuracy(300, 100) == 0.0

    def test_zero_expected_zero_reported(self):
        assert count_accuracy(0, 0) == 1.0

    def test_zero_expected_nonzero_reported(self):
        assert count_accuracy(5, 0) == 0.0


class TestMergeIntervals:
    def test_disjoint_untouched(self):
        iv = np.array([[0, 10], [100, 120]], dtype=float)
        out = merge_intervals(iv, max_gap=5)
        np.testing.assert_array_equal(out, iv)

    def test_close_intervals_merge(self):
        iv = np.array([[0, 10], [12, 20]], dtype=float)
        out = merge_intervals(iv, max_gap=5)
        np.testing.assert_array_equal(out, [[0, 20]])

    def test_unsorted_input(self):
        iv = np.array([[100, 120], [0, 10]], dtype=float)
        out = merge_intervals(iv, max_gap=5)
        assert out[0, 0] == 0

    def test_chain_merge(self):
        iv = np.array([[0, 10], [11, 20], [21, 30]], dtype=float)
        out = merge_intervals(iv, max_gap=2)
        np.testing.assert_array_equal(out, [[0, 30]])

    def test_empty(self):
        out = merge_intervals(np.empty((0, 2)), max_gap=10)
        assert out.shape == (0, 2)

    def test_overlapping_intervals(self):
        iv = np.array([[0, 15], [10, 20]], dtype=float)
        out = merge_intervals(iv, max_gap=0)
        np.testing.assert_array_equal(out, [[0, 20]])


class TestMatchStalls:
    def test_perfect_match(self):
        truth = np.array([[100, 380], [1000, 1280]], dtype=float)
        detected = [det(105, 375), det(1005, 1285)]
        m = match_stalls(detected, truth)
        assert m.true_positives == 2
        assert m.false_positives == 0
        assert m.false_negatives == 0
        assert m.precision == 1.0
        assert m.recall == 1.0
        assert m.f1 == 1.0

    def test_false_positive(self):
        truth = np.array([[100, 380]], dtype=float)
        detected = [det(105, 375), det(5000, 5200)]
        m = match_stalls(detected, truth)
        assert m.false_positives == 1
        assert m.precision == pytest.approx(0.5)

    def test_false_negative(self):
        truth = np.array([[100, 380], [1000, 1280]], dtype=float)
        m = match_stalls([det(105, 375)], truth)
        assert m.false_negatives == 1
        assert m.recall == pytest.approx(0.5)

    def test_fragmented_detection_counts_once(self):
        truth = np.array([[100, 500]], dtype=float)
        detected = [det(100, 280), det(300, 500)]
        m = match_stalls(detected, truth)
        assert m.true_positives == 1
        assert m.false_positives == 0
        # Duration error accounts for the missing middle piece.
        assert m.duration_errors[0] == pytest.approx(-20)

    def test_tolerance_padding(self):
        truth = np.array([[100, 200]], dtype=float)
        barely_off = [det(205, 300)]
        assert match_stalls(barely_off, truth, tolerance_cycles=0).true_positives == 0
        assert match_stalls(barely_off, truth, tolerance_cycles=10).true_positives == 1

    def test_empty_truth(self):
        m = match_stalls([det(0, 100)], np.empty((0, 2)))
        assert m.false_positives == 1
        assert m.recall == 1.0

    def test_empty_detection(self):
        m = match_stalls([], np.array([[0, 100]], dtype=float))
        assert m.false_negatives == 1
        assert m.precision == 1.0
        assert m.f1 == 0.0

    def test_duration_errors_near_zero_for_good_match(self):
        truth = np.array([[100, 380]], dtype=float)
        m = match_stalls([det(100, 380)], truth)
        assert abs(m.duration_errors[0]) < 1e-9


class TestValidateProfileEndToEnd:
    def test_validate_profile_on_simulation(self, sesc_run):
        from repro.core.profiler import Emprof
        from repro.core.validate import validate_profile

        report = Emprof.from_simulation(sesc_run).profile()
        v = validate_profile(report, sesc_run.ground_truth)
        # Detection on the clean simulator trace is near-perfect
        # against the observable merged groups.
        assert v.group_accuracy > 0.97
        assert v.stall_accuracy > 0.97
        assert v.match.precision > 0.97
        assert v.detected_misses == report.miss_count

    def test_validate_profile_windowed(self, sesc_run):
        from repro.core.profiler import Emprof
        from repro.core.validate import validate_profile

        report = Emprof.from_simulation(sesc_run).profile()
        total = sesc_run.ground_truth.total_cycles
        v_all = validate_profile(report, sesc_run.ground_truth)
        v_half = validate_profile(
            report, sesc_run.ground_truth, window_cycles=(0.0, total / 2)
        )
        assert v_half.true_misses <= v_all.true_misses
        assert v_half.detected_misses <= v_all.detected_misses
