"""Property-based tests on pipeline timing invariants.

The pipeline's ground truth is the reference every accuracy number in
the reproduction is computed against, so its internal consistency is
checked against randomly generated programs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import CacheHierarchy
from repro.sim.config import CacheConfig, CoreConfig, MemoryConfig, PowerConfig
from repro.sim.dram import MainMemory
from repro.sim.isa import ALU, BRANCH, Instr, LOAD, MUL, NO_CONSUMER, STORE
from repro.sim.pipeline import Pipeline
from repro.sim.power import PowerAccumulator

# A compact encodable program: list of (op_code, locality, dep) where
# op_code selects the kind, locality the address region, dep the
# consumer distance.
program_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=30),
    ),
    min_size=1,
    max_size=400,
)


def decode(program):
    """Turn the encoded program into an instruction stream."""
    instrs = []
    pc_hot = 0x1000
    for i, (op_code, locality, dep) in enumerate(program):
        pc = pc_hot + 4 * (i % 8)
        if op_code == 0:
            instrs.append(Instr(ALU, pc, 0, NO_CONSUMER, 0.12, 0))
        elif op_code == 1:
            instrs.append(Instr(MUL, pc, 0, NO_CONSUMER, 0.2, 0))
        elif op_code == 2:
            instrs.append(Instr(BRANCH, pc, 0, NO_CONSUMER, 0.1, 0))
        elif op_code == 3:
            addr = 0x10_0000 + locality * 0x10_0000 + (i * 8192 if locality == 3 else 64 * (i % 16))
            instrs.append(Instr(LOAD, pc, addr, dep, 0.16, 0))
        else:
            addr = 0x50_0000 + locality * 0x10_0000 + 64 * i
            instrs.append(Instr(STORE, pc, addr, NO_CONSUMER, 0.15, 0))
    return instrs


def run_program(program, width=2, mshr=2, runahead=64):
    core = CoreConfig(
        width=width, mshr_entries=mshr, runahead=runahead,
        fetch_buffer=4, store_buffer=2,
    )
    power_cfg = PowerConfig(bin_cycles=10)
    hierarchy = CacheHierarchy(
        CacheConfig(2048, associativity=2),
        CacheConfig(2048, associativity=2),
        CacheConfig(16 * 1024, associativity=4),
        np.random.default_rng(0),
    )
    memory = MainMemory(
        MemoryConfig(access_latency=80, num_banks=4, bank_busy=8,
                     refresh_interval=5_000, refresh_duration=200)
    )
    pipe = Pipeline(core, power_cfg, hierarchy, memory, llc_hit_latency=10)
    power = PowerAccumulator(power_cfg)
    truth = pipe.run(iter(decode(program)), power)
    return truth, power


@given(program_strategy)
@settings(max_examples=60, deadline=None)
def test_cycles_bounded_below_by_width(program):
    truth, _ = run_program(program, width=2)
    assert truth.total_cycles >= len(program) // 2
    assert truth.total_instructions == len(program)


@given(program_strategy)
@settings(max_examples=60, deadline=None)
def test_stall_intervals_disjoint_and_ordered(program):
    truth, _ = run_program(program)
    intervals = [(s.begin_cycle, s.end_cycle) for s in truth.stalls]
    for begin, end in intervals:
        assert 0 <= begin < end <= truth.total_cycles
    for (b1, e1), (b2, e2) in zip(intervals, intervals[1:]):
        assert b2 >= e1  # time-ordered and non-overlapping


@given(program_strategy)
@settings(max_examples=60, deadline=None)
def test_miss_records_consistent(program):
    truth, _ = run_program(program)
    for k, miss in enumerate(truth.misses):
        assert miss.miss_id == k
        assert miss.ready_cycle > miss.detect_cycle
        if miss.stall_id is not None:
            stall = truth.stalls[miss.stall_id]
            assert miss.miss_id in stall.miss_ids


@given(program_strategy)
@settings(max_examples=60, deadline=None)
def test_stall_cycles_bounded_by_total(program):
    truth, _ = run_program(program)
    all_stall = sum(s.duration for s in truth.stalls)
    assert all_stall <= truth.total_cycles
    assert truth.memory_stall_cycles() <= all_stall


@given(program_strategy)
@settings(max_examples=60, deadline=None)
def test_region_cycles_partition_time(program):
    truth, _ = run_program(program)
    assert sum(truth.region_cycles.values()) == truth.total_cycles


@given(program_strategy)
@settings(max_examples=40, deadline=None)
def test_power_trace_covers_run_and_floors_at_idle(program):
    truth, power = run_program(program)
    trace = power.finalize(truth.total_cycles)
    assert len(trace) == -(-truth.total_cycles // 10)
    assert np.all(trace >= 0.12 - 1e-12)


@given(program_strategy)
@settings(max_examples=40, deadline=None)
def test_determinism(program):
    a, _ = run_program(program)
    b, _ = run_program(program)
    assert a.total_cycles == b.total_cycles
    assert [s.begin_cycle for s in a.stalls] == [s.begin_cycle for s in b.stalls]


@given(program_strategy)
@settings(max_examples=40, deadline=None)
def test_ooo_never_slower_than_in_order(program):
    in_order, _ = run_program(program)
    core = CoreConfig(
        width=2, mshr_entries=2, runahead=64, fetch_buffer=4,
        store_buffer=2, out_of_order=True,
    )
    power_cfg = PowerConfig(bin_cycles=10)
    hierarchy = CacheHierarchy(
        CacheConfig(2048, associativity=2),
        CacheConfig(2048, associativity=2),
        CacheConfig(16 * 1024, associativity=4),
        np.random.default_rng(0),
    )
    memory = MainMemory(
        MemoryConfig(access_latency=80, num_banks=4, bank_busy=8,
                     refresh_interval=5_000, refresh_duration=200)
    )
    pipe = Pipeline(core, power_cfg, hierarchy, memory, llc_hit_latency=10)
    ooo = pipe.run(iter(decode(program)), PowerAccumulator(power_cfg))
    # Relaxing the consumer constraint can only remove stall time.
    assert ooo.total_cycles <= in_order.total_cycles
