"""Differential harness: the vectorized engine vs the frozen seed.

The engine rewrite (``repro.core.engine``) replaced the numerical
heart of both the batch and streaming pipelines; this suite is the
proof it changed *nothing observable*.  Every test compares the
production pipeline bit-for-bit (``==`` on floats, not ``approx``)
against the frozen seed implementations in
``tests/reference_pipeline.py``:

* batch detection vs the seed run/merge/refine passes,
* chunked detection across adversarial chunkings (size 1, primes,
  dip-straddling boundaries, whole-signal) vs both seeds,
* the full streaming facade - stall lists, quality summaries, and
  the serialized report JSON - across every fault family,
* the chunked normalizer vs the seed monotonic-deque normalizer,
* the vectorized validators vs the seed greedy sweeps,
* Hypothesis property sweeps over random signals and chunkings.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detect import DetectorConfig, detect_stalls
from repro.core.engine import ChunkDetector, ChunkNormalizer, detect_all
from repro.core.normalize import NormalizerConfig, normalize
from repro.core.streaming import StreamingEmprof
from repro.core.validate import match_stalls, merge_intervals
from repro.faults import applied_clip_level, iter_chunks
from repro.faults.quality import QualityConfig
from repro.io import report_to_dict

from tests.conftest import (
    CHUNK_SIZES,
    CHUNKING_NAMES,
    FAULT_FAMILIES,
    chunk_plan,
    make_dip_signal,
    make_fault_injector,
)
from tests.reference_pipeline import (
    ReferenceOnlineNormalizer,
    ReferenceStreamingDetector,
    ReferenceStreamingEmprof,
    reference_detect_stalls,
    reference_match_stalls,
    reference_merge_intervals,
)

RATE_HZ = 50e6
CLOCK_HZ = 1e9
PERIOD = CLOCK_HZ / RATE_HZ  # 20 cycles per sample

NORM_CFG = NormalizerConfig(window_samples=301)
DET_CFG = DetectorConfig()


def stall_tuple(s):
    """Every observable field of a stall, for exact comparison."""
    return (
        s.begin_sample,
        s.end_sample,
        s.begin_cycle,
        s.end_cycle,
        s.min_level,
        s.is_refresh,
        s.low_confidence,
        s.region,
    )


def assert_stalls_identical(got, want):
    assert [stall_tuple(s) for s in got] == [stall_tuple(s) for s in want]


# ---------------------------------------------------------------------------
# detector: chunked engine vs seed batch and seed streaming
# ---------------------------------------------------------------------------


class TestDetectorEquivalence:
    @pytest.mark.parametrize("chunking", CHUNKING_NAMES)
    def test_chunked_engine_matches_seed_batch(self, chunking):
        norm = normalize(make_dip_signal(n=20000, seed=3), NORM_CFG)
        want = reference_detect_stalls(norm, PERIOD, DET_CFG)
        engine = ChunkDetector(PERIOD, DET_CFG)
        got = []
        for chunk in chunk_plan(norm, chunking):
            got.extend(engine.push(chunk))
        got.extend(engine.finish())
        assert len(want) > 10  # the harness must exercise real dips
        assert_stalls_identical(got, want)

    @pytest.mark.parametrize("chunking", CHUNKING_NAMES)
    def test_chunked_engine_matches_seed_streaming(self, chunking):
        norm = normalize(make_dip_signal(n=20000, seed=5), NORM_CFG)
        reference = ReferenceStreamingDetector(PERIOD, DET_CFG)
        want = []
        for chunk in chunk_plan(norm, chunking):
            want.extend(reference.push(chunk))
        want.extend(reference.finish())
        got = detect_all(norm, PERIOD, DET_CFG)
        assert_stalls_identical(got, want)

    @pytest.mark.parametrize("merge_gap", [0, 1, 2, 5])
    def test_merge_gap_variants(self, merge_gap):
        cfg = DetectorConfig(merge_gap_samples=merge_gap)
        norm = normalize(make_dip_signal(n=12000, seed=9, dip_every=60, dip_len=9), NORM_CFG)
        want = reference_detect_stalls(norm, PERIOD, cfg)
        for chunking in ("prime-7", "size-4096", "whole"):
            engine = ChunkDetector(PERIOD, cfg)
            got = []
            for chunk in chunk_plan(norm, chunking):
                got.extend(engine.push(chunk))
            got.extend(engine.finish())
            assert_stalls_identical(got, want)

    def test_production_batch_matches_seed_batch(self):
        norm = normalize(make_dip_signal(n=20000, seed=3), NORM_CFG)
        assert_stalls_identical(
            detect_stalls(norm, PERIOD, DET_CFG),
            reference_detect_stalls(norm, PERIOD, DET_CFG),
        )

    def test_resync_matches_seed(self):
        norm = normalize(make_dip_signal(n=6000, seed=2), NORM_CFG)
        pieces = np.array_split(norm, [1500, 1510, 4000])
        engine = ChunkDetector(PERIOD, DET_CFG)
        reference = ReferenceStreamingDetector(PERIOD, DET_CFG)
        got, want = [], []
        for i, piece in enumerate(pieces):
            if i:
                got.extend(engine.resync())
                want.extend(reference.resync())
            got.extend(engine.push(piece))
            want.extend(reference.push(piece))
        got.extend(engine.finish())
        want.extend(reference.finish())
        assert_stalls_identical(got, want)


# ---------------------------------------------------------------------------
# normalizer: chunked engine vs seed monotonic-deque implementation
# ---------------------------------------------------------------------------


class TestNormalizerEquivalence:
    @pytest.mark.parametrize("chunking", CHUNKING_NAMES)
    def test_bit_identical_any_chunking(self, chunking):
        x = make_dip_signal(n=9000, seed=4)
        reference = ReferenceOnlineNormalizer(NORM_CFG)
        engine = ChunkNormalizer(NORM_CFG)
        for chunk in chunk_plan(x, chunking):
            np.testing.assert_array_equal(engine.push(chunk), reference.push(chunk))
        np.testing.assert_array_equal(engine.flush(), reference.flush())

    def test_matches_batch_normalize_exactly(self):
        x = make_dip_signal(n=9000, seed=6)
        engine = ChunkNormalizer(NORM_CFG)
        parts = [engine.push(c) for c in np.array_split(x, 13)]
        parts.append(engine.flush())
        np.testing.assert_array_equal(
            np.concatenate(parts), normalize(x, NORM_CFG)
        )


# ---------------------------------------------------------------------------
# full streaming facade: every fault family x chunk sizes
# ---------------------------------------------------------------------------


def quality_config(impaired):
    """Pin the clip level from ground truth, like the chaos suite does."""
    level = applied_clip_level(impaired.log)
    return QualityConfig(clip_level=level) if level is not None else None


def run_pair(impaired, chunk_samples):
    """Feed identical (chunk, gap_before) pairs to engine and seed."""
    size = chunk_samples or max(1, len(impaired.signal))
    quality = quality_config(impaired)
    engine = StreamingEmprof(
        RATE_HZ, CLOCK_HZ, normalizer=NORM_CFG, detector=DET_CFG, quality=quality
    )
    reference = ReferenceStreamingEmprof(
        RATE_HZ, CLOCK_HZ, normalizer=NORM_CFG, detector=DET_CFG, quality=quality
    )
    for chunk, gap in iter_chunks(impaired, size):
        engine.process(chunk, gap_before=gap)
        reference.process(chunk, gap_before=gap)
    return engine.finish(), reference.finish()


class TestStreamingFacadeEquivalence:
    @pytest.mark.parametrize("family", FAULT_FAMILIES)
    @pytest.mark.parametrize("chunk_samples", CHUNK_SIZES)
    def test_report_json_bit_identical(self, family, chunk_samples):
        x = make_dip_signal(n=9000, seed=8)
        impaired = make_fault_injector(family, seed=1).apply(x)
        got, want = run_pair(impaired, chunk_samples)
        assert_stalls_identical(got.stalls, want.stalls)
        assert report_to_dict(got) == report_to_dict(want)

    @pytest.mark.parametrize("chunk_samples", [1, 64, 4096])
    def test_non_finite_runs_bit_identical(self, chunk_samples):
        x = make_dip_signal(n=6000, seed=10)
        x[700:720] = np.nan
        x[2001] = np.inf
        x[4090:4100] = -np.inf
        engine = StreamingEmprof(
            RATE_HZ, CLOCK_HZ, normalizer=NORM_CFG, detector=DET_CFG
        )
        reference = ReferenceStreamingEmprof(
            RATE_HZ, CLOCK_HZ, normalizer=NORM_CFG, detector=DET_CFG
        )
        for chunk in np.array_split(x, np.arange(chunk_samples, len(x), chunk_samples)):
            engine.process(chunk)
            reference.process(chunk)
        got, want = engine.finish(), reference.finish()
        assert_stalls_identical(got.stalls, want.stalls)
        assert report_to_dict(got) == report_to_dict(want)

    def test_quality_summary_identical(self):
        x = make_dip_signal(n=9000, seed=12)
        impaired = make_fault_injector("mixed", seed=2).apply(x)
        got, want = run_pair(impaired, 256)
        assert (got.quality is None) == (want.quality is None)
        if got.quality is not None:
            assert got.quality == want.quality


# ---------------------------------------------------------------------------
# batch facade: profile() vs profile_chunked()
# ---------------------------------------------------------------------------


class TestProfileChunked:
    @pytest.mark.parametrize("chunk_samples", [1, 7, 64, 4096, 10**9])
    def test_bit_identical_to_profile(self, chunk_samples):
        from repro.core.profiler import Emprof, EmprofConfig

        x = make_dip_signal(n=9000, seed=14)
        prof = Emprof(
            x, RATE_HZ, CLOCK_HZ, config=EmprofConfig(normalizer=NORM_CFG)
        )
        whole = prof.profile()
        chunked = prof.profile_chunked(chunk_samples=chunk_samples)
        assert len(whole.stalls) > 5
        assert_stalls_identical(chunked.stalls, whole.stalls)
        assert report_to_dict(chunked) == report_to_dict(whole)

    def test_rejects_bad_chunk_size(self):
        from repro.core.profiler import Emprof

        with pytest.raises(ValueError):
            Emprof(make_dip_signal(n=500), RATE_HZ, CLOCK_HZ).profile_chunked(0)


# ---------------------------------------------------------------------------
# validators: vectorized vs seed greedy sweeps
# ---------------------------------------------------------------------------


class TestValidatorEquivalence:
    def test_merge_intervals_random(self):
        rng = np.random.default_rng(42)
        for trial in range(50):
            k = int(rng.integers(0, 40))
            begins = rng.uniform(0, 1000, k)
            ends = begins + rng.uniform(0, 80, k)
            iv = np.column_stack((begins, ends)) if k else np.empty((0, 2))
            gap = float(rng.uniform(0, 30))
            np.testing.assert_array_equal(
                merge_intervals(iv, gap), reference_merge_intervals(iv, gap)
            )

    def test_match_stalls_random(self):
        rng = np.random.default_rng(43)
        norm = normalize(make_dip_signal(n=9000, seed=16), NORM_CFG)
        stalls = detect_stalls(norm, PERIOD, DET_CFG)
        for trial in range(30):
            k = int(rng.integers(0, 25))
            begins = np.sort(rng.uniform(0, 9000 * PERIOD, k))
            ends = begins + rng.uniform(1, 4000, k)
            truth = np.column_stack((begins, ends)) if k else np.empty((0, 2))
            tol = float(rng.uniform(0, 2 * PERIOD))
            got = match_stalls(stalls, truth, tolerance_cycles=tol)
            want = reference_match_stalls(stalls, truth, tolerance_cycles=tol)
            assert got.true_positives == want.true_positives
            assert got.false_positives == want.false_positives
            assert got.false_negatives == want.false_negatives
            assert got.precision == want.precision
            assert got.recall == want.recall
            np.testing.assert_array_equal(
                got.duration_errors, want.duration_errors
            )

    def test_match_stalls_empty_sides(self):
        norm = normalize(make_dip_signal(n=5000, seed=17), NORM_CFG)
        stalls = detect_stalls(norm, PERIOD, DET_CFG)
        empty = np.empty((0, 2))
        for det, truth in [([], empty), (stalls, empty), ([], np.array([[0.0, 50.0]]))]:
            got = match_stalls(det, truth, tolerance_cycles=PERIOD)
            want = reference_match_stalls(det, truth, tolerance_cycles=PERIOD)
            assert (
                got.true_positives,
                got.false_positives,
                got.false_negatives,
                got.precision,
                got.recall,
            ) == (
                want.true_positives,
                want.false_positives,
                want.false_negatives,
                want.precision,
                want.recall,
            )


# ---------------------------------------------------------------------------
# Hypothesis property sweeps
# ---------------------------------------------------------------------------


LEVELS = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)


class TestPropertySweeps:
    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_detector_any_signal_any_chunking(self, data):
        values = data.draw(st.lists(LEVELS, min_size=0, max_size=300))
        merge_gap = data.draw(st.integers(min_value=0, max_value=3))
        arr = np.asarray(values, dtype=np.float64)
        cfg = DetectorConfig(
            threshold=0.5,
            recover_threshold=0.7,
            min_duration_cycles=30.0,
            min_duration_samples=2,
            merge_gap_samples=merge_gap,
            refresh_min_cycles=100.0,
        )
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=max(0, len(arr))),
                    max_size=6,
                )
            )
        )
        reference = ReferenceStreamingDetector(PERIOD, cfg)
        want = reference.push(arr) + reference.finish()
        engine = ChunkDetector(PERIOD, cfg)
        got = []
        for chunk in np.split(arr, cuts):
            got.extend(engine.push(chunk))
        got.extend(engine.finish())
        assert_stalls_identical(got, want)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_normalizer_any_signal_any_chunking(self, data):
        values = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=0,
                max_size=200,
            )
        )
        arr = np.asarray(values, dtype=np.float64)
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=max(0, len(arr))),
                    max_size=5,
                )
            )
        )
        cfg = NormalizerConfig(window_samples=21)
        reference = ReferenceOnlineNormalizer(cfg)
        engine = ChunkNormalizer(cfg)
        got, want = [], []
        for chunk in np.split(arr, cuts):
            got.append(engine.push(chunk))
            want.append(reference.push(chunk))
        got.append(engine.flush())
        want.append(reference.flush())
        np.testing.assert_array_equal(
            np.concatenate(got) if got else np.empty(0),
            np.concatenate([np.asarray(w, dtype=np.float64) for w in want])
            if want
            else np.empty(0),
        )
