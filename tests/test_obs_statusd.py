"""The line-JSON status server: queries, ingest, streaming, errors."""

import json
import socket
import threading

import pytest

from repro.obs import set_obs_enabled
from repro.obs.events import Event, EventBus, InMemorySink
from repro.obs.statusd import StatusServer, parse_address, query, watch


@pytest.fixture()
def obs_on():
    previous = set_obs_enabled(True)
    yield
    set_obs_enabled(previous)


@pytest.fixture()
def server():
    bus = EventBus(auto_drain=False)
    status = StatusServer(bus, port=0)
    status.start()
    yield status, bus
    status.close()
    bus.close()


class TestQueries:
    def test_status_reports_protocol_and_bus_stats(self, obs_on, server):
        status, bus = server
        bus.emit("chunk_processed", samples=64, stalls=2, latency_s=0.01)
        reply = query("127.0.0.1", status.port, {"req": "status"})
        assert reply["ok"] is True
        assert reply["protocol"] == "repro-obs-statusd"
        assert reply["events"]["samples_total"] == 64
        assert reply["events"]["counts"]["chunk_processed"] == 1

    def test_tail_returns_newest_events(self, obs_on, server):
        status, bus = server
        for index in range(5):
            bus.emit("heartbeat", n=index)
        reply = query("127.0.0.1", status.port, {"req": "tail", "n": 2})
        assert reply["ok"] is True
        assert [e["attrs"]["n"] for e in reply["events"]] == [3, 4]

    def test_health_healthy_after_recent_event(self, obs_on, server):
        status, bus = server
        bus.emit("heartbeat")
        reply = query("127.0.0.1", status.port, {"req": "health"})
        assert reply["ok"] is True
        assert reply["healthy"] is True
        assert reply["stalled"] is False

    def test_unknown_request_names_the_catalogue(self, obs_on, server):
        status, _ = server
        reply = query("127.0.0.1", status.port, {"req": "frobnicate"})
        assert reply["ok"] is False
        assert "status" in reply["error"]

    def test_malformed_json_yields_error_not_hangup(self, obs_on, server):
        status, _ = server
        with socket.create_connection(("127.0.0.1", status.port), 5) as sock:
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile().readline())
        assert reply["ok"] is False

    def test_extra_status_callback_is_merged(self, obs_on):
        bus = EventBus(auto_drain=False)
        status = StatusServer(
            bus, port=0, extra_status=lambda: {"campaign": "night"}
        )
        status.start()
        try:
            reply = query("127.0.0.1", status.port, {"req": "status"})
            assert reply["extra"]["campaign"] == "night"
        finally:
            status.close()
            bus.close()

    def test_extra_status_errors_are_contained(self, obs_on):
        def broken():
            raise RuntimeError("status source on fire")

        bus = EventBus(auto_drain=False)
        status = StatusServer(bus, port=0, extra_status=broken)
        status.start()
        try:
            reply = query("127.0.0.1", status.port, {"req": "status"})
            assert reply["ok"] is True
            assert "on fire" in reply["extra"]["error"]
        finally:
            status.close()
            bus.close()


class TestIngest:
    def test_emit_request_lands_on_the_bus(self, obs_on, server):
        status, bus = server
        payload = Event(
            kind="heartbeat", t_unix_s=1.0, seq=0, pid=77, source="w0"
        ).to_dict()
        with socket.create_connection(("127.0.0.1", status.port), 5) as sock:
            sock.sendall(
                (json.dumps({"req": "emit", "event": payload}) + "\n").encode()
            )
            # emit is fire-and-forget; a follow-up query on the same
            # connection proves ordering.
            sock.sendall(b'{"req": "status"}\n')
            reply = json.loads(sock.makefile().readline())
        assert reply["events"]["counts"]["heartbeat"] == 1
        assert "w0" in reply["events"]["last_heartbeat_unix_s"]

    def test_invalid_events_are_rejected_and_counted(self, obs_on, server):
        status, bus = server
        with socket.create_connection(("127.0.0.1", status.port), 5) as sock:
            sock.sendall(
                b'{"req": "emit", "event": {"kind": "nope"}}\n'
                b'{"req": "status"}\n'
            )
            reply = json.loads(sock.makefile().readline())
        assert reply["rejected_events"] == 1
        assert reply["events"]["total"] == 0


class TestWatch:
    def test_watch_streams_live_events(self, obs_on):
        # Streaming needs the drainer thread: subscriptions are sinks.
        bus = EventBus()
        status = StatusServer(bus, port=0)
        status.start()
        received = []
        done = threading.Event()

        def consume():
            for event in watch("127.0.0.1", status.port, timeout_s=5.0):
                received.append(event)
                if len(received) >= 3:
                    break
            done.set()

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        try:
            # Give the subscription a moment to attach, then produce.
            deadline_beats = 0
            while not done.is_set() and deadline_beats < 200:
                bus.emit("heartbeat", n=deadline_beats)
                deadline_beats += 1
                done.wait(0.02)
            assert done.wait(5.0)
            assert len(received) >= 3
            assert all(e.kind == "heartbeat" for e in received)
        finally:
            status.close()
            bus.close()


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.5:9000") == ("10.0.0.5", 9000)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_address("9000") == ("127.0.0.1", 9000)

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_address("not-an-address")
