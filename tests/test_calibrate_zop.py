"""Tests for detector calibration and the ZOP-style matcher."""

import numpy as np
import pytest

from repro.attribution.zop import ZopMatcher, ZopResult, sequence_accuracy
from repro.core.calibrate import (
    CalibrationPoint,
    calibrate_detector,
    sensitivity,
)


# -- calibration ----------------------------------------------------------------


@pytest.fixture(scope="module")
def calibration_capture():
    """A 128-miss microbenchmark capture on the Olimex model."""
    from repro import Microbenchmark, simulate
    from repro.devices import default_channel, olimex
    from repro.emsignal import measure

    workload = Microbenchmark(total_misses=128, consecutive_misses=4)
    result = simulate(workload, olimex())
    capture = measure(result, bandwidth_hz=40e6, channel=default_channel("olimex"))
    return capture, workload.total_misses


class TestCalibration:
    def test_finds_accurate_config(self, calibration_capture):
        capture, expected = calibration_capture
        result = calibrate_detector(
            capture,
            expected,
            thresholds=(0.30, 0.45, 0.60),
            min_durations=(70.0,),
            windows=(2001,),
        )
        assert result.accuracy > 0.97
        assert result.expected == expected
        assert result.best in result.points

    def test_winning_config_reproduces_best_point(self, calibration_capture):
        from repro.core.markers import find_marker_window
        from repro.core.profiler import Emprof

        capture, expected = calibration_capture
        result = calibrate_detector(
            capture, expected,
            thresholds=(0.45,), min_durations=(70.0,), windows=(2001,),
        )
        profiler = Emprof.from_capture(capture, config=result.config)
        window = find_marker_window(profiler.signal, marker_min_samples=200)
        report = profiler.profile_window(window.begin_sample, window.end_sample)
        assert report.miss_count == result.best.detected

    def test_bad_extreme_scores_lower(self, calibration_capture):
        capture, expected = calibration_capture
        result = calibrate_detector(
            capture, expected,
            thresholds=(0.45, 0.9),  # 0.9 floods false positives
            min_durations=(70.0,),
            windows=(2001,),
        )
        assert result.best.threshold == pytest.approx(0.45)
        worst = max(result.points, key=lambda p: abs(p.detected - expected))
        assert worst.threshold == pytest.approx(0.9)

    def test_rejects_bad_expected(self, calibration_capture):
        capture, _ = calibration_capture
        with pytest.raises(ValueError):
            calibrate_detector(capture, 0)

    def test_unusable_capture_raises(self):
        from repro.emsignal.receiver import Capture

        rng = np.random.default_rng(0)
        noise = Capture(rng.random(3000), 40e6, 1e9, 40e6)
        with pytest.raises(ValueError):
            calibrate_detector(
                noise, 100, thresholds=(0.45,), min_durations=(70.0,), windows=(801,)
            )

    def test_sensitivity_shape(self, calibration_capture):
        capture, expected = calibration_capture
        result = calibrate_detector(
            capture, expected,
            thresholds=(0.38, 0.45), min_durations=(70.0, 100.0), windows=(2001,),
        )
        sens = sensitivity(result.points)
        assert set(sens) == {"threshold", "min_duration_cycles", "window_samples"}
        assert set(sens["threshold"]) == {0.38, 0.45}
        for acc in sens["threshold"].values():
            assert 0.0 <= acc <= 1.0


# -- ZOP matcher --------------------------------------------------------------------


def block(freq, n=64, phase=0.0):
    t = np.arange(n)
    return 0.8 + 0.15 * np.sin(2 * np.pi * freq * t / n + phase)


class TestZopMatcher:
    def make(self):
        m = ZopMatcher(max_distance=0.5)
        m.add_template("A", block(2.0))
        m.add_template("B", block(7.0))
        m.add_template("C", block(13.0))
        return m

    def test_blocks_listed(self):
        assert set(self.make().blocks) == {"A", "B", "C"}

    def test_reconstructs_clean_sequence(self, rng):
        m = self.make()
        seq = ["A", "B", "A", "C", "B", "B", "A"]
        signal = np.concatenate([block({"A": 2.0, "B": 7.0, "C": 13.0}[s]) for s in seq])
        result = m.match(signal)
        assert result.sequence() == seq
        assert result.coverage == pytest.approx(1.0)

    def test_survives_moderate_noise(self, rng):
        m = self.make()
        seq = ["A", "C", "B", "A"]
        signal = np.concatenate(
            [block({"A": 2.0, "B": 7.0, "C": 13.0}[s]) for s in seq]
        ) + rng.normal(0, 0.02, 4 * 64)
        result = m.match(signal)
        assert sequence_accuracy(result, seq) > 0.7

    def test_unmatchable_region_skipped(self, rng):
        m = self.make()
        # A flat stall-like stretch matches no template.
        signal = np.concatenate([block(2.0), np.full(64, 0.1), block(7.0)])
        result = m.match(signal)
        names = result.sequence()
        assert names[0] == "A"
        assert "B" in names
        assert result.coverage < 1.0

    def test_comparisons_scale_with_hypotheses(self):
        # The paper's cost argument: more path hypotheses = more work.
        few = ZopMatcher()
        few.add_template("A", block(2.0))
        many = ZopMatcher()
        for k in range(12):
            many.add_template(f"B{k}", block(2.0 + k))
        signal = np.tile(block(2.0), 30)
        assert many.match(signal).comparisons > 5 * few.match(signal).comparisons

    def test_requires_templates(self):
        with pytest.raises(RuntimeError):
            ZopMatcher().match(np.zeros(100))

    def test_rejects_short_template(self):
        with pytest.raises(ValueError):
            ZopMatcher().add_template("x", np.zeros(4))

    def test_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            ZopMatcher(max_distance=0.0)


class TestSequenceAccuracy:
    @staticmethod
    def res(names):
        from repro.attribution.zop import ZopSegment

        segments = [ZopSegment(n, 64 * i, 64 * (i + 1), 0.0) for i, n in enumerate(names)]
        return ZopResult(segments=segments, comparisons=0, coverage=1.0)

    def test_perfect(self):
        assert sequence_accuracy(self.res(["A", "B"]), ["A", "B"]) == 1.0

    def test_partial(self):
        acc = sequence_accuracy(self.res(["A", "X", "B"]), ["A", "B", "C"])
        assert acc == pytest.approx(2 / 3)

    def test_empty_expected(self):
        assert sequence_accuracy(self.res([]), []) == 1.0
