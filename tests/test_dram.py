"""Unit tests for the DRAM timing model."""

import numpy as np
import pytest

from repro.sim.config import MemoryConfig
from repro.sim.dram import MainMemory


def mem(**kwargs):
    defaults = dict(
        access_latency=100,
        num_banks=4,
        bank_busy=10,
        refresh_interval=10_000,
        refresh_duration=500,
    )
    defaults.update(kwargs)
    return MainMemory(MemoryConfig(**defaults), line_bytes=64)


class TestBasicTiming:
    def test_isolated_access_latency(self):
        m = mem()
        resp = m.access(1000, 0x0)
        assert resp.latency == 100
        assert resp.ready_cycle == 1100
        assert not resp.refresh_blocked

    def test_ready_always_after_request(self):
        m = mem()
        for cycle in (0, 5_000, 123_456):
            assert m.access(cycle, cycle * 64).ready_cycle > cycle

    def test_bank_mapping_uses_line_address(self):
        m = mem()
        r0 = m.access(0, 0)
        r1 = m.access(0, 64)
        assert r0.bank != r1.bank

    def test_same_bank_serializes(self):
        m = mem()
        first = m.access(0, 0)
        # Same line -> same bank; issued while the bank is busy.
        second = m.access(0, 0)
        assert second.ready_cycle >= first.ready_cycle - 100 + 10 + 100
        assert second.latency > first.latency

    def test_different_banks_do_not_serialize(self):
        m = mem()
        m.access(0, 0)
        resp = m.access(0, 64)
        assert resp.latency == 100

    def test_bank_frees_after_busy_time(self):
        m = mem()
        m.access(0, 0)
        late = m.access(50, 0)  # bank busy only until cycle 10
        assert late.latency == 100

    def test_accesses_counted(self):
        m = mem()
        m.access(0, 0)
        m.access(0, 64)
        assert m.accesses == 2

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            mem().access(-1, 0)


class TestRefresh:
    def test_no_refresh_before_first_interval(self):
        m = mem()
        assert not m.access(500, 0).refresh_blocked

    def test_access_inside_window_blocks(self):
        m = mem()
        start, end = m.refresh_window(1)
        resp = m.access(start + 10, 0)
        assert resp.refresh_blocked
        assert resp.ready_cycle == end + 100

    def test_access_after_window_unblocked(self):
        m = mem()
        _, end = m.refresh_window(1)
        assert not m.access(end + 1, 0).refresh_blocked

    def test_refresh_hits_counted(self):
        m = mem()
        start, _ = m.refresh_window(1)
        m.access(start + 1, 0)
        assert m.refresh_hits == 1

    def test_windows_are_jittered(self):
        m = mem()
        offsets = {
            m.refresh_window(k)[0] - k * m.config.refresh_interval
            for k in range(1, 30)
        }
        assert len(offsets) > 5  # not phase-locked

    def test_window_starts_within_interval(self):
        m = mem()
        for k in range(1, 50):
            start, end = m.refresh_window(k)
            assert k * 10_000 <= start < (k + 1) * 10_000
            assert end - start == 500

    def test_next_refresh_monotone(self):
        m = mem()
        nxt = m.next_refresh(12_345)
        assert nxt >= 12_345
        start, _ = m.refresh_window(nxt // 10_000)
        assert nxt == start

    def test_next_refresh_raises_when_disabled(self):
        m = mem(refresh_enabled=False)
        with pytest.raises(RuntimeError):
            m.next_refresh(0)

    def test_disabled_refresh_never_blocks(self):
        m = mem(refresh_enabled=False)
        for cycle in range(0, 100_000, 7_777):
            assert not m.access(cycle, 0).refresh_blocked


class TestContention:
    def test_zero_probability_is_deterministic(self):
        m = mem(contention_prob=0.0)
        latencies = {m.access(k * 1000, k * 128).latency for k in range(20)}
        assert latencies == {100}

    def test_contention_inflates_some_latencies(self):
        m = MainMemory(
            MemoryConfig(
                access_latency=100,
                num_banks=4,
                bank_busy=0,
                refresh_enabled=False,
                contention_prob=0.5,
                contention_mean_cycles=200.0,
            ),
            rng=np.random.default_rng(42),
        )
        latencies = [m.access(k * 10_000, k * 128).latency for k in range(200)]
        assert m.contention_hits > 20
        assert max(latencies) > 150
        assert min(latencies) == 100


class TestReset:
    def test_reset_clears_state(self):
        m = mem()
        m.access(0, 0)
        m.access(0, 0)
        m.reset()
        assert m.accesses == 0
        assert m.refresh_hits == 0
        assert m.contention_hits == 0
        assert m.busy_segments == []
        # Bank no longer busy.
        assert m.access(0, 0).latency == 100

    def test_busy_segments_recorded(self):
        m = mem()
        m.access(0, 0)
        assert m.busy_segments == [(0, 100)]


class TestRowBuffer:
    def make(self):
        return MainMemory(
            MemoryConfig(
                access_latency=100,
                num_banks=4,
                bank_busy=0,
                refresh_enabled=False,
                row_buffer_enabled=True,
                row_hit_latency=40,
                row_bytes=8192,
            ),
            line_bytes=64,
        )

    def test_first_access_is_row_miss(self):
        m = self.make()
        assert m.access(0, 0x0).latency == 100

    def test_same_row_hits(self):
        m = self.make()
        m.access(0, 0x0)
        # Line 4 maps back to bank 0 (4 banks) and lives in row 0.
        resp = m.access(1000, 0x100)
        assert resp.latency == 40
        assert m.row_hits == 1

    def test_row_conflict_pays_full_latency(self):
        m = self.make()
        m.access(0, 0x0)
        # Same bank (line addr bits), different row.
        conflict = 4 * 8192  # row 4; bank = (addr>>6) & 3 = 0
        resp = m.access(1000, conflict)
        assert resp.latency == 100

    def test_rows_tracked_per_bank(self):
        m = self.make()
        m.access(0, 0x0)        # bank 0, row 0
        m.access(0, 0x40 * 1)   # bank 1
        resp = m.access(1000, 0x0)  # bank 0's row still open
        assert resp.latency == 40

    def test_reset_closes_rows(self):
        m = self.make()
        m.access(0, 0x0)
        m.reset()
        assert m.access(0, 0x0).latency == 100
        assert m.row_hits == 0

    def test_disabled_by_default(self):
        m = mem(refresh_enabled=False)
        m.access(0, 0x0)
        assert m.access(1000, 0x40).latency == 100

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MemoryConfig(row_buffer_enabled=True, row_hit_latency=0)
        with pytest.raises(ValueError):
            MemoryConfig(
                access_latency=100, row_buffer_enabled=True, row_hit_latency=200
            )
        with pytest.raises(ValueError):
            MemoryConfig(row_buffer_enabled=True, row_bytes=3000)
