"""Unit tests for the metrics registry (`repro.obs.metrics`)."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import set_obs_enabled
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _escape_help,
    _escape_label_value,
)


@pytest.fixture()
def obs_on():
    previous = set_obs_enabled(True)
    yield
    set_obs_enabled(previous)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, obs_on):
        c = Counter("x_total")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_disabled_is_noop(self):
        previous = set_obs_enabled(False)
        try:
            c = Counter("x_total")
            c.inc(100)
            assert c.value == 0.0
        finally:
            set_obs_enabled(previous)

    def test_rejects_negative(self, obs_on):
        c = Counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_and_add(self, obs_on):
        g = Gauge("level")
        g.set(10)
        g.add(-2.5)
        assert g.value == pytest.approx(7.5)

    def test_disabled_is_noop(self):
        previous = set_obs_enabled(False)
        try:
            g = Gauge("level")
            g.set(9)
            g.add(1)
            assert g.value == 0.0
        finally:
            set_obs_enabled(previous)


class TestHistogram:
    def test_counts_sum_min_max(self, obs_on):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0, 9.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(15.6)
        assert h.mean == pytest.approx(15.6 / 5)
        snap = h.snapshot()
        assert snap["min"] == pytest.approx(0.5)
        assert snap["max"] == pytest.approx(9.0)
        # Cumulative le-buckets, implicit +Inf overflow.
        assert [b["count"] for b in snap["buckets"]] == [1, 3, 4, 5]
        assert snap["buckets"][-1]["le"] == "+Inf"

    def test_boundary_value_lands_in_its_bucket(self, obs_on):
        # le semantics: an observation equal to a bound counts in it.
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert [b["count"] for b in h.snapshot()["buckets"]] == [1, 1, 1]

    def test_quantiles_interpolate_and_clamp(self, obs_on):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0, 9.0):
            h.observe(v)
        assert h.quantile(0.0) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(9.0)
        # Median lands in the (1, 2] bucket.
        assert 1.0 <= h.quantile(0.5) <= 2.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_quantile_is_zero(self, obs_on):
        assert Histogram("lat").quantile(0.5) == 0.0

    def test_default_buckets_span_latency_decades(self):
        h = Histogram("lat")
        assert h.bounds == DEFAULT_LATENCY_BUCKETS
        assert h.bounds[0] == pytest.approx(1e-6)
        assert h.bounds[-1] == pytest.approx(10.0)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, math.inf))

    def test_disabled_is_noop(self):
        previous = set_obs_enabled(False)
        try:
            h = Histogram("lat")
            h.observe(1.0)
            assert h.count == 0
        finally:
            set_obs_enabled(previous)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        a = registry.counter("x_total", "first help")
        b = registry.counter("x_total", "second help")
        assert a is b
        assert a.help == "first help"

    def test_first_nonempty_help_wins(self, registry):
        a = registry.counter("x_total")
        registry.counter("x_total", "late help")
        assert a.help == "late help"

    def test_kind_conflict_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.histogram("x_total")
        registry.histogram("lat_seconds")
        with pytest.raises(ValueError):
            registry.counter("lat_seconds")

    def test_reset_zeroes_but_keeps_registrations(self, obs_on, registry):
        c = registry.counter("x_total")
        h = registry.histogram("lat_seconds")
        c.inc(5)
        h.observe(0.1)
        registry.reset()
        assert registry.names() == ["x_total", "lat_seconds"]
        assert c.value == 0.0
        assert h.count == 0
        # The cached handle still feeds the same registry entry.
        c.inc(2)
        assert registry.snapshot()["counters"]["x_total"]["value"] == 2.0

    def test_snapshot_groups_by_kind(self, obs_on, registry):
        registry.counter("c_total")
        registry.gauge("g")
        registry.histogram("h_seconds")
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert "c_total" in snap["counters"]
        assert "g" in snap["gauges"]
        assert "h_seconds" in snap["histograms"]

    def test_json_round_trips_snapshot(self, obs_on, registry):
        registry.counter("c_total").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.05)
        assert json.loads(registry.to_json()) == registry.snapshot()

    def test_write_both_formats(self, obs_on, registry, tmp_path):
        registry.counter("c_total").inc()
        json_path = tmp_path / "m.json"
        prom_path = tmp_path / "m.prom"
        registry.write(str(json_path), fmt="json")
        registry.write(str(prom_path), fmt="prom")
        assert json.loads(json_path.read_text())["counters"]["c_total"]["value"] == 1.0
        assert "c_total 1" in prom_path.read_text()
        with pytest.raises(ValueError):
            registry.write(str(json_path), fmt="csv")


class TestPrometheusText:
    def test_counter_exposition(self, obs_on, registry):
        registry.counter("stalls_total", "detected stalls").inc(34)
        text = registry.to_prometheus()
        assert "# HELP stalls_total detected stalls" in text
        assert "# TYPE stalls_total counter" in text
        assert "stalls_total 34" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self, obs_on, registry):
        h = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = registry.to_prometheus()
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 5.05" in text
        assert "lat_seconds_count 2" in text

    def test_labels_rendered_and_escaped(self, obs_on, registry):
        c = registry.counter(
            "runs_total", "runs", labels={"device": 'oli"mex\\1\n'}
        )
        c.inc()
        text = registry.to_prometheus()
        assert 'runs_total{device="oli\\"mex\\\\1\\n"} 1' in text

    def test_help_escaping(self):
        assert _escape_help("a\\b\nc") == "a\\\\b\\nc"
        # Help lines do not escape quotes; label values do.
        assert _escape_label_value('say "hi"') == 'say \\"hi\\"'


class TestHistogramPercentiles:
    def test_snapshot_carries_p50_p95_p99(self, obs_on):
        hist = Histogram("latency_seconds", buckets=(0.01, 0.1, 1.0))
        for _ in range(90):
            hist.observe(0.005)
        for _ in range(10):
            hist.observe(0.5)
        snap = hist.snapshot()
        pct = snap["percentiles"]
        assert set(pct) == {"p50", "p95", "p99"}
        assert pct["p50"] <= 0.01
        assert 0.1 <= pct["p99"] <= 1.0
        assert pct["p50"] <= pct["p95"] <= pct["p99"]

    def test_empty_histogram_exports_nulls(self, obs_on):
        hist = Histogram("never_fired_seconds", buckets=(1.0,))
        snap = hist.snapshot()
        assert snap["percentiles"] == {"p50": None, "p95": None, "p99": None}

    def test_snapshot_percentiles_match_quantile(self, obs_on):
        # snapshot() computes inside the lock; quantile() takes it.
        # Both must agree (and neither may deadlock).
        hist = Histogram("h_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.02, 0.05, 0.5):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["percentiles"]["p95"] == pytest.approx(hist.quantile(0.95))

    def test_prometheus_emits_percentile_gauges(self, obs_on, registry):
        hist = registry.histogram("lat_seconds", buckets=(0.01, 1.0))
        hist.observe(0.005)
        text = registry.to_prometheus()
        assert "# TYPE lat_seconds_p50 gauge" in text
        assert "lat_seconds_p95 " in text
        assert "lat_seconds_p99 " in text

    def test_json_snapshot_roundtrip_with_percentiles(self, obs_on, registry):
        hist = registry.histogram("lat_seconds", buckets=(0.01, 1.0))
        hist.observe(0.005)
        assert json.loads(registry.to_json()) == registry.snapshot()
