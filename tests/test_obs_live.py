"""The live-telemetry acceptance scenario, end to end.

A multi-worker campaign serves the line-JSON status protocol while it
runs; a client queries it mid-flight from another thread; one worker
is killed mid-run; afterwards the per-process traces stitch into one
trace under a single trace id and the heartbeat table shows the
killed worker's silence.  This is the ISSUE's "live demo as a test".
"""

import json
import time

import numpy as np
import pytest

from repro.core.detect import DetectorConfig
from repro.core.normalize import NormalizerConfig
from repro.core.profiler import EmprofConfig
from repro.emsignal.receiver import Capture
from repro.experiments import Campaign, RunSpec
from repro.obs import set_obs_enabled
from repro.obs.events import bus, read_events
from repro.obs.ledger import RunLedger
from repro.obs.statusd import query
from repro.obs.tracectx import stitch_traces

SMALL = EmprofConfig(
    normalizer=NormalizerConfig(window_samples=301),
    detector=DetectorConfig(),
)


class SlowSource:
    """A synthetic capture that takes a while - long enough to query
    the live campaign and to kill a worker mid-run."""

    def __init__(self, delay_s=0.4):
        self.delay_s = delay_s

    def capture(self):
        time.sleep(self.delay_s)
        rng = np.random.default_rng(0)
        x = np.full(3000, 0.9) + rng.normal(0, 0.02, 3000)
        for s in range(200, 2800, 170):
            x[s : s + 13] = 0.1
        return Capture(
            magnitude=np.clip(x, 0.0, None),
            sample_rate_hz=50e6,
            clock_hz=1e9,
            bandwidth_hz=50e6,
            region_names={},
        )


@pytest.fixture()
def obs_on():
    previous = set_obs_enabled(True)
    bus.reset()
    yield
    bus.reset()
    set_obs_enabled(previous)


def _specs(n, delay_s=0.4):
    return [
        RunSpec(f"run{i}", (lambda: SlowSource(delay_s)), config=SMALL)
        for i in range(n)
    ]


def test_live_campaign_query_kill_and_stitch(tmp_path, obs_on):
    campaign = Campaign(
        tmp_path / "camp",
        sleep=lambda _: None,
        ledger=RunLedger(tmp_path / "ledger.jsonl", fsync=False),
        workers=2,
        status_port=0,
        heartbeat_interval_s=0.05,
    )
    execution = campaign.start(_specs(4))
    try:
        host, port = campaign.status_address

        # -- mid-run: the status socket answers from another thread --
        deadline = time.monotonic() + 10.0
        status = None
        while time.monotonic() < deadline:
            status = query(host, port, {"req": "status"})
            beats = status["events"]["last_heartbeat_unix_s"]
            if {"worker0", "worker1"} <= set(beats):
                break
            time.sleep(0.05)
        assert status is not None
        assert {"worker0", "worker1"} <= set(
            status["events"]["last_heartbeat_unix_s"]
        ), "both workers should heartbeat while running"
        assert status["extra"]["campaign"] == "camp"

        tail = query(host, port, {"req": "tail", "n": 50})
        assert any(e["kind"] == "heartbeat" for e in tail["events"])

        health = query(host, port, {"req": "health"})
        assert health["healthy"] is True

        # -- kill one worker mid-run ---------------------------------
        # Let the doomed worker bank a few beats first so the stitched
        # liveness table has a cadence baseline to indict it with.
        time.sleep(0.25)
        execution.processes["worker1"].kill()
    finally:
        result = execution.join(timeout_s=30.0)

    # The supervisor requeues the killed worker's leased run on a
    # respawned worker: every run completes despite the SIGKILL.
    counts = result.counts()
    assert counts == {"done": 4, "failed": 0, "skipped": 0}, counts
    assert result.completed
    requeued = result.interrupted()
    assert requeued, "the killed worker's run must surface as interrupted"
    assert all(attempts >= 2 for attempts in requeued.values())
    manifest = json.loads((campaign.directory / "manifest.json").read_text())
    assert all(
        entry["status"] == "done" for entry in manifest["runs"].values()
    )

    # -- the server is down, the events file survives ----------------
    assert campaign.status_address is None
    events, bad = read_events(campaign.events_path)
    assert bad == 0
    sources = {e.source for e in events}
    assert {"main", "worker0", "worker1"} <= sources
    kinds = {e.kind for e in events}
    assert {"run_started", "run_finished", "heartbeat",
            "checkpoint_written", "worker_spawned", "worker_killed",
            "job_requeued"} <= kinds

    # The requeue incident is on the durable record.
    incident_ledger = RunLedger(tmp_path / "ledger.jsonl")
    requeue_records = incident_ledger.read(kind="campaign-requeue")
    assert requeue_records
    assert all(r.label.startswith("camp/") for r in requeue_records)

    # -- stitch: every process under one trace id --------------------
    payloads = [
        json.loads(path.read_text())
        for path in sorted(campaign.directory.glob("*.trace.json"))
    ]
    # SIGKILL means worker1 never wrote its trace - the stitch works
    # from whoever survived; the heartbeat table covers the dead.
    stitched_processes = {p["process"] for p in payloads}
    assert {"main", "worker0"} <= stitched_processes
    document = stitch_traces(payloads, events=events)
    assert document["mixed_trace_ids"] == []
    assert document["trace_id"] not in ("", "unknown")

    # Worker root spans hang under the parent campaign span.
    campaign_gids = {
        s["gid"] for s in document["spans"] if s["name"] == "campaign"
    }
    worker_roots = [
        s for s in document["spans"] if s["name"] == "campaign_worker"
    ]
    assert worker_roots
    assert all(s["parent_gid"] in campaign_gids for s in worker_roots)

    # The heartbeat table indicts the killed worker, not the survivor.
    beats = document["heartbeats"]
    assert beats["worker1"]["stalled"] is True
    assert beats["worker0"]["stalled"] is False

    # The ledger summary bridges the bus rollup.
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    summaries = ledger.read(kind="campaign")
    assert summaries
    bridged = summaries[-1].extra["events"]
    assert bridged["total"] > 0
    assert bridged["dropped_events"] == 0


def test_obs_off_campaign_emits_no_events(tmp_path):
    previous = set_obs_enabled(False)
    bus.reset()
    try:
        campaign = Campaign(
            tmp_path / "camp",
            sleep=lambda _: None,
            workers=2,
            heartbeat_interval_s=0.05,
        )
        result = campaign.start(_specs(2, delay_s=0.05)).join(timeout_s=30.0)
        assert result.counts()["done"] == 2
        assert not campaign.events_path.exists()
        assert bus.stats()["total"] == 0
    finally:
        bus.reset()
        set_obs_enabled(previous)


def test_serial_campaign_still_observes(tmp_path, obs_on):
    # workers=1 keeps the in-process path; events must still flow.
    campaign = Campaign(tmp_path / "camp", sleep=lambda _: None)
    result = campaign.execute(_specs(2, delay_s=0.0))
    assert result.counts()["done"] == 2
    events, bad = read_events(campaign.events_path)
    assert bad == 0
    assert any(e.kind == "checkpoint_written" for e in events)
    assert any(e.kind == "run_started" for e in events)
