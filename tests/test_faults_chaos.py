"""Chaos gate: bounded detection error under injected impairments.

The acceptance property from docs/robustness.md: with <= 2% of samples
dropped, a few AGC gain steps, and <= 1% of samples clipped, the
hardened streaming pipeline's reported miss count stays within 10% of
the clean run, and every stall overlapping an injected impairment is
flagged ``low_confidence`` - while clean-signal behaviour is
bit-identical to batch (covered property-style by the equivalence
tests in test_streaming.py; re-asserted here under the same configs).
"""

import numpy as np
import pytest

from repro.core.detect import DetectorConfig, detect_stalls
from repro.core.normalize import NormalizerConfig, normalize
from repro.core.streaming import profile_chunks
from repro.faults import (
    ClippingFault,
    DropoutFault,
    FaultInjector,
    GainStepFault,
    QualityConfig,
    applied_clip_level,
    iter_chunks,
)

NORM = NormalizerConfig(window_samples=301)
DET = DetectorConfig()
RATE, CLOCK = 50e6, 1e9


def dip_signal(n=20000, seed=0, dip_every=170, dip_len=13):
    rng = np.random.default_rng(seed)
    x = np.full(n, 0.9) + rng.normal(0, 0.02, n)
    for s in range(200, n - 200, dip_every):
        x[s : s + dip_len] = 0.1 + rng.normal(0, 0.01, dip_len)
    return np.clip(x, 0.0, None)


def profile(chunks, quality=None):
    return profile_chunks(
        chunks,
        sample_rate_hz=RATE,
        clock_hz=CLOCK,
        normalizer=NORM,
        detector=DET,
        quality=quality,
    )


@pytest.mark.parametrize("seed", range(6))
def test_bounded_miss_error_under_impairment(seed):
    x = dip_signal(seed=seed)
    clean = profile([x])
    assert clean.miss_count > 50

    injector = FaultInjector(
        [DropoutFault(rate=0.02), GainStepFault(steps=3), ClippingFault(rate=0.01)],
        seed=seed,
    )
    impaired = injector.apply(x)
    # the digitizer's full scale is known to a real monitor; read the
    # level the injection actually used from the ground truth
    report = profile(
        iter_chunks(impaired, chunk_samples=1024),
        quality=QualityConfig(clip_level=applied_clip_level(impaired.log)),
    )

    # (1) bounded error: the miss count survives the impairment mix
    error = abs(report.miss_count - clean.miss_count) / clean.miss_count
    assert error <= 0.10, (
        f"seed {seed}: miss count drifted {100 * error:.1f}% "
        f"({clean.miss_count} -> {report.miss_count})"
    )

    # (2) ground-truth gating: every stall overlapping an injected
    # severe impairment is flagged low-confidence
    unflagged = [
        s
        for s in report.stalls
        if impaired.log.overlaps(s.begin_sample, s.end_sample)
        and not s.low_confidence
    ]
    assert unflagged == [], (
        f"seed {seed}: {len(unflagged)} impairment-overlapping stalls "
        f"not flagged"
    )

    # (3) the report accounts for what happened
    assert report.quality is not None
    assert report.quality.gap_count == len(impaired.gaps)
    assert report.quality.dropped_samples == sum(d for _, d in impaired.gaps)
    assert report.low_confidence_count > 0


@pytest.mark.parametrize("seed", range(3))
def test_clean_streamed_equals_batch_same_configs(seed):
    """Equivalence is untouched by the hardening (chaos configs)."""
    x = dip_signal(n=8000, seed=seed)
    batch = detect_stalls(normalize(x, NORM), CLOCK / RATE, DET)
    report = profile(
        [x[begin : begin + 1024] for begin in range(0, len(x), 1024)]
    )
    assert len(report.stalls) == len(batch)
    for got, want in zip(report.stalls, batch):
        assert got.begin_sample == pytest.approx(want.begin_sample)
        assert got.end_sample == pytest.approx(want.end_sample)
        assert not got.low_confidence
    assert report.quality is None


def test_dropouts_alone_lose_few_misses():
    """2% dropout can only erase the stalls it actually hit."""
    x = dip_signal(seed=11)
    clean = profile([x])
    impaired = FaultInjector([DropoutFault(rate=0.02)], seed=11).apply(x)
    report = profile(iter_chunks(impaired, chunk_samples=2048))
    assert report.miss_count <= clean.miss_count
    lost = clean.miss_count - report.miss_count
    # each dropout run can destroy at most ~2 stalls (one per edge)
    assert lost <= 2 * len(impaired.gaps) + 2
