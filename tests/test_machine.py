"""Unit tests for the Machine assembly and run loop."""

import numpy as np
import pytest

from repro.devices import samsung, sesc
from repro.sim.isa import alu, load
from repro.sim.machine import Machine, SimulationResult, simulate
from repro.workloads.base import StreamWorkload


def tiny_workload(n_loads=4):
    def factory(config):
        for k in range(200):
            yield alu(0x100 + 4 * (k % 8))
        for k in range(n_loads):
            yield load(0x100, 0x100_0000 + k * 4096, dep=0)
            for j in range(40):
                yield alu(0x120 + 4 * (j % 8))

    return StreamWorkload("tiny", factory, {0: "all"})


class TestMachine:
    def test_run_returns_result(self):
        result = Machine(sesc()).run(tiny_workload())
        assert isinstance(result, SimulationResult)
        assert len(result.power_trace) > 0
        assert result.ground_truth.total_instructions == 200 + 4 * 41

    def test_misses_counted(self):
        result = Machine(sesc()).run(tiny_workload(6))
        loads = [m for m in result.ground_truth.misses if m.kind == "load"]
        assert len(loads) == 6

    def test_stats_keys(self):
        stats = Machine(sesc()).run(tiny_workload()).stats
        for key in ("llc_misses", "memory_accesses", "llc_miss_rate", "prefetches"):
            assert key in stats

    def test_prefetch_stat_nonzero_only_with_prefetcher(self):
        plain = Machine(sesc()).run(tiny_workload()).stats["prefetches"]
        assert plain == 0.0
        pf = Machine(samsung()).run(tiny_workload()).stats
        assert pf["prefetches"] >= 0.0

    def test_duration_seconds(self):
        result = Machine(sesc()).run(tiny_workload())
        expected = result.ground_truth.total_cycles / result.config.clock_hz
        assert result.duration_seconds == pytest.approx(expected)

    def test_sample_period(self):
        result = Machine(sesc()).run(tiny_workload())
        assert result.sample_period_cycles == 20

    def test_power_trace_covers_run(self):
        result = Machine(sesc()).run(tiny_workload())
        nbins = -(-result.ground_truth.total_cycles // 20)
        assert len(result.power_trace) == nbins

    def test_reset_restores_cold_caches(self):
        machine = Machine(sesc())
        first = machine.run(tiny_workload())
        machine.reset()
        second = machine.run(tiny_workload())
        assert first.ground_truth.miss_count() == second.ground_truth.miss_count()

    def test_without_reset_caches_stay_warm(self):
        machine = Machine(sesc())
        machine.run(tiny_workload())
        warm = machine.run(tiny_workload())
        assert warm.ground_truth.miss_count() == 0

    def test_accepts_plain_iterable(self):
        instrs = [alu(0x100 + 4 * k) for k in range(32)]
        result = Machine(sesc()).run(instrs)
        assert result.ground_truth.total_instructions == 32

    def test_simulate_convenience(self):
        result = simulate(tiny_workload(), sesc(), seed=1)
        assert result.config.name == "sesc"

    def test_same_seed_reproducible(self):
        a = simulate(tiny_workload(), sesc(), seed=5)
        b = simulate(tiny_workload(), sesc(), seed=5)
        np.testing.assert_array_equal(a.power_trace, b.power_trace)
        assert a.ground_truth.total_cycles == b.ground_truth.total_cycles

    def test_region_names_from_workload(self):
        result = simulate(tiny_workload(), sesc())
        assert result.ground_truth.region_names == {0: "all"}
