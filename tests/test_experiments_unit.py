"""Unit tests for the experiment drivers (fast paths only)."""

import numpy as np
import pytest

from repro.devices import olimex, sesc
from repro.experiments.runner import (
    ExperimentRun,
    microbenchmark_window,
    run_device,
    run_simulator,
    window_cycles,
)
from repro.experiments.tables import (
    DEVICE_ORDER,
    MICRO_GRID,
    Table2Row,
    Table3Row,
    Table4Row,
    format_table2,
    format_table3,
    format_table4,
    table1_rows,
)
from repro.workloads import Microbenchmark


@pytest.fixture(scope="module")
def sim_run():
    workload = Microbenchmark(
        total_misses=48, consecutive_misses=4, blank_iterations=6000
    )
    return run_simulator(workload, config=sesc()), workload


@pytest.fixture(scope="module")
def dev_run():
    workload = Microbenchmark(
        total_misses=48, consecutive_misses=4, blank_iterations=6000
    )
    return run_device(workload, olimex(), bandwidth_hz=40e6), workload


class TestRunner:
    def test_simulator_run_shape(self, sim_run):
        run, _ = sim_run
        assert isinstance(run, ExperimentRun)
        assert run.capture is None
        assert len(run.signal) == len(run.result.power_trace)
        assert run.report.miss_count > 0

    def test_device_run_has_capture(self, dev_run):
        run, _ = dev_run
        assert run.capture is not None
        assert run.capture.bandwidth_hz == 40e6
        assert run.sample_period_cycles == pytest.approx(
            run.result.config.clock_hz / 40e6
        )

    def test_microbenchmark_window_counts(self, dev_run):
        run, workload = dev_run
        report, window = microbenchmark_window(run)
        assert abs(report.miss_count - workload.total_misses) <= 2
        assert window.end_sample > window.begin_sample

    def test_window_cycles_conversion(self, dev_run):
        run, _ = dev_run
        _, window = microbenchmark_window(run)
        lo, hi = window_cycles(run, window)
        assert lo == pytest.approx(window.begin_sample * run.sample_period_cycles)
        assert hi > lo

    def test_device_seed_changes_noise(self):
        workload = Microbenchmark(
            total_misses=16, consecutive_misses=4, blank_iterations=3000
        )
        a = run_device(workload, olimex(), seed=0)
        b = run_device(workload, olimex(), seed=1)
        assert not np.array_equal(a.signal, b.signal)


class TestTableHelpers:
    def test_table1_covers_devices(self):
        rows = table1_rows()
        assert [r.device for r in rows] == list(DEVICE_ORDER)
        by_dev = {r.device: r for r in rows}
        assert by_dev["alcatel"].llc_bytes > by_dev["olimex"].llc_bytes

    def test_micro_grid_matches_paper(self):
        assert MICRO_GRID == ((256, 1), (256, 5), (1024, 10), (4096, 50))

    def test_format_table2_layout(self):
        rows = [
            Table2Row(256, 5, "olimex", 256, 255, 0.9961),
            Table2Row(256, 5, "samsung", 256, 250, 0.9766),
        ]
        text = format_table2(rows)
        lines = text.splitlines()
        assert "olimex" in lines[0] and "samsung" in lines[0]
        assert "99.61%" in text and "97.66%" in text

    def test_format_table3_layout(self):
        rows = [Table3Row("mcf", 600, 570, 0.95, 0.991)]
        text = format_table3(rows)
        assert "mcf" in text
        assert "95.00" in text
        assert "99.10" in text

    def test_format_table4_layout_and_average(self):
        rows = [
            Table4Row("mcf", "olimex", 600, 3.28, 2),
            Table4Row("mcf", "alcatel", 300, 5.22, 1),
            Table4Row("vpr", "olimex", 200, 0.6, 0),
            Table4Row("vpr", "alcatel", 5, 0.09, 0),
        ]
        text = format_table4(rows)
        assert "Average" in text
        # Average of olimex counts: (600 + 200) / 2 = 400.
        assert "400.0" in text
