"""Fast smoke tests for every figure driver.

The benches run the drivers at paper scale and assert the paper's
claims; these tests run them at reduced scale and defend the drivers'
*contracts* (shapes, annotation keys, basic sanity) so a refactor
cannot silently break a figure between bench runs.
"""

import numpy as np
import pytest

from repro.experiments import figures


class TestFig1:
    def test_contract(self):
        fig = figures.fig1_stall_dip(tm=24)
        assert len(fig.signal) > 50
        assert fig.moving_avg is not None and len(fig.moving_avg) == len(fig.signal)
        for key in ("stall_begin_sample", "stall_end_sample", "stall_cycles",
                    "stall_seconds"):
            assert key in fig.annotations
        assert fig.annotations["stall_end_sample"] > fig.annotations["stall_begin_sample"]


class TestFig2AndFig4:
    def test_fig2_contract(self):
        hit, miss = figures.fig2_hit_vs_miss()
        for fig in (hit, miss):
            assert fig.sample_rate_hz > 0
            assert len(fig.signal) > 0
        assert miss.annotations["memory_stalls"] > hit.annotations["memory_stalls"]

    def test_fig4_contract(self):
        hit, miss = figures.fig4_physical_hit_vs_miss()
        assert miss.annotations["detected_stalls"] > hit.annotations["detected_stalls"]
        assert miss.annotations["mean_stall_ns"] > 0


class TestFig5:
    def test_contract(self):
        r = figures.fig5_refresh(tm=600)
        assert r.refresh_stalls >= 1
        assert r.mean_duration_us > 0.5
        assert len(r.excerpt.signal) > 0


class TestFig7AndFig8:
    def test_fig7_contract(self):
        r = figures.fig7_microbenchmark_signal(tm=40, cm=5)
        assert r.expected == 40
        assert abs(r.detected_in_window - 40) <= 2
        assert len(r.zoom.signal) < len(r.overview.signal)

    def test_fig8_contract(self):
        sim, dev = figures.fig8_sim_vs_device(tm=40, cm=5)
        assert sim.expected == dev.expected == 40
        assert abs(sim.detected_in_window - dev.detected_in_window) <= 3


class TestFig11:
    def test_contract(self):
        results = figures.fig11_latency_histograms(
            benchmark="twolf", devices=("olimex",), scale=1.0
        )
        r = results[0]
        assert r.device == "olimex"
        assert len(r.edges_cycles) == len(r.counts) + 1
        assert r.counts.sum() > 0
        assert r.p99_cycles >= r.mean_cycles


class TestFig12:
    def test_contract(self):
        points = figures.fig12_bandwidth_sweep(
            benchmark="twolf",
            devices=("olimex",),
            bandwidths_hz=(20e6, 80e6),
            scale=1.0,
        )
        assert len(points) == 2
        assert {p.bandwidth_hz for p in points} == {20e6, 80e6}
        for p in points:
            assert p.detected_stalls >= 0
            assert p.total_stall_cycles >= p.mean_stall_cycles


class TestFig13:
    def test_contract(self):
        runs = figures.fig13_boot_profile(seeds=(0,), scale=0.3)
        r = runs[0]
        assert len(r.time_ms) == len(r.miss_rate)
        assert r.total_misses > 0
        assert np.all(r.miss_rate >= 0)


class TestFig14:
    def test_contract(self):
        r = figures.fig14_parser_spectrogram(scale=0.6)
        assert r.spectrogram.n_frames > 5
        assert len(r.timeline.segments) >= 1
        assert len(r.regions_found) >= 2
