"""Unit tests for the span tracer (`repro.obs.trace`)."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.obs import set_obs_enabled
from repro.obs.trace import DEFAULT_MAX_SPANS, Tracer, _NULL_SPAN


@pytest.fixture()
def obs_on():
    """Enable observability for one test, restoring the prior state."""
    previous = set_obs_enabled(True)
    yield
    set_obs_enabled(previous)


@pytest.fixture()
def tracer():
    """A private tracer so tests never touch the global one."""
    return Tracer()


class TestDisabledPath:
    def test_span_returns_shared_null_span(self, tracer):
        previous = set_obs_enabled(False)
        try:
            span = tracer.span("x", samples=3)
            assert span is _NULL_SPAN
            with span as s:
                s.set_attr(anything=1)
            assert tracer.records() == []
        finally:
            set_obs_enabled(previous)

    def test_wrap_is_late_bound(self, tracer):
        """A decorator applied while disabled still traces once enabled."""
        previous = set_obs_enabled(False)
        try:

            @tracer.wrap("stage")
            def stage(x):
                return x + 1

            assert stage(1) == 2
            assert tracer.records() == []
            set_obs_enabled(True)
            assert stage(2) == 3
            assert [r.name for r in tracer.records()] == ["stage"]
        finally:
            set_obs_enabled(previous)


class TestRecording:
    def test_nesting_parent_and_depth(self, obs_on, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.by_name("inner")[0], tracer.by_name("outer")[0]
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert outer.parent_id is None
        assert outer.depth == 0
        # Child completes first but is contained in the parent's window.
        assert outer.begin_s <= inner.begin_s
        assert inner.end_s <= outer.end_s
        assert inner.duration_s >= 0.0

    def test_sibling_spans_share_parent(self, obs_on, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        root = tracer.by_name("root")[0]
        assert tracer.by_name("a")[0].parent_id == root.span_id
        assert tracer.by_name("b")[0].parent_id == root.span_id
        assert tracer.by_name("b")[0].depth == 1

    def test_attrs_cleaned_and_updatable(self, obs_on, tracer):
        class Weird:
            def __str__(self):
                return "weird"

        with tracer.span("s", samples=4, tag=Weird()) as span:
            span.set_attr(stalls=2)
        record = tracer.records()[0]
        assert record.attrs == {"samples": 4, "tag": "weird", "stalls": 2}

    def test_threads_get_independent_stacks(self, obs_on, tracer):
        ready = threading.Barrier(2)

        def work(name):
            ready.wait()
            with tracer.span(name):
                pass

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = tracer.records()
        assert len(records) == 2
        # Both are roots: neither thread sees the other's open span.
        assert all(r.parent_id is None and r.depth == 0 for r in records)
        assert len({r.thread_id for r in records}) == 2

    def test_max_spans_drops_not_grows(self, obs_on):
        small = Tracer(max_spans=3)
        for i in range(5):
            with small.span(f"s{i}"):
                pass
        assert len(small.records()) == 3
        assert small.dropped == 2
        assert small.to_payload()["dropped"] == 2

    def test_reset_clears_everything(self, obs_on, tracer):
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.records() == []
        assert tracer.dropped == 0
        with tracer.span("again"):
            pass
        assert tracer.records()[0].span_id == 0

    def test_rejects_bad_max_spans(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)
        assert Tracer().max_spans == DEFAULT_MAX_SPANS


class TestExporters:
    def test_json_round_trip(self, obs_on, tracer):
        with tracer.span("profile", samples=10):
            with tracer.span("detect"):
                pass
        payload = json.loads(tracer.export_json())
        assert payload["format"] == "repro-obs-trace"
        assert payload["version"] == 2
        assert payload["pid"] == os.getpid()
        assert payload == tracer.to_payload()
        rows = {row["name"]: row for row in payload["spans"]}
        assert rows["detect"]["parent_id"] == rows["profile"]["span_id"]
        assert rows["profile"]["attrs"] == {"samples": 10}
        assert rows["profile"]["duration_s"] == pytest.approx(
            rows["profile"]["end_s"] - rows["profile"]["begin_s"]
        )

    def test_chrome_export_shape(self, obs_on, tracer):
        with tracer.span("sim.run", cycles=100):
            pass
        doc = json.loads(tracer.export_chrome())
        (event,) = doc["traceEvents"]
        assert event["name"] == "sim.run"
        assert event["ph"] == "X"
        assert event["pid"] == os.getpid()
        assert event["args"] == {"cycles": 100}
        record = tracer.records()[0]
        assert event["ts"] == pytest.approx(record.begin_s * 1e6)
        assert event["dur"] == pytest.approx(record.duration_s * 1e6)

    def test_write_both_formats(self, obs_on, tracer, tmp_path):
        with tracer.span("s"):
            pass
        json_path = tmp_path / "spans.json"
        chrome_path = tmp_path / "chrome.json"
        tracer.write(str(json_path), fmt="json")
        tracer.write(str(chrome_path), fmt="chrome")
        assert json.loads(json_path.read_text())["spans"]
        assert json.loads(chrome_path.read_text())["traceEvents"]
        with pytest.raises(ValueError):
            tracer.write(str(json_path), fmt="xml")

    def test_aggregate_rollup(self, obs_on, tracer):
        for _ in range(3):
            with tracer.span("detect"):
                pass
        agg = tracer.aggregate()
        assert agg["detect"]["count"] == 3
        assert agg["detect"]["mean_s"] == pytest.approx(
            agg["detect"]["total_s"] / 3
        )
