"""Unit tests for the EM signal chain."""

import numpy as np
import pytest

from repro.emsignal.apparatus import Apparatus, measure
from repro.emsignal.channel import Channel, ChannelConfig
from repro.emsignal.dsp import (
    db_to_linear_power,
    lowpass,
    resample_to_rate,
    rms,
    stft_magnitude,
)
from repro.emsignal.memprobe import MemProbeConfig, memory_probe_signal
from repro.emsignal.receiver import Capture, MHZ, PAPER_BANDWIDTHS_HZ, Receiver
from repro.emsignal.spectrogram import compute_spectrogram
from repro.emsignal.synth import EmissionModel, emitted_envelope
from repro.sim.config import MemoryConfig
from repro.sim.trace import DLOAD, GroundTruth, MissRecord


class TestDsp:
    def test_resample_halves_length(self):
        x = np.sin(np.linspace(0, 40 * np.pi, 1000))
        y = resample_to_rate(x, 100.0, 50.0)
        assert len(y) == pytest.approx(500, abs=2)

    def test_resample_identity(self):
        x = np.arange(10.0)
        np.testing.assert_array_equal(resample_to_rate(x, 5.0, 5.0), x)

    def test_resample_empty(self):
        assert resample_to_rate(np.array([]), 10, 5).size == 0

    def test_resample_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            resample_to_rate(np.zeros(5), 0.0, 1.0)

    def test_lowpass_attenuates_high_frequency(self):
        t = np.arange(4000) / 100.0
        lo = np.sin(2 * np.pi * 1.0 * t)
        hi = np.sin(2 * np.pi * 40.0 * t)
        y = lowpass(lo + hi, cutoff_hz=5.0, rate_hz=100.0)
        # The 40 Hz component is essentially gone, 1 Hz preserved.
        assert rms(y) == pytest.approx(rms(lo), rel=0.1)

    def test_lowpass_above_nyquist_is_identity(self):
        x = np.random.default_rng(0).random(100)
        np.testing.assert_array_equal(lowpass(x, 60.0, 100.0), x)

    def test_lowpass_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lowpass(np.zeros(10), 0.0, 1.0)

    def test_stft_shape(self):
        x = np.random.default_rng(0).random(2048)
        freqs, times, mag = stft_magnitude(x, 100.0, window_samples=128)
        assert mag.shape == (len(freqs), len(times))
        assert mag.min() >= 0

    def test_stft_detects_tone(self):
        t = np.arange(4096) / 100.0
        x = np.sin(2 * np.pi * 20.0 * t)
        freqs, _, mag = stft_magnitude(x, 100.0, window_samples=256)
        peak = freqs[np.argmax(mag.mean(axis=1))]
        assert peak == pytest.approx(20.0, abs=1.0)

    def test_stft_rejects_bad_window(self):
        with pytest.raises(ValueError):
            stft_magnitude(np.zeros(100), 1.0, window_samples=4)

    def test_rms(self):
        assert rms(np.array([3.0, -3.0])) == pytest.approx(3.0)
        assert rms(np.array([])) == 0.0

    def test_db_to_linear(self):
        assert db_to_linear_power(10.0) == pytest.approx(10.0)
        assert db_to_linear_power(0.0) == pytest.approx(1.0)


class TestSynth:
    def test_linear_by_default_shape(self):
        power = np.array([0.1, 0.5, 1.0])
        env = emitted_envelope(power, EmissionModel(compression=1.0))
        np.testing.assert_allclose(env, power)

    def test_compression_flattens_top(self):
        power = np.array([0.25, 1.0])
        env = emitted_envelope(power, EmissionModel(compression=0.5))
        assert env[1] / env[0] < power[1] / power[0]

    def test_floor_added(self):
        env = emitted_envelope(np.zeros(4), EmissionModel(floor=0.2))
        np.testing.assert_allclose(env, 0.2)

    def test_monotone(self):
        power = np.linspace(0, 1, 50)
        env = emitted_envelope(power)
        assert np.all(np.diff(env) >= 0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            emitted_envelope(np.array([-0.1]))

    def test_model_validation(self):
        with pytest.raises(ValueError):
            EmissionModel(gain=0.0)
        with pytest.raises(ValueError):
            EmissionModel(compression=3.0)


class TestChannel:
    def square(self, n=4000):
        x = np.full(n, 0.9)
        x[::50] = 0.1
        return x

    def test_gain_applied(self):
        clean = ChannelConfig(probe_gain=3.0, snr_db=80.0, drift_amplitude=0.0)
        y = Channel(clean).apply(self.square(), 50e6)
        assert np.median(y) == pytest.approx(2.7, rel=0.01)

    def test_noise_scales_with_snr(self):
        lo = Channel(ChannelConfig(snr_db=10.0)).apply(self.square(), 50e6)
        hi = Channel(ChannelConfig(snr_db=40.0)).apply(self.square(), 50e6)
        resid_lo = np.std(lo[1:49] - np.median(lo))
        resid_hi = np.std(hi[1:49] - np.median(hi))
        assert resid_lo > 3 * resid_hi

    def test_output_non_negative(self):
        y = Channel(ChannelConfig(snr_db=0.0)).apply(self.square(), 50e6)
        assert y.min() >= 0.0

    def test_drift_modulates_slowly(self):
        cfg = ChannelConfig(snr_db=80.0, drift_amplitude=0.2, drift_period_s=4e-5)
        y = Channel(cfg).apply(np.full(4000, 1.0), 50e6)
        assert y.max() > 1.1
        assert y.min() < 0.9

    def test_deterministic_per_seed(self):
        cfg = ChannelConfig(seed=5)
        a = Channel(cfg).apply(self.square(), 50e6)
        b = Channel(cfg).apply(self.square(), 50e6)
        np.testing.assert_array_equal(a, b)

    def test_empty_signal(self):
        assert Channel().apply(np.array([]), 50e6).size == 0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Channel().apply(self.square(), 0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChannelConfig(probe_gain=0.0)
        with pytest.raises(ValueError):
            ChannelConfig(drift_amplitude=1.5)
        with pytest.raises(ValueError):
            ChannelConfig(drift_period_s=0.0)


class TestReceiver:
    def test_capture_rate_equals_bandwidth(self):
        env = np.random.default_rng(0).random(5000)
        cap = Receiver(25 * MHZ).capture(env, rate_hz=50e6, clock_hz=1e9)
        assert cap.sample_rate_hz == 25 * MHZ
        assert len(cap.magnitude) == pytest.approx(2500, abs=5)

    def test_sample_period_cycles(self):
        cap = Capture(np.zeros(10), 40 * MHZ, 1.008e9, 40 * MHZ)
        assert cap.sample_period_cycles == pytest.approx(25.2)

    def test_duration(self):
        cap = Capture(np.zeros(400), 40 * MHZ, 1e9, 40 * MHZ)
        assert cap.duration_s == pytest.approx(1e-5)

    def test_magnitude_non_negative(self):
        env = np.random.default_rng(0).random(5000) - 0.2
        cap = Receiver(10 * MHZ).capture(np.maximum(env, 0), 50e6, 1e9)
        assert cap.magnitude.min() >= 0.0

    def test_narrow_bandwidth_smears_dips(self):
        env = np.full(5000, 0.9)
        env[2500:2504] = 0.1  # a 4-sample dip at 50 MS/s
        wide = Receiver(50 * MHZ).capture(env, 50e6, 1e9).magnitude
        narrow = Receiver(5 * MHZ).capture(env, 50e6, 1e9).magnitude
        assert narrow.min() > wide.min()  # dip depth reduced

    def test_region_names_forwarded(self):
        cap = Receiver(40 * MHZ).capture(
            np.zeros(100), 50e6, 1e9, region_names={1: "x"}
        )
        assert cap.region_names == {1: "x"}

    def test_paper_bandwidths_constant(self):
        assert [b / MHZ for b in PAPER_BANDWIDTHS_HZ] == [20, 40, 60, 80, 160]

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            Receiver(0)


class TestApparatus:
    def test_measure_end_to_end(self, sesc_run):
        cap = measure(sesc_run, bandwidth_hz=40 * MHZ)
        assert isinstance(cap, Capture)
        assert cap.clock_hz == sesc_run.config.clock_hz
        assert cap.bandwidth_hz == 40 * MHZ
        assert len(cap.magnitude) > 0

    def test_apparatus_configurable(self, sesc_run):
        app = Apparatus(
            emission=EmissionModel(gain=2.0),
            channel=ChannelConfig(snr_db=60.0),
            bandwidth_hz=20 * MHZ,
        )
        cap = app.measure(sesc_run)
        assert cap.sample_rate_hz == 20 * MHZ


class TestMemProbe:
    def make_truth(self):
        misses = [
            MissRecord(0, DLOAD, 0x1000, 100, 380, stall_id=0),
            MissRecord(1, DLOAD, 0x2000, 5_000, 5_280, stall_id=1),
        ]
        return GroundTruth(misses=misses, total_cycles=200_000)

    def test_bursts_at_miss_service(self):
        cfg = MemProbeConfig(dma_rate_per_s=0.0)
        sig = memory_probe_signal(
            self.make_truth(), MemoryConfig(refresh_enabled=False), 1e9, 20, cfg
        )
        # Activity right before each ready_cycle.
        assert sig[int(370 / 20)] > 0.5
        assert sig[int(5_270 / 20)] > 0.5
        # Quiet elsewhere.
        assert sig[int(100_000 / 20)] == pytest.approx(cfg.idle_level)

    def test_refresh_bursts_present(self):
        cfg = MemProbeConfig(dma_rate_per_s=0.0)
        mem = MemoryConfig(refresh_interval=50_000, refresh_duration=2_000)
        sig = memory_probe_signal(self.make_truth(), mem, 1e9, 20, cfg)
        assert sig[int(50_500 / 20)] > 0.5

    def test_dma_adds_unrelated_activity(self):
        quiet = memory_probe_signal(
            self.make_truth(),
            MemoryConfig(refresh_enabled=False),
            1e9,
            20,
            MemProbeConfig(dma_rate_per_s=0.0),
        )
        busy = memory_probe_signal(
            self.make_truth(),
            MemoryConfig(refresh_enabled=False),
            1e9,
            20,
            MemProbeConfig(dma_rate_per_s=500_000.0, seed=1),
        )
        assert busy.sum() > quiet.sum()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MemProbeConfig(burst_level=0.01, idle_level=0.5)


class TestSpectrogram:
    def test_dc_zeroed(self):
        x = 5.0 + np.random.default_rng(0).random(2048)
        spec = compute_spectrogram(x, 100.0, window_samples=128)
        assert np.all(spec.magnitude[0, :] == 0.0)

    def test_axes_consistent(self):
        spec = compute_spectrogram(np.random.default_rng(0).random(2048), 100.0, 128)
        assert spec.magnitude.shape == (len(spec.freqs_hz), spec.n_frames)

    def test_mean_spectrum_shape(self):
        spec = compute_spectrogram(np.random.default_rng(0).random(2048), 100.0, 128)
        assert spec.mean_spectrum().shape == (len(spec.freqs_hz),)

    def test_frame_time_bounds(self):
        spec = compute_spectrogram(np.random.default_rng(0).random(2048), 100.0, 128)
        lo, hi = spec.frame_time_bounds(1)
        assert hi > lo


class TestInterference:
    def square(self, n=4000):
        x = np.full(n, 0.9)
        x[::50] = 0.1
        return x

    def test_zero_level_adds_nothing(self):
        clean = ChannelConfig(snr_db=80.0, drift_amplitude=0.0, seed=2)
        with_zero = ChannelConfig(
            snr_db=80.0, drift_amplitude=0.0, interference_level=0.0, seed=2
        )
        a = Channel(clean).apply(self.square(), 50e6)
        b = Channel(with_zero).apply(self.square(), 50e6)
        np.testing.assert_array_equal(a, b)

    def test_interference_raises_dip_floors(self):
        cfg = ChannelConfig(
            snr_db=80.0, drift_amplitude=0.0,
            interference_level=0.5, interference_duty=0.9, seed=2,
        )
        y = Channel(cfg).apply(self.square(), 50e6)
        # Many dip samples are lifted by interference bursts.
        dips = y[::50]
        assert np.median(dips) > 0.2

    def test_duty_controls_active_fraction(self):
        def active_fraction(duty):
            cfg = ChannelConfig(
                snr_db=80.0, drift_amplitude=0.0,
                interference_level=1.0, interference_duty=duty, seed=3,
            )
            y = Channel(cfg).apply(np.full(20_000, 0.5), 50e6)
            return float(np.mean(y > 0.8))

        assert active_fraction(0.6) > 2 * active_fraction(0.1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChannelConfig(interference_level=-0.1)
        with pytest.raises(ValueError):
            ChannelConfig(interference_duty=1.5)
        with pytest.raises(ValueError):
            ChannelConfig(interference_burst_s=0.0)
