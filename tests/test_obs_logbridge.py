"""The stdlib-logging bridge: namespacing, verbosity mapping, silence."""

import io
import logging

import pytest

from repro import obs
from repro.obs.logbridge import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
    level_for_verbosity,
)


@pytest.fixture()
def clean_repro_logger():
    """Strip CLI handlers after each test; keep the NullHandler."""
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    yield logger
    logger.handlers = [
        h for h in logger.handlers
        if not getattr(h, "_repro_obs_handler", False)
    ]
    logger.setLevel(logging.NOTSET)


class TestGetLogger:
    def test_default_is_the_repro_root(self):
        assert get_logger().name == "repro"

    def test_names_are_namespaced(self):
        assert get_logger("obs").name == "repro.obs"

    def test_already_namespaced_passes_through(self):
        assert get_logger("repro.core").name == "repro.core"
        assert get_logger("repro").name == "repro"


class TestLevelForVerbosity:
    @pytest.mark.parametrize(
        "verbosity,level",
        [
            (-5, logging.ERROR),
            (-1, logging.ERROR),  # --quiet
            (0, logging.WARNING),  # default
            (1, logging.INFO),  # -v
            (2, logging.DEBUG),  # -vv
            (7, logging.DEBUG),
        ],
    )
    def test_mapping(self, verbosity, level):
        assert level_for_verbosity(verbosity) == level

    def test_quiet_beats_verbose_like_the_cli(self):
        # The CLI computes `-1 if quiet else verbose`; --quiet must
        # land on ERROR no matter how many -v were also given.
        quiet_verbosity = -1
        assert level_for_verbosity(quiet_verbosity) == logging.ERROR
        assert level_for_verbosity(quiet_verbosity) > level_for_verbosity(2)


class TestConfigureLogging:
    def test_attaches_one_handler(self, clean_repro_logger):
        stream = io.StringIO()
        logger = configure_logging(1, stream=stream)
        handlers = [
            h for h in logger.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(handlers) == 1
        assert logger.level == logging.INFO

    def test_idempotent_relevels_instead_of_stacking(self, clean_repro_logger):
        stream = io.StringIO()
        configure_logging(1, stream=stream)
        logger = configure_logging(2, stream=stream)
        handlers = [
            h for h in logger.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(handlers) == 1
        assert logger.level == logging.DEBUG

    def test_verbose_emits_info(self, clean_repro_logger):
        stream = io.StringIO()
        configure_logging(1, stream=stream)
        get_logger("test").info("pipeline started")
        assert "pipeline started" in stream.getvalue()

    def test_default_suppresses_info(self, clean_repro_logger):
        stream = io.StringIO()
        configure_logging(0, stream=stream)
        get_logger("test").info("chatter")
        get_logger("test").warning("actual problem")
        output = stream.getvalue()
        assert "chatter" not in output
        assert "actual problem" in output

    def test_quiet_suppresses_warnings(self, clean_repro_logger):
        stream = io.StringIO()
        configure_logging(-1, stream=stream)
        get_logger("test").warning("warn")
        get_logger("test").error("boom")
        output = stream.getvalue()
        assert "warn" not in output
        assert "boom" in output


class TestBridgeSilentByDefault:
    """Un-configured (obs off, no CLI), the bridge must emit nothing."""

    def test_library_logging_is_a_no_op(self, clean_repro_logger, capsys):
        previous = obs.set_obs_enabled(False)
        try:
            assert obs.obs_enabled() is False
            get_logger("core.detect").warning("library chatter")
        finally:
            obs.set_obs_enabled(previous)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_null_handler_installed_on_import(self):
        logger = logging.getLogger(ROOT_LOGGER_NAME)
        assert any(
            isinstance(h, logging.NullHandler) for h in logger.handlers
        )


class TestConcurrentLogging:
    """The bridge under parallel producers: one handler, intact lines."""

    N_THREADS = 6
    PER_THREAD = 50

    def test_parallel_configure_stacks_no_extra_handlers(
        self, clean_repro_logger
    ):
        import threading

        stream = io.StringIO()
        barrier = threading.Barrier(self.N_THREADS)

        def reconfigure():
            barrier.wait()
            for _ in range(20):
                configure_logging(1, stream=stream)

        threads = [
            threading.Thread(target=reconfigure)
            for _ in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        bridged = [
            h for h in clean_repro_logger.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        # Concurrent reconfiguration may race the first install, but
        # must never grow without bound - and the logger still works.
        assert 1 <= len(bridged) <= self.N_THREADS
        get_logger("test").info("after the storm")
        assert "after the storm" in stream.getvalue()

    def test_lines_from_four_plus_threads_arrive_intact(
        self, clean_repro_logger
    ):
        import threading

        stream = io.StringIO()
        configure_logging(1, stream=stream)
        barrier = threading.Barrier(self.N_THREADS)

        def chatter(worker):
            logger = get_logger(f"worker{worker}")
            barrier.wait()
            for index in range(self.PER_THREAD):
                logger.info("w%d-%d", worker, index)

        threads = [
            threading.Thread(target=chatter, args=(n,))
            for n in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == self.N_THREADS * self.PER_THREAD
        # Every expected message appears exactly once, untorn.
        for worker in range(self.N_THREADS):
            for index in range(self.PER_THREAD):
                needle = f"w{worker}-{index}"
                assert sum(needle in l for l in lines) >= 1
        # No interleaved garbage: each line carries exactly one record.
        assert all(l.count("repro.worker") == 1 for l in lines)
