"""Unit tests for each emlint rule: positive, negative, and suppressed
snippets, plus the engine's suppression parsing and the JSON reporter
shape."""

import json

import pytest

from repro.devtools.engine import lint_source
from repro.devtools.reporters import JSON_FORMAT_VERSION, render_json, render_text
from repro.devtools.rules import (
    ConfigImmutabilityRule,
    DeterminismRule,
    FloatEqualityRule,
    MutableDefaultArgRule,
    ObsEventSchemaRule,
    SilentExceptRule,
    UnitSafetyRule,
    rules_by_name,
)


def findings(source, rule_cls):
    return lint_source(source, rules=[rule_cls()]).findings


def names(source, rule_cls):
    return [f.rule for f in findings(source, rule_cls)]


# -- unit-safety -------------------------------------------------------------


class TestUnitSafety:
    def test_flags_addition_across_domains(self):
        found = findings("x = duration_cycles + gap_samples\n", UnitSafetyRule)
        assert len(found) == 1
        assert "cycles" in found[0].message and "samples" in found[0].message

    def test_flags_subtraction_of_seconds_from_cycles(self):
        assert names("d = end_cycle - start_s\n", UnitSafetyRule)

    def test_flags_comparison_across_domains(self):
        assert names(
            "ok = duration_samples < cfg.min_duration_cycles\n", UnitSafetyRule
        )

    def test_flags_attribute_operands(self):
        assert names(
            "y = cfg.min_duration_cycles - cfg.merge_gap_samples\n",
            UnitSafetyRule,
        )

    def test_allows_same_domain(self):
        assert not names("d = end_cycle - begin_cycle\n", UnitSafetyRule)
        assert not names(
            "ok = duration_cycles >= cfg.refresh_min_cycles\n", UnitSafetyRule
        )

    def test_allows_multiplicative_conversion(self):
        assert not names(
            "c = duration_samples * period_cycles\n", UnitSafetyRule
        )

    def test_allows_explicit_conversion_call(self):
        assert not names(
            "t = to_cycles(duration_samples) + begin_cycle\n", UnitSafetyRule
        )

    def test_allows_unitless_operands(self):
        assert not names("n = end - start\n", UnitSafetyRule)

    def test_bare_single_letter_not_a_unit(self):
        # `s` is a loop variable, not seconds.
        assert not names("x = s + begin_cycle\n", UnitSafetyRule)

    def test_distinguishes_time_scales(self):
        assert names("t = delay_us + delay_ms\n", UnitSafetyRule)

    def test_nested_additions_propagate_units(self):
        assert names(
            "t = (begin_cycle + end_cycle) - total_samples\n", UnitSafetyRule
        )


# -- determinism -------------------------------------------------------------


class TestDeterminism:
    def test_flags_global_numpy_rng(self):
        src = "import numpy as np\nx = np.random.rand(10)\n"
        assert names(src, DeterminismRule)

    def test_flags_numpy_seed(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert names(src, DeterminismRule)

    def test_flags_stdlib_random_import(self):
        assert names("import random\n", DeterminismRule)
        assert names("from random import choice\n", DeterminismRule)

    def test_flags_from_numpy_random_global_fn(self):
        assert names("from numpy.random import uniform\n", DeterminismRule)

    def test_allows_default_rng_and_generator(self):
        src = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator):\n"
            "    return rng.normal(0.0, 1.0)\n"
            "g = np.random.default_rng(7)\n"
        )
        assert not names(src, DeterminismRule)

    def test_allows_seed_sequence_spawning(self):
        src = "import numpy as np\nss = np.random.SeedSequence(1)\n"
        assert not names(src, DeterminismRule)

    def test_tracks_import_alias(self):
        src = "import numpy.random as npr\nx = npr.standard_normal(3)\n"
        assert names(src, DeterminismRule)

    def test_unrelated_random_attribute_untouched(self):
        # `.random` on a non-numpy object is someone else's business.
        assert not names("x = workload.random.thing\n", DeterminismRule)


# -- config-immutability -----------------------------------------------------


class TestConfigImmutability:
    def test_flags_unfrozen_config_dataclass(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class FooConfig:\n"
            "    x: int = 1\n"
        )
        found = findings(src, ConfigImmutabilityRule)
        assert len(found) == 1
        assert "FooConfig" in found[0].message

    def test_flags_frozen_false(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=False)\n"
            "class FooConfig:\n"
            "    x: int = 1\n"
        )
        assert names(src, ConfigImmutabilityRule)

    def test_allows_frozen_config(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class FooConfig:\n"
            "    x: int = 1\n"
        )
        assert not names(src, ConfigImmutabilityRule)

    def test_non_config_dataclass_unconstrained(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class MissRecord:\n"
            "    addr: int = 0\n"
        )
        assert not names(src, ConfigImmutabilityRule)

    def test_flags_config_mutation(self):
        assert names("cfg.threshold = 0.2\n", ConfigImmutabilityRule)
        assert names(
            "self.config.window_samples = 5\n", ConfigImmutabilityRule
        )
        assert names("detector_config.gap += 1\n", ConfigImmutabilityRule)

    def test_allows_storing_a_config(self):
        # Assigning a config *to* an attribute is construction, not mutation.
        assert not names("self.config = cfg\n", ConfigImmutabilityRule)


# -- float-equality ----------------------------------------------------------


class TestFloatEquality:
    def test_flags_float_literal_comparison(self):
        assert names("ok = scale != 1.0\n", FloatEqualityRule)
        assert names("ok = x == 0.5\n", FloatEqualityRule)

    def test_flags_float_call_operand(self):
        assert names("ok = float(a) == b\n", FloatEqualityRule)

    def test_flags_float_annotated_parameter(self):
        src = "def f(a: float, b):\n    return a == b\n"
        assert names(src, FloatEqualityRule)

    def test_flags_name_assigned_from_float_call(self):
        src = "def f(xs):\n    a = float(xs[0])\n    return a == xs[1]\n"
        assert names(src, FloatEqualityRule)

    def test_allows_integer_comparison(self):
        assert not names("ok = n == 0\n", FloatEqualityRule)
        assert not names("ok = kind == COMPUTE\n", FloatEqualityRule)

    def test_allows_float_inequalities(self):
        assert not names("ok = x <= 0.0\n", FloatEqualityRule)
        assert not names("ok = 0.0 <= frac <= 1.0\n", FloatEqualityRule)


# -- mutable-default-arg -----------------------------------------------------


class TestMutableDefaultArg:
    def test_flags_list_dict_set_literals(self):
        assert names("def f(a=[]):\n    pass\n", MutableDefaultArgRule)
        assert names("def f(a={}):\n    pass\n", MutableDefaultArgRule)
        assert names("def f(a={1}):\n    pass\n", MutableDefaultArgRule)

    def test_flags_factory_calls(self):
        assert names("def f(a=list()):\n    pass\n", MutableDefaultArgRule)
        assert names("def f(a=dict()):\n    pass\n", MutableDefaultArgRule)

    def test_flags_keyword_only_default(self):
        assert names("def f(*, a=[]):\n    pass\n", MutableDefaultArgRule)

    def test_allows_none_and_immutable_defaults(self):
        assert not names(
            "def f(a=None, b=0, c=(), d='x'):\n    pass\n",
            MutableDefaultArgRule,
        )


# -- silent-except -----------------------------------------------------------


class TestSilentExcept:
    def test_flags_bare_except_even_with_real_body(self):
        src = (
            "try:\n"
            "    work()\n"
            "except:\n"
            "    handle()\n"
        )
        assert names(src, SilentExceptRule) == ["silent-except"]

    def test_flags_broad_pass(self):
        src = (
            "try:\n"
            "    work()\n"
            "except Exception:\n"
            "    pass\n"
        )
        assert names(src, SilentExceptRule) == ["silent-except"]

    def test_flags_base_exception_ellipsis(self):
        src = (
            "try:\n"
            "    work()\n"
            "except BaseException:\n"
            "    ...\n"
        )
        assert names(src, SilentExceptRule) == ["silent-except"]

    def test_flags_qualified_broad_pass(self):
        src = (
            "import builtins\n"
            "try:\n"
            "    work()\n"
            "except builtins.Exception:\n"
            "    pass\n"
        )
        assert names(src, SilentExceptRule) == ["silent-except"]

    def test_allows_broad_handler_that_acts(self):
        src = (
            "try:\n"
            "    work()\n"
            "except Exception as exc:\n"
            "    raise RuntimeError('wrapped') from exc\n"
        )
        assert not names(src, SilentExceptRule)

    def test_allows_specific_pass(self):
        src = (
            "try:\n"
            "    work()\n"
            "except FileNotFoundError:\n"
            "    pass\n"
        )
        assert not names(src, SilentExceptRule)

    def test_suppression_comment(self):
        src = (
            "try:\n"
            "    work()\n"
            "except Exception:  # emlint: disable=silent-except\n"
            "    pass\n"
        )
        assert not names(src, SilentExceptRule)


# -- obs-event-schema --------------------------------------------------------


class TestObsEventSchema:
    def test_flags_constructor_without_schema_version(self):
        src = "e = FlightEvent(kind='gap', pos=1.0)\n"
        found = findings(src, ObsEventSchemaRule)
        assert [f.rule for f in found] == ["obs-event-schema"]
        assert "schema_version" in found[0].message

    def test_flags_qualified_constructor(self):
        src = (
            "from repro.obs import flight\n"
            "e = flight.FlightEvent(kind='gap', pos=1.0)\n"
        )
        assert names(src, ObsEventSchemaRule) == ["obs-event-schema"]

    def test_flags_positional_schema_version(self):
        # Positional passing is implicit ordering, not a pinned schema.
        src = "e = FlightEvent(1, 'gap', 2.0)\n"
        assert names(src, ObsEventSchemaRule) == ["obs-event-schema"]

    def test_allows_explicit_keyword(self):
        src = (
            "e = FlightEvent(schema_version=FLIGHT_SCHEMA_VERSION,\n"
            "                kind='gap', pos=1.0)\n"
        )
        assert not names(src, ObsEventSchemaRule)

    def test_allows_kwargs_expansion(self):
        src = "e = FlightEvent(**payload)\n"
        assert not names(src, ObsEventSchemaRule)

    def test_ignores_classmethod_alternates(self):
        src = "e = FlightEvent.from_dict(payload)\n"
        assert not names(src, ObsEventSchemaRule)

    def test_ignores_unrelated_calls(self):
        src = "e = Event(kind='heartbeat')\n"
        assert not names(src, ObsEventSchemaRule)

    def test_repo_sources_are_clean(self):
        # Every real constructor site in the repo pins its version.
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1] / "src"
        for path in sorted(root.rglob("*.py")):
            result = lint_source(
                path.read_text(), rules=[ObsEventSchemaRule()], path=str(path)
            )
            assert not result.findings, result.findings


# -- suppression -------------------------------------------------------------


class TestSuppression:
    def test_trailing_comment_suppresses_named_rule(self):
        src = "ok = scale != 1.0  # emlint: disable=float-equality\n"
        result = lint_source(src, rules=[FloatEqualityRule()])
        assert result.findings == []
        assert result.suppressed_count == 1

    def test_standalone_comment_covers_next_line(self):
        src = (
            "# emlint: disable=float-equality\n"
            "ok = scale != 1.0\n"
        )
        result = lint_source(src, rules=[FloatEqualityRule()])
        assert result.findings == []
        assert result.suppressed_count == 1

    def test_disable_all(self):
        src = "import random  # emlint: disable=all\n"
        assert lint_source(src, rules=[DeterminismRule()]).findings == []

    def test_other_rule_name_does_not_suppress(self):
        src = "ok = scale != 1.0  # emlint: disable=determinism\n"
        assert lint_source(src, rules=[FloatEqualityRule()]).findings

    def test_suppression_is_line_scoped(self):
        src = (
            "a = scale != 1.0  # emlint: disable=float-equality\n"
            "b = scale != 2.0\n"
        )
        result = lint_source(src, rules=[FloatEqualityRule()])
        assert len(result.findings) == 1
        assert result.findings[0].line == 2


# -- reporters ---------------------------------------------------------------


class TestReporters:
    def test_json_shape(self):
        src = "def f(a=[]):\n    return a == 1.0\n"
        result = lint_source(src, path="snippet.py")
        payload = json.loads(render_json(result))
        assert payload["version"] == JSON_FORMAT_VERSION
        assert payload["files_checked"] == 1
        assert payload["finding_count"] == len(payload["findings"]) == 2
        assert payload["suppressed_count"] == 0
        for entry in payload["findings"]:
            assert set(entry) == {"path", "line", "col", "rule", "message"}
            assert entry["path"] == "snippet.py"
            assert entry["line"] >= 1 and entry["col"] >= 1

    def test_text_format_has_file_line_diagnostics(self):
        src = "import random\n"
        result = lint_source(src, path="mod.py")
        text = render_text(result)
        assert "mod.py:1:1: determinism:" in text
        assert "1 finding" in text

    def test_findings_sorted_by_position(self):
        src = "b = y == 2.0\na = x == 1.0\n"
        result = lint_source(src)
        assert [f.line for f in result.findings] == [1, 2]


def test_rules_by_name_roundtrip():
    rules = rules_by_name(["determinism", "unit-safety"])
    assert [r.name for r in rules] == ["determinism", "unit-safety"]
    with pytest.raises(KeyError):
        rules_by_name(["nope"])
