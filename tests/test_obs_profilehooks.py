"""Opt-in profiling hooks: cProfile capture and span memory."""

import pytest

from repro.obs import set_obs_enabled
from repro.obs.profilehooks import profiled, span_memory
from repro.obs.trace import Tracer


@pytest.fixture()
def obs_on():
    previous = set_obs_enabled(True)
    yield
    set_obs_enabled(previous)


class TestProfiled:
    def test_none_out_path_is_a_no_op(self):
        with profiled(None) as profile:
            assert profile is None

    def test_writes_pstats_and_text_table(self, tmp_path):
        out = tmp_path / "run.pstats"
        with profiled(out):
            sum(range(10_000))
        assert out.is_file()
        text = (tmp_path / "run.pstats.txt").read_text()
        assert "cumulative" in text
        # The binary file loads back as pstats.
        import pstats

        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0

    def test_writes_even_when_the_body_raises(self, tmp_path):
        out = tmp_path / "crash.pstats"
        with pytest.raises(RuntimeError):
            with profiled(out):
                raise RuntimeError("mid-run failure")
        assert out.is_file()


class TestSpanMemory:
    def test_spans_gain_memory_high_water(self, obs_on):
        tracer = Tracer()
        with span_memory(tracer):
            with tracer.span("alloc"):
                block = bytearray(2_000_000)
                del block
        (record,) = tracer.records()
        assert record.attrs["mem_peak_bytes"] >= 1_000_000

    def test_restores_capture_flag_and_tracemalloc(self, obs_on):
        import tracemalloc

        tracer = Tracer()
        assert not tracer.capture_memory
        was_tracing = tracemalloc.is_tracing()
        with span_memory(tracer):
            assert tracer.capture_memory
            assert tracemalloc.is_tracing()
        assert not tracer.capture_memory
        assert tracemalloc.is_tracing() == was_tracing

    def test_without_hook_spans_carry_no_memory(self, obs_on):
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        (record,) = tracer.records()
        assert "mem_peak_bytes" not in record.attrs
