"""End-to-end integration: microbenchmark -> signal -> EMPROF -> validation."""

import pytest

from repro import Emprof, Microbenchmark, simulate
from repro.core.markers import find_marker_window
from repro.core.validate import count_accuracy, validate_profile
from repro.devices import default_channel, olimex, sesc
from repro.emsignal import measure
from repro.experiments.runner import microbenchmark_window, run_device, run_simulator


class TestSimulatorPath:
    def test_miss_count_accuracy_above_paper_band(self, sesc_run, micro_workload):
        run = run_simulator(micro_workload, config=sesc())
        report, window = microbenchmark_window(run)
        acc = count_accuracy(report.miss_count, micro_workload.total_misses)
        # Paper Table III microbenchmark miss accuracy: 97.7-99.8%.
        assert acc > 0.95

    def test_stall_accuracy(self, sesc_run, sesc_profile):
        v = validate_profile(sesc_profile, sesc_run.ground_truth)
        # Paper Table III stall accuracy: 99.3-99.9%.
        assert v.stall_accuracy > 0.97

    def test_group_detection_near_perfect(self, sesc_run, sesc_profile):
        v = validate_profile(sesc_profile, sesc_run.ground_truth)
        assert v.group_accuracy > 0.97
        assert v.match.false_positives <= 2

    def test_stall_durations_near_memory_latency(self, sesc_run, sesc_profile):
        # Inside the access region each engineered miss stalls for
        # roughly the memory latency.
        lat = sesc_profile.latencies_cycles()
        typical = (lat > 150) & (lat < 500)
        assert typical.mean() > 0.5


class TestDevicePath:
    def test_device_accuracy_through_em_chain(self, micro_workload):
        run = run_device(micro_workload, olimex(), bandwidth_hz=40e6)
        report, _ = microbenchmark_window(run)
        acc = count_accuracy(report.miss_count, micro_workload.total_misses)
        # Paper Table II: >= 98.98% on all devices; allow margin on the
        # small test-sized TM.
        assert acc > 0.93

    def test_marker_window_found_on_device_signal(self, micro_workload):
        cfg = olimex()
        result = simulate(micro_workload, cfg)
        cap = measure(result, bandwidth_hz=40e6, channel=default_channel(cfg.name))
        window = find_marker_window(cap.magnitude, marker_min_samples=200)
        assert window.width > 0

    def test_refresh_stalls_reported_separately(self):
        wl = Microbenchmark(
            total_misses=600,
            consecutive_misses=600,
            blank_iterations=6000,
            gap_instructions=1200,
        )
        run = run_device(wl, olimex(), bandwidth_hz=40e6)
        report, _ = microbenchmark_window(run)
        # A multi-hundred-microsecond run of misses must hit refresh.
        assert report.refresh_count >= 1
        assert report.refresh_count < report.miss_count / 4

    def test_profile_summary_readable(self, micro_workload):
        run = run_device(micro_workload, olimex())
        text = run.report.summary()
        assert "EMPROF profile" in text


class TestObserverEffect:
    def test_profiling_does_not_change_execution(self, micro_workload):
        # The defining property: running EMPROF twice over the same
        # captured signal yields identical results, and the profiled
        # execution is byte-identical with or without measurement.
        a = simulate(micro_workload, sesc(), seed=0)
        b = simulate(micro_workload, sesc(), seed=0)
        assert a.ground_truth.total_cycles == b.ground_truth.total_cycles
        r1 = Emprof.from_simulation(a).profile()
        r2 = Emprof.from_simulation(a).profile()
        assert r1.miss_count == r2.miss_count
        assert r1.stall_cycles == r2.stall_cycles


class TestSeedStability:
    def test_accuracy_stable_across_seeds(self, micro_workload):
        # Channel noise and machine randomness change per seed; the
        # Table II-grade accuracy must not depend on the draw.
        from repro.core.validate import count_accuracy
        from repro.devices import olimex

        for seed in (0, 1, 2):
            run = run_device(
                micro_workload, olimex(), bandwidth_hz=40e6, seed=seed
            )
            report, _ = microbenchmark_window(run)
            acc = count_accuracy(report.miss_count, micro_workload.total_misses)
            assert acc > 0.93, f"seed {seed}: {acc}"
