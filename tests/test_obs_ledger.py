"""The run ledger: records, fingerprints, append-only JSONL storage."""

import ast
import dataclasses
import json
import os
import sys
from pathlib import Path

import pytest

from repro.obs import ledger as obs_ledger
from repro.obs.ledger import (
    RUN_KINDS,
    RunLedger,
    RunRecord,
    atomic_write_json,
    config_fingerprint,
    git_rev,
    record,
)

SRC_OBS = Path(__file__).resolve().parent.parent / "src" / "repro" / "obs"


class TestRunRecord:
    def test_roundtrip(self):
        entry = record(
            kind="profile",
            label="capture_a",
            wall_time_s=1.25,
            config={"threshold": 0.5},
            metrics={"counters": {}},
            spans={"detect": {"count": 1, "total_s": 0.9, "mean_s": 0.9}},
            quality={"gap_count": 0},
            extra={"capture": "a.npz"},
        )
        restored = RunRecord.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert restored == entry

    def test_group_key(self):
        entry = record(kind="bench", label="test_x", wall_time_s=0.1)
        assert entry.group == "bench:test_x"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown run kind"):
            record(kind="mystery", label="x", wall_time_s=0.1)

    def test_every_declared_kind_accepted(self):
        for kind in RUN_KINDS:
            assert record(kind=kind, label="x", wall_time_s=0.1).kind == kind

    def test_from_dict_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="not a repro-obs-ledger"):
            RunRecord.from_dict({"schema": "something-else", "kind": "bench"})

    def test_from_dict_rejects_missing_identity(self):
        with pytest.raises(ValueError, match="malformed"):
            RunRecord.from_dict(
                {"schema": obs_ledger.SCHEMA, "kind": "bench", "label": "x"}
            )

    def test_records_are_schema_versioned(self):
        entry = record(kind="profile", label="x", wall_time_s=0.1)
        payload = entry.to_dict()
        assert payload["schema"] == "repro-obs-ledger"
        assert payload["schema_version"] == obs_ledger.SCHEMA_VERSION


class TestConfigFingerprint:
    def test_stable_across_key_order(self):
        a = config_fingerprint({"x": 1, "y": 2})
        b = config_fingerprint({"y": 2, "x": 1})
        assert a == b
        assert a.startswith("sha256:")

    def test_distinguishes_configs(self):
        assert config_fingerprint({"x": 1}) != config_fingerprint({"x": 2})

    def test_accepts_dataclasses(self):
        @dataclasses.dataclass
        class Cfg:
            window: int = 301

        assert config_fingerprint(Cfg()) == config_fingerprint(
            {"window": 301}
        )


class TestGitRev:
    def test_inside_repo(self):
        rev = git_rev(Path(__file__).resolve().parent.parent)
        assert rev != "unknown"
        assert len(rev) >= 7

    def test_outside_repo_is_unknown(self, tmp_path):
        assert git_rev(tmp_path) == "unknown"

    def test_never_raises_on_missing_dir(self, tmp_path):
        assert git_rev(tmp_path / "nope") == "unknown"


class TestRunLedger:
    def test_append_and_read(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        assert not ledger.exists()
        assert ledger.read_with_errors() == ([], 0)
        ledger.append(record(kind="bench", label="a", wall_time_s=0.1))
        ledger.append(record(kind="bench", label="a", wall_time_s=0.2))
        records, bad = ledger.read_with_errors()
        assert bad == 0
        assert [r.wall_time_s for r in records] == [0.1, 0.2]
        assert len(ledger) == 2

    def test_append_only_grows_file(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(record(kind="bench", label="a", wall_time_s=0.1))
        size_before = ledger.path.stat().st_size
        ledger.append(record(kind="bench", label="a", wall_time_s=0.2))
        assert ledger.path.stat().st_size > size_before

    def test_torn_final_line_is_skipped_not_fatal(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(record(kind="bench", label="a", wall_time_s=0.1))
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro-obs-led')  # torn mid-write
        records, bad = ledger.read_with_errors()
        assert len(records) == 1
        assert bad == 1

    def test_foreign_lines_counted_not_fatal(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.path.write_text('{"some": "other json"}\nnot json at all\n')
        ledger.append(record(kind="profile", label="x", wall_time_s=0.3))
        records, bad = ledger.read_with_errors()
        assert len(records) == 1
        assert bad == 2

    def test_read_filters(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append_many(
            [
                record(kind="bench", label="a", wall_time_s=0.1),
                record(kind="bench", label="b", wall_time_s=0.2),
                record(kind="profile", label="a", wall_time_s=0.3),
            ]
        )
        assert len(ledger.read(kind="bench")) == 2
        assert len(ledger.read(kind="bench", label="a")) == 1
        assert len(ledger.read(label="a")) == 2

    def test_groups(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append_many(
            [
                record(kind="bench", label="a", wall_time_s=0.1),
                record(kind="bench", label="a", wall_time_s=0.2),
                record(kind="profile", label="a", wall_time_s=0.3),
            ]
        )
        groups = ledger.groups()
        assert set(groups) == {"bench:a", "profile:a"}
        assert len(groups["bench:a"]) == 2

    def test_creates_parent_directories(self, tmp_path):
        ledger = RunLedger(tmp_path / "deep" / "nested" / "ledger.jsonl")
        ledger.append(record(kind="bench", label="a", wall_time_s=0.1))
        assert ledger.exists()


class TestAtomicWriteJson:
    def test_writes_parseable_json(self, tmp_path):
        out = atomic_write_json(tmp_path / "out.json", {"k": [1, 2]})
        assert json.loads(out.read_text()) == {"k": [1, 2]}

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"v": 1})
        atomic_write_json(target, {"v": 2})
        assert json.loads(target.read_text()) == {"v": 2}

    def test_leaves_no_temp_file(self, tmp_path):
        atomic_write_json(tmp_path / "out.json", {"v": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


class TestObsStaysLightweight:
    """The observatory must be importable on an air-gapped bench box.

    Module-level imports across ``repro.obs`` are restricted to the
    stdlib and the package itself - numpy, matplotlib, and friends may
    only ever appear behind function-local (lazy) imports.
    """

    @staticmethod
    def _module_level_imports(path):
        tree = ast.parse(path.read_text())
        names = set()
        for node in tree.body:  # top level only; lazy imports are fine
            if isinstance(node, ast.Import):
                names.update(alias.name.split(".")[0] for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative: stays inside the package
                    continue
                if node.module:
                    names.add(node.module.split(".")[0])
        return names

    def test_obs_modules_import_only_stdlib(self):
        allowed = set(sys.stdlib_module_names) | {"repro"}
        offenders = {}
        for path in sorted(SRC_OBS.glob("*.py")):
            bad = self._module_level_imports(path) - allowed
            if bad:
                offenders[path.name] = sorted(bad)
        assert offenders == {}, (
            f"non-stdlib module-level imports in repro.obs: {offenders}"
        )

    def test_guard_covers_the_whole_package(self):
        # If the package moves, the guard must fail loudly, not
        # silently iterate over nothing.
        assert len(list(SRC_OBS.glob("*.py"))) >= 7


class TestFsyncPolicy:
    @pytest.fixture()
    def fsync_counter(self, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            obs_ledger.os, "fsync",
            lambda fd: (calls.append(fd), real_fsync(fd))[1],
        )
        return calls

    def _entry(self):
        return record("profile", "cap", 1.0)

    def test_default_fsyncs_every_append(self, tmp_path, fsync_counter):
        ledger = RunLedger(tmp_path / "l.jsonl")
        assert ledger.fsync is True
        ledger.append(self._entry())
        ledger.append(self._entry())
        assert len(fsync_counter) == 2

    def test_explicit_false_skips_fsync(self, tmp_path, fsync_counter):
        ledger = RunLedger(tmp_path / "l.jsonl", fsync=False)
        ledger.append(self._entry())
        assert fsync_counter == []
        # The record still lands on disk (page cache durability).
        assert len(ledger) == 1

    def test_env_var_disables_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs_ledger.ENV_LEDGER_FSYNC, "0")
        assert RunLedger(tmp_path / "l.jsonl").fsync is False
        monkeypatch.setenv(obs_ledger.ENV_LEDGER_FSYNC, "off")
        assert RunLedger(tmp_path / "l.jsonl").fsync is False
        monkeypatch.setenv(obs_ledger.ENV_LEDGER_FSYNC, "1")
        assert RunLedger(tmp_path / "l.jsonl").fsync is True

    def test_explicit_true_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs_ledger.ENV_LEDGER_FSYNC, "0")
        assert RunLedger(tmp_path / "l.jsonl", fsync=True).fsync is True

    def test_appender_inherits_ledger_policy(self, tmp_path, fsync_counter):
        ledger = RunLedger(tmp_path / "l.jsonl", fsync=False)
        with ledger.appender() as appender:
            appender.append(self._entry())
            appender.append(self._entry())
        # No per-append fsync, and the deferred close fsync is also
        # skipped when the ledger policy is off.
        assert fsync_counter == []
        assert len(ledger) == 2

    def test_deferred_fsync_on_close_with_policy_on(
        self, tmp_path, fsync_counter
    ):
        ledger = RunLedger(tmp_path / "l.jsonl")
        with ledger.appender(fsync_each=False) as appender:
            appender.append(self._entry())
            appender.append(self._entry())
        assert len(fsync_counter) == 1
