"""Unit tests for the fault-injection layer (repro.faults.inject)."""

import numpy as np
import pytest

from repro.errors import TransientAcquisitionError
from repro.faults import (
    BurstFault,
    ChunkResequencer,
    ClippingFault,
    DcDriftFault,
    DropoutFault,
    FaultInjector,
    FaultySource,
    FlakySource,
    GainStepFault,
    ImpairmentLog,
    NumberedChunk,
    iter_chunks,
)
from repro.faults.inject import corrupt_chunk_stream


def base_signal(n=4000, seed=3):
    rng = np.random.default_rng(seed)
    return np.clip(0.8 + rng.normal(0, 0.05, n), 0.0, None)


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        faults = [
            DropoutFault(rate=0.02),
            GainStepFault(steps=2),
            ClippingFault(rate=0.01),
            BurstFault(bursts=1),
            DcDriftFault(),
        ]
        x = base_signal()
        a = FaultInjector(faults, seed=5).apply(x)
        b = FaultInjector(faults, seed=5).apply(x)
        np.testing.assert_array_equal(a.signal, b.signal)
        assert a.log.events == b.log.events

    def test_different_seed_differs(self):
        x = base_signal()
        a = FaultInjector([DropoutFault(rate=0.02)], seed=1).apply(x)
        b = FaultInjector([DropoutFault(rate=0.02)], seed=2).apply(x)
        assert len(a.signal) != len(b.signal) or not np.array_equal(
            a.signal, b.signal
        )

    def test_input_never_mutated(self):
        x = base_signal()
        snapshot = x.copy()
        FaultInjector([GainStepFault(), ClippingFault()], seed=0).apply(x)
        np.testing.assert_array_equal(x, snapshot)


class TestDropouts:
    def test_samples_removed_and_gaps_reported(self):
        x = base_signal()
        impaired = FaultInjector([DropoutFault(rate=0.02)], seed=0).apply(x)
        dropped = sum(d for _, d in impaired.gaps)
        assert dropped > 0
        assert len(impaired.signal) == len(x) - dropped
        assert impaired.log.count("dropout") == len(impaired.gaps)
        # roughly the requested rate (the planner rounds per run)
        assert dropped == pytest.approx(0.02 * len(x), rel=0.5)

    def test_map_position_monotone_and_bounded(self):
        x = base_signal()
        impaired = FaultInjector([DropoutFault(rate=0.05)], seed=4).apply(x)
        mapped = [impaired.map_position(p) for p in range(len(x))]
        assert all(b >= a for a, b in zip(mapped, mapped[1:]))
        assert max(mapped) <= len(impaired.signal)
        # samples surviving the cut keep their values at the mapped spot
        keep_positions = [
            p for p in range(0, len(x), 97)
            if impaired.map_position(p + 1) > impaired.map_position(p)
        ]
        for p in keep_positions:
            assert impaired.signal[int(impaired.map_position(p))] == x[p]

    def test_no_dropout_is_identity(self):
        x = base_signal()
        impaired = FaultInjector([DropoutFault(rate=0.0)], seed=0).apply(x)
        np.testing.assert_array_equal(impaired.signal, x)
        assert impaired.gaps == []
        assert impaired.map_position(123.0) == 123.0


class TestValueFaults:
    def test_clipping_caps_and_logs(self):
        x = base_signal()
        fault = ClippingFault(rate=0.01)
        impaired = FaultInjector([fault], seed=0).apply(x)
        level = fault.clip_level(x)
        assert impaired.signal.max() <= level
        assert impaired.log.count("clip") > 0

    def test_gain_steps_logged_with_factor(self):
        x = base_signal()
        impaired = FaultInjector([GainStepFault(steps=3)], seed=0).apply(x)
        events = [e for e in impaired.log.events if e.kind == "gain_step"]
        assert len(events) == 3
        assert all("factor=" in e.detail for e in events)

    def test_dc_drift_is_benign(self):
        x = base_signal()
        impaired = FaultInjector([DcDriftFault()], seed=0).apply(x)
        assert impaired.log.count("dc_drift") == 1
        assert impaired.log.severe_intervals() == []
        assert (impaired.signal >= 0).all()

    def test_burst_raises_level(self):
        x = base_signal()
        impaired = FaultInjector([BurstFault(bursts=2)], seed=0).apply(x)
        assert impaired.signal.max() > x.max() * 2
        assert impaired.log.count("burst") == 2


class TestImpairmentLog:
    def test_overlap_queries(self):
        log = ImpairmentLog()
        log.add("clip", 100, 120)
        log.add("gain_step", 300, 301)
        log.add("dc_drift", 0, 1000, severe=False)
        assert log.overlaps(110, 115)
        assert log.overlaps(290, 295, margin=10)
        assert not log.overlaps(500, 600)
        assert log.severe_intervals() == [(100, 120), (300, 301)]

    def test_summary_counts(self):
        log = ImpairmentLog()
        log.add("clip", 0, 5)
        log.add("clip", 9, 12)
        assert "clip: 2" in log.summary()
        assert ImpairmentLog().summary() == "no impairments"


class TestIterChunks:
    def test_reassembles_signal_and_gaps(self):
        x = base_signal()
        impaired = FaultInjector([DropoutFault(rate=0.03)], seed=2).apply(x)
        chunks = list(iter_chunks(impaired, chunk_samples=257))
        np.testing.assert_array_equal(
            np.concatenate([c for c, _ in chunks]), impaired.signal
        )
        assert sum(g for _, g in chunks) == sum(d for _, d in impaired.gaps)

    def test_rejects_bad_chunk_size(self):
        impaired = FaultInjector([], seed=0).apply(base_signal())
        with pytest.raises(ValueError):
            list(iter_chunks(impaired, chunk_samples=0))


class TestResequencer:
    def chunks(self, n=10, size=16):
        rng = np.random.default_rng(0)
        return [rng.random(size) for _ in range(n)]

    def test_in_order_passthrough(self):
        reseq = ChunkResequencer()
        out = []
        for seq, data in enumerate(self.chunks()):
            out.extend(reseq.push(NumberedChunk(seq, data)))
        out.extend(reseq.flush())
        assert len(out) == 10
        assert all(gap == 0 for _, gap in out)

    def test_duplicates_dropped_and_swaps_repaired(self):
        data = self.chunks()
        stream = list(
            corrupt_chunk_stream(
                data, seed=1, duplicate_probability=0.5, swap_probability=0.5
            )
        )
        assert len(stream) > len(data)  # at least one duplicate injected
        reseq = ChunkResequencer(max_reorder=4)
        out = []
        for frame in stream:
            out.extend(reseq.push(frame))
        out.extend(reseq.flush())
        assert len(out) == len(data)
        for got, (want, _) in zip(data, out):
            np.testing.assert_array_equal(got, want)
        assert reseq.duplicates_dropped > 0

    def test_lost_frame_becomes_gap(self):
        data = self.chunks(n=8)
        reseq = ChunkResequencer(max_reorder=2, lost_samples_per_frame=16)
        out = []
        for seq, chunk in enumerate(data):
            if seq == 3:
                continue  # frame lost in transport
            out.extend(reseq.push(NumberedChunk(seq, chunk)))
        out.extend(reseq.flush())
        assert len(out) == 7
        assert reseq.frames_declared_lost == 1
        assert sum(gap for _, gap in out) == 16


class TestSourceWrappers:
    def make_source(self):
        from repro.acquire import SimulatedSource
        from repro.workloads import Microbenchmark

        return SimulatedSource(Microbenchmark(total_misses=16, consecutive_misses=4))

    def test_faulty_source_impairs_capture(self):
        source = self.make_source()
        clean = source.capture()
        faulty = FaultySource(
            self.make_source(), FaultInjector([DropoutFault(rate=0.02)], seed=0)
        )
        impaired = faulty.capture()
        assert len(impaired.magnitude) < len(clean.magnitude)
        assert impaired.sample_rate_hz == clean.sample_rate_hz
        assert faulty.last_log is not None
        assert faulty.last_impaired is not None

    def test_flaky_source_raises_then_succeeds(self):
        flaky = FlakySource(self.make_source(), failures=2)
        for _ in range(2):
            with pytest.raises(TransientAcquisitionError):
                flaky.capture()
        capture = flaky.capture()
        assert len(capture.magnitude) > 0
