"""Unit tests for workload generators."""

import numpy as np
import pytest

from repro.devices import sesc
from repro.sim.isa import BRANCH, Instr, LOAD, NO_CONSUMER, STORE
from repro.workloads.base import (
    StreamWorkload,
    Workload,
    code_sweep,
    compute_block,
    pointer_chase_loop,
    random_access_loop,
    streaming_loop,
    tight_loop,
)
from repro.workloads.boot import BootWorkload
from repro.workloads.microbenchmark import (
    Microbenchmark,
    REGION_ACCESSES,
    REGION_BLANK_END,
    REGION_BLANK_START,
    REGION_PAGE_TOUCH,
)
from repro.workloads.spec import (
    SPEC_BENCHMARKS,
    SpecWorkload,
    Phase,
    spec_workload,
)

CFG = sesc()


class TestBaseBuilders:
    def test_tight_loop_repeats_pcs(self):
        seq = list(tight_loop(0x100, iterations=3, body_alu=2))
        assert len(seq) == 9
        assert seq[0].pc == seq[3].pc

    def test_tight_loop_ends_with_branch(self):
        seq = list(tight_loop(0x100, 1, body_alu=2))
        assert seq[-1].op == BRANCH

    def test_tight_loop_rejects_negative(self):
        with pytest.raises(ValueError):
            list(tight_loop(0x100, -1))

    def test_compute_block_count(self):
        assert len(list(compute_block(0, 57))) == 57

    def test_compute_block_pattern_modulates_weights(self):
        plain = [i.weight for i in compute_block(0, 64)]
        pat = [i.weight for i in compute_block(0, 64, pattern_period=16, pattern_depth=0.05)]
        assert np.std(pat) > np.std(plain)

    def test_streaming_loop_addresses_sequential(self):
        seq = [i for i in streaming_loop(0, 0x1000, 64 * 8, stride=64) if i.op == LOAD]
        addrs = [i.addr for i in seq]
        assert addrs == sorted(addrs)
        assert len(addrs) == 8

    def test_streaming_loop_store_ratio(self, rng):
        seq = list(
            streaming_loop(0, 0x1000, 64 * 200, stride=64, store_ratio=1.0, rng=rng)
        )
        assert all(i.op != LOAD for i in seq if i.op in (LOAD, STORE) and i.op == LOAD)
        assert any(i.op == STORE for i in seq)

    def test_random_access_loop_within_working_set(self, rng):
        ws = 64 * 128
        seq = [
            i
            for i in random_access_loop(0, 0x1000, ws, 50, rng)
            if i.op in (LOAD, STORE)
        ]
        assert all(0x1000 <= i.addr < 0x1000 + ws for i in seq)

    def test_random_access_rejects_tiny_ws(self, rng):
        with pytest.raises(ValueError):
            list(random_access_loop(0, 0, 32, 10, rng))

    def test_pointer_chase_deps_are_zero(self, rng):
        loads = [
            i
            for i in pointer_chase_loop(0, 0x1000, 64 * 64, 20, rng)
            if i.op == LOAD
        ]
        assert all(i.dep == 0 for i in loads)

    def test_code_sweep_covers_footprint(self):
        seq = list(code_sweep(0x0, 1024, passes=2))
        assert len(seq) == 2 * 256
        assert max(i.pc for i in seq) == 1020

    def test_stream_workload_protocol(self):
        wl = StreamWorkload("x", lambda cfg: iter([]), {1: "a"})
        assert isinstance(wl, Workload)
        assert wl.region_names == {1: "a"}


class TestMicrobenchmark:
    def test_structure_regions_in_order(self):
        wl = Microbenchmark(total_misses=8, consecutive_misses=2, blank_iterations=10)
        regions = [i.region for i in wl.instructions(CFG)]
        first_seen = list(dict.fromkeys(regions))
        assert first_seen == [
            REGION_PAGE_TOUCH,
            REGION_BLANK_START,
            REGION_ACCESSES,
            REGION_BLANK_END,
        ]

    def test_access_loads_are_distinct_lines(self):
        wl = Microbenchmark(total_misses=32, consecutive_misses=4, blank_iterations=5)
        loads = [
            i.addr
            for i in wl.instructions(CFG)
            if i.op == LOAD and i.region == REGION_ACCESSES
        ]
        assert len(loads) == 32
        lines = {a // 64 for a in loads}
        assert len(lines) == 32

    def test_access_loads_avoid_page_touch_lines(self):
        wl = Microbenchmark(total_misses=16, consecutive_misses=4, blank_iterations=5)
        touched = set()
        access = []
        for i in wl.instructions(CFG):
            if i.op == LOAD:
                if i.region == REGION_PAGE_TOUCH:
                    touched.add(i.addr // 64)
                elif i.region == REGION_ACCESSES:
                    access.append(i.addr // 64)
        assert not touched.intersection(access)

    def test_expected_counts(self):
        wl = Microbenchmark(total_misses=100, consecutive_misses=10)
        assert wl.expected_misses() == 100
        assert wl.expected_groups() == 10

    def test_expected_groups_rounds_up(self):
        assert Microbenchmark(10, 3).expected_groups() == 4

    def test_seed_changes_addresses(self):
        a = Microbenchmark(16, 4, blank_iterations=5, seed=1)
        b = Microbenchmark(16, 4, blank_iterations=5, seed=2)
        addrs_a = [i.addr for i in a.instructions(CFG) if i.op == LOAD]
        addrs_b = [i.addr for i in b.instructions(CFG) if i.op == LOAD]
        assert addrs_a != addrs_b

    def test_validation(self):
        with pytest.raises(ValueError):
            Microbenchmark(total_misses=0)
        with pytest.raises(ValueError):
            Microbenchmark(total_misses=4, consecutive_misses=8)
        with pytest.raises(ValueError):
            Microbenchmark(total_misses=4, consecutive_misses=2, gap_instructions=-1)


class TestSpecModels:
    def test_all_ten_benchmarks_present(self):
        assert len(SPEC_BENCHMARKS) == 10
        for name in ("mcf", "parser", "bzip2", "vpr"):
            assert name in SPEC_BENCHMARKS

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            spec_workload("nosuch")

    def test_region_names_assigned(self):
        wl = spec_workload("parser")
        names = set(wl.region_names.values())
        assert {"read_dictionary", "init_randtable", "batch_process"} <= names

    def test_region_id_lookup(self):
        wl = spec_workload("parser")
        rid = wl.region_id("batch_process")
        assert wl.region_names[rid] == "batch_process"

    def test_scale_shrinks_stream(self):
        full = sum(1 for _ in spec_workload("vpr").instructions(CFG))
        small = sum(1 for _ in spec_workload("vpr", scale=0.2).instructions(CFG))
        assert small < full * 0.5

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            spec_workload("mcf", scale=0.0)

    def test_mcf_has_dependent_loads(self):
        wl = spec_workload("mcf", scale=0.2)
        deps = [i.dep for i in wl.instructions(CFG) if i.op == LOAD]
        assert 0 in deps  # the pointer chase

    def test_phases_use_disjoint_address_spaces(self):
        wl = spec_workload("twolf", scale=0.3)
        by_region = {}
        for i in wl.instructions(CFG):
            if i.op in (LOAD, STORE):
                by_region.setdefault(i.region, []).append(i.addr)
        spans = {
            r: (min(a), max(a)) for r, a in by_region.items() if a
        }
        regions = list(spans)
        for i in range(len(regions)):
            for j in range(i + 1, len(regions)):
                lo1, hi1 = spans[regions[i]]
                lo2, hi2 = spans[regions[j]]
                assert hi1 < lo2 or hi2 < lo1

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Phase("x", "unknown_kind")
        with pytest.raises(ValueError):
            Phase("x", "random", cold_fraction=2.0)
        with pytest.raises(ValueError):
            SpecWorkload("empty", [])


class TestBootWorkload:
    def test_regions_cover_boot_stages(self):
        boot = BootWorkload(seed=0, scale=0.2)
        names = set(boot.region_names.values())
        assert "bootloader" in names
        assert "kernel_decompress" in names
        assert "userspace_init" in names

    def test_seeds_differ(self):
        a = sum(1 for _ in BootWorkload(seed=0, scale=0.1).instructions(CFG))
        b = sum(1 for _ in BootWorkload(seed=1, scale=0.1).instructions(CFG))
        assert a != b

    def test_same_seed_reproducible(self):
        a = sum(1 for _ in BootWorkload(seed=3, scale=0.1).instructions(CFG))
        b = sum(1 for _ in BootWorkload(seed=3, scale=0.1).instructions(CFG))
        assert a == b

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            BootWorkload(scale=0.0)
