"""Unit tests for detected events, reports, and latency statistics."""

import numpy as np
import pytest

from repro.core.events import DetectedStall, ProfileReport
from repro.core.refresh import refresh_stats, split_by_refresh
from repro.core.stats import (
    LatencySummary,
    latency_histogram,
    stalls_summary,
    tail_fraction,
)


def stall(begin, end, period=20.0, refresh=False):
    return DetectedStall(
        begin_sample=begin,
        end_sample=end,
        begin_cycle=begin * period,
        end_cycle=end * period,
        min_level=0.05,
        is_refresh=refresh,
    )


def report(stalls, total_cycles=100_000.0):
    return ProfileReport(
        stalls=stalls,
        total_cycles=total_cycles,
        clock_hz=1e9,
        sample_period_cycles=20.0,
    )


class TestDetectedStall:
    def test_durations(self):
        s = stall(10, 25)
        assert s.duration_samples == 15
        assert s.duration_cycles == 300

    def test_with_region(self):
        s = stall(10, 25).with_region(4)
        assert s.region == 4
        assert s.duration_cycles == 300


class TestProfileReport:
    def test_miss_count(self):
        assert report([stall(0, 10), stall(20, 30)]).miss_count == 2

    def test_stall_cycles(self):
        r = report([stall(0, 10), stall(20, 35)])
        assert r.stall_cycles == pytest.approx(500)

    def test_stall_fraction(self):
        r = report([stall(0, 50)], total_cycles=10_000)
        assert r.stall_fraction == pytest.approx(0.1)

    def test_stall_fraction_zero_total(self):
        assert report([], total_cycles=0).stall_fraction == 0.0

    def test_mean_latency(self):
        r = report([stall(0, 10), stall(20, 40)])
        assert r.mean_latency_cycles == pytest.approx(300)

    def test_mean_latency_empty(self):
        assert report([]).mean_latency_cycles == 0.0

    def test_refresh_count(self):
        r = report([stall(0, 10), stall(20, 120, refresh=True)])
        assert r.refresh_count == 1

    def test_latencies_array(self):
        lat = report([stall(0, 10), stall(20, 40)]).latencies_cycles()
        np.testing.assert_allclose(lat, [200, 400])

    def test_stalls_between(self):
        r = report([stall(0, 10), stall(100, 110)])
        inside = r.stalls_between(1900, 2300)
        assert len(inside) == 1

    def test_miss_rate_timeline(self):
        r = report([stall(0, 10), stall(100, 110)], total_cycles=4000)
        starts, counts = r.miss_rate_timeline(2000)
        assert counts.tolist() == [1, 1]

    def test_timeline_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            report([]).miss_rate_timeline(0)

    def test_summary_mentions_counts(self):
        text = report([stall(0, 10)]).summary()
        assert "1 LLC-miss stalls" in text


class TestLatencyStats:
    def test_summary_from_latencies(self):
        s = LatencySummary.from_latencies(np.array([100.0, 200.0, 300.0]))
        assert s.count == 3
        assert s.mean == pytest.approx(200)
        assert s.median == pytest.approx(200)
        assert s.maximum == pytest.approx(300)
        assert s.total == pytest.approx(600)

    def test_summary_empty(self):
        s = LatencySummary.from_latencies(np.array([]))
        assert s.count == 0
        assert s.mean == 0.0

    def test_histogram_shape(self):
        edges, counts = latency_histogram(np.array([30.0, 95.0, 110.0]), bin_cycles=50)
        assert len(edges) == len(counts) + 1
        assert counts.sum() == 3

    def test_histogram_bins_land_correctly(self):
        edges, counts = latency_histogram(np.array([30.0, 95.0]), bin_cycles=50)
        assert counts[0] == 1  # 30 in [0, 50)
        assert counts[1] == 1  # 95 in [50, 100)

    def test_histogram_empty(self):
        edges, counts = latency_histogram(np.array([]))
        assert counts.sum() == 0

    def test_histogram_max_cap(self):
        edges, counts = latency_histogram(
            np.array([10.0, 999.0]), bin_cycles=50, max_cycles=100
        )
        assert counts.sum() == 2  # the outlier is clipped into the last bin

    def test_histogram_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            latency_histogram(np.array([1.0]), bin_cycles=0)

    def test_tail_fraction(self):
        lat = np.array([100.0, 200.0, 700.0, 900.0])
        assert tail_fraction(lat, 600) == pytest.approx(0.5)

    def test_tail_fraction_empty(self):
        assert tail_fraction(np.array([]), 100) == 0.0

    def test_stalls_summary(self):
        s = stalls_summary([stall(0, 10), stall(0, 20)])
        assert s.count == 2
        assert s.mean == pytest.approx(300)


class TestRefreshStats:
    def test_counts_and_means(self):
        stalls = [stall(0, 10), stall(100, 220, refresh=True), stall(5000, 5120, refresh=True)]
        rs = refresh_stats(stalls)
        assert rs.count == 2
        assert rs.mean_duration_cycles == pytest.approx(2400)
        assert rs.fraction_of_stalls == pytest.approx(2 / 3)

    def test_interval_estimate(self):
        stalls = [stall(k * 3500, k * 3500 + 120, refresh=True) for k in range(5)]
        rs = refresh_stats(stalls)
        assert rs.estimated_interval_cycles == pytest.approx(70_000)

    def test_interval_none_for_single_event(self):
        rs = refresh_stats([stall(0, 120, refresh=True)])
        assert rs.estimated_interval_cycles is None

    def test_empty(self):
        rs = refresh_stats([])
        assert rs.count == 0
        assert rs.fraction_of_stalls == 0.0

    def test_split(self):
        stalls = [stall(0, 10), stall(100, 220, refresh=True)]
        ordinary, refresh = split_by_refresh(stalls)
        assert len(ordinary) == 1
        assert len(refresh) == 1
        assert refresh[0].is_refresh
