"""Flight recorder units: the ring, the sidecar, and the evidence
serialization round trips."""

import json

import pytest

from repro.obs.flight import (
    FLIGHT_FORMAT,
    FLIGHT_KINDS,
    FLIGHT_SCHEMA_VERSION,
    FlightEvent,
    FlightRecorder,
    NearMiss,
    ReportEvidence,
    StallEvidence,
    read_flight,
)


def _event(pos=0.0, kind="gap", **attrs):
    return FlightEvent(
        schema_version=FLIGHT_SCHEMA_VERSION, kind=kind, pos=pos, attrs=attrs
    )


class TestFlightEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown flight event kind"):
            FlightEvent(
                schema_version=FLIGHT_SCHEMA_VERSION, kind="warp", pos=0.0
            )

    def test_every_documented_kind_constructs(self):
        for kind in FLIGHT_KINDS:
            _event(kind=kind)

    def test_dict_round_trip(self):
        event = _event(pos=12.5, kind="stall_emitted", begin=12.1, end=40.0)
        clone = FlightEvent.from_dict(event.to_dict())
        assert clone.kind == event.kind
        assert clone.pos == event.pos
        assert dict(clone.attrs) == dict(event.attrs)
        assert clone.schema_version == FLIGHT_SCHEMA_VERSION


class TestFlightRecorder:
    def test_keeps_newest_and_counts_overwrites(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(_event(pos=float(i)))
        assert len(rec) == 4
        assert rec.total_recorded == 10
        assert rec.overwritten == 6
        assert [e.pos for e in rec.events()] == [6.0, 7.0, 8.0, 9.0]

    def test_events_are_in_record_order_before_wrap(self):
        rec = FlightRecorder(capacity=8)
        for i in range(5):
            rec.record(_event(pos=float(i)))
        assert [e.pos for e in rec.events()] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert rec.overwritten == 0

    def test_tail(self):
        rec = FlightRecorder(capacity=8)
        for i in range(6):
            rec.record(_event(pos=float(i)))
        assert [e.pos for e in rec.tail(2)] == [4.0, 5.0]
        assert rec.tail(0) == []

    def test_clear(self):
        rec = FlightRecorder(capacity=4)
        rec.record(_event())
        rec.clear()
        assert len(rec) == 0
        assert rec.total_recorded == 0
        assert rec.events() == []

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestSidecar:
    def test_spill_and_read_round_trip(self, tmp_path):
        rec = FlightRecorder(capacity=16)
        for i in range(5):
            rec.record(_event(pos=float(i), kind="normalizer_emit", until=i))
        path = tmp_path / "run.flight"
        written = rec.spill(path, meta={"capture": "cap.npz"})
        assert written == 5
        header, events = read_flight(path)
        assert header["format"] == FLIGHT_FORMAT
        assert header["events"] == 5
        assert header["total_recorded"] == 5
        assert header["overwritten"] == 0
        assert header["capture"] == "cap.npz"
        assert [e.pos for e in events] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_header_counts_survive_wrap(self, tmp_path):
        rec = FlightRecorder(capacity=2)
        for i in range(5):
            rec.record(_event(pos=float(i)))
        path = tmp_path / "wrapped.flight"
        assert rec.spill(path) == 2
        header, events = read_flight(path)
        assert header["overwritten"] == 3
        assert [e.pos for e in events] == [3.0, 4.0]

    def test_read_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "foreign.flight"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not an EMPROF flight"):
            read_flight(path)

    def test_read_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.flight"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_flight(path)

    def test_read_names_bad_event_line(self, tmp_path):
        rec = FlightRecorder(capacity=4)
        rec.record(_event())
        path = tmp_path / "torn.flight"
        rec.spill(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
        with pytest.raises(ValueError, match="line 3"):
            read_flight(path)


def _stall_evidence(**over):
    base = dict(
        index=0,
        trigger_sample=120,
        begin_sample=119.5,
        end_sample=160.25,
        threshold=0.45,
        min_level=0.05,
        depth_margin=0.40,
        duration_cycles=1018.75,
        merge_chain=({"pos": 130.0, "gap_len": 2, "gap_max": 0.5,
                      "reason": "short_gap"},),
        carried=True,
        carry_chunks=2,
        quality_overlaps=((118.0, 125.0),),
        low_confidence=True,
        is_refresh=False,
        complete=True,
    )
    base.update(over)
    return StallEvidence(**base)


class TestEvidenceSerialization:
    def test_stall_evidence_round_trip(self):
        original = _stall_evidence()
        clone = StallEvidence.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert clone == original

    def test_near_miss_round_trip(self):
        original = NearMiss(
            trigger_sample=99,
            begin_sample=98.5,
            end_sample=101.0,
            reason="too_few_samples",
            measured=2.0,
            limit=4.0,
            min_level=0.3,
            depth_margin=0.15,
        )
        clone = NearMiss.from_dict(json.loads(json.dumps(original.to_dict())))
        assert clone == original

    def test_report_evidence_round_trip(self):
        original = ReportEvidence(
            schema_version=FLIGHT_SCHEMA_VERSION,
            threshold=0.45,
            recover_threshold=0.7,
            min_duration_cycles=70.0,
            min_duration_samples=4,
            stalls=(_stall_evidence(),),
            near_misses=(),
            total_events=512,
            overwritten_events=3,
        )
        clone = ReportEvidence.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert clone == original
        assert clone.for_stall(0) == original.stalls[0]

    def test_malformed_report_evidence_is_value_error(self):
        with pytest.raises(ValueError, match="malformed report evidence"):
            ReportEvidence.from_dict({"threshold": 0.45})
