"""Chunk-boundary regressions and engine building-block units.

The differential harness (``tests/test_engine_equivalence.py``) proves
the engine equals the seed in bulk; this module pins the *specific*
boundary geometries that chunked processing gets wrong when carry
state is mishandled:

* a dip spanning three chunks,
* a sample-drop gap starting exactly on a chunk boundary,
* a stream ending mid-dip (finish/flush semantics),

each over chunk sizes {1, 7, 64, 4096, whole}.  It also unit-tests
:class:`~repro.core.engine.SampleRing` (including its amortized
constant-time push guarantee), :func:`~repro.core.engine.finite_segments`,
and the picklability of mid-stream engine state (campaign workers
ship profilers across process boundaries).
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.core.detect import DetectorConfig
from repro.core.engine import ChunkDetector, ChunkNormalizer, SampleRing, finite_segments
from repro.core.normalize import NormalizerConfig, normalize
from repro.core.streaming import StreamingEmprof
from repro.io import report_to_dict

from tests.conftest import make_dip_signal
from tests.reference_pipeline import (
    ReferenceStreamingEmprof,
    reference_detect_stalls,
)

RATE_HZ = 50e6
CLOCK_HZ = 1e9
PERIOD = CLOCK_HZ / RATE_HZ

NORM_CFG = NormalizerConfig(window_samples=301)
DET_CFG = DetectorConfig()

#: ``None`` means "one chunk holding the whole signal".
SIZES = (1, 7, 64, 4096, None)


def split(x, size):
    if size is None:
        return [x]
    return np.array_split(x, np.arange(size, len(x), size))


def run_detector(norm, size, config=DET_CFG):
    engine = ChunkDetector(PERIOD, config)
    out = []
    for chunk in split(norm, size):
        out.extend(engine.push(chunk))
    out.extend(engine.finish())
    return out


def as_tuples(stalls):
    return [
        (
            s.begin_sample,
            s.end_sample,
            s.begin_cycle,
            s.end_cycle,
            s.min_level,
            s.is_refresh,
            s.low_confidence,
        )
        for s in stalls
    ]


# ---------------------------------------------------------------------------
# chunk-boundary geometries
# ---------------------------------------------------------------------------


class TestBoundaryGeometries:
    @pytest.mark.parametrize("size", SIZES)
    def test_dip_spanning_three_chunks(self, size):
        """One 40-sample dip cut so no chunk holds it whole (size<=64)."""
        x = make_dip_signal(n=4000, seed=21, dip_every=4000, dip_len=0)
        x[1990:2030] = 0.05  # one long dip centred mid-signal
        norm = normalize(x, NORM_CFG)
        want = reference_detect_stalls(norm, PERIOD, DET_CFG)
        assert len(want) == 1
        got = run_detector(norm, size)
        assert as_tuples(got) == as_tuples(want)

    @pytest.mark.parametrize("size", SIZES)
    def test_gap_starting_exactly_on_boundary(self, size):
        """A driver-reported drop aligned to the chunk grid must resync
        identically to the seed facade."""
        x = make_dip_signal(n=6000, seed=22)
        chunks = split(x, size)
        engine = StreamingEmprof(RATE_HZ, CLOCK_HZ, normalizer=NORM_CFG, detector=DET_CFG)
        reference = ReferenceStreamingEmprof(
            RATE_HZ, CLOCK_HZ, normalizer=NORM_CFG, detector=DET_CFG
        )
        mid = len(chunks) // 2
        for i, chunk in enumerate(chunks):
            gap = 500 if i == mid else 0  # gap begins exactly at a boundary
            engine.process(chunk, gap_before=gap)
            reference.process(chunk, gap_before=gap)
        got, want = engine.finish(), reference.finish()
        assert as_tuples(got.stalls) == as_tuples(want.stalls)
        assert report_to_dict(got) == report_to_dict(want)

    @pytest.mark.parametrize("size", SIZES)
    def test_stream_ending_mid_dip(self, size):
        """The signal stops while below threshold: only finish() may
        close the dip, and it must close it like the seed does."""
        x = make_dip_signal(n=3000, seed=23, dip_every=3000, dip_len=0)
        x[2900:] = 0.05  # dip runs off the end of the capture
        norm = normalize(x, NORM_CFG)
        want = reference_detect_stalls(norm, PERIOD, DET_CFG)
        assert len(want) == 1

        engine = ChunkDetector(PERIOD, DET_CFG)
        mid_stream = []
        for chunk in split(norm, size):
            mid_stream.extend(engine.push(chunk))
        # The trailing dip is still open: push() must not have emitted it.
        assert as_tuples(mid_stream) == as_tuples(want[:-1])
        final = engine.finish()
        assert as_tuples(mid_stream + final) == as_tuples(want)

    @pytest.mark.parametrize("size", SIZES)
    def test_merge_gap_straddling_boundary(self, size):
        """Two dips whose merge decision depends on samples split
        across a chunk boundary."""
        x = make_dip_signal(n=4000, seed=24, dip_every=4000, dip_len=0)
        x[2000:2010] = 0.05
        x[2010:2012] = 0.5  # gap pokes above threshold, not above recover
        x[2012:2022] = 0.05  # ... so hysteresis merges the two dips
        x[2060:2070] = 0.05  # separated by a genuine busy gap: distinct
        norm = normalize(x, NORM_CFG)
        want = reference_detect_stalls(norm, PERIOD, DET_CFG)
        assert len(want) == 2
        got = run_detector(norm, size)
        assert as_tuples(got) == as_tuples(want)


# ---------------------------------------------------------------------------
# SampleRing
# ---------------------------------------------------------------------------


class TestSampleRing:
    def test_positions_and_views(self):
        ring = SampleRing(capacity=8)
        ring.push(np.arange(5.0))
        assert (ring.first_position, ring.end_position) == (0, 5)
        np.testing.assert_array_equal(ring.view(1, 4), [1.0, 2.0, 3.0])
        ring.drop_before(3)
        assert ring.first_position == 3
        np.testing.assert_array_equal(ring.view(3, 5), [3.0, 4.0])
        with pytest.raises(IndexError):
            ring.view(2, 4)  # dropped
        with pytest.raises(IndexError):
            ring.view(4, 6)  # not yet pushed

    def test_growth_preserves_contents(self):
        ring = SampleRing(capacity=4)
        data = np.arange(100.0)
        for chunk in np.array_split(data, 13):
            ring.push(chunk)
        np.testing.assert_array_equal(ring.view(0, 100), data)

    def test_view_is_zero_copy(self):
        ring = SampleRing(capacity=64)
        ring.push(np.arange(10.0))
        view = ring.view(2, 8)
        assert view.base is not None  # a view, not a copy

    def test_amortized_constant_time_push(self):
        """With a bounded live window, total copying is O(pushed), not
        O(pushed * window): the ring never degrades to per-push
        memmove the way a naive ``np.concatenate`` window would."""
        window = 256
        ring = SampleRing(capacity=4 * window)
        chunk = np.ones(32)
        for _ in range(2000):
            ring.push(chunk)
            ring.drop_before(ring.end_position - window)
        assert ring.pushed_samples == 2000 * 32
        # Every compaction moves <= window live samples and buys at
        # least ``capacity - window`` pushes of headroom, so copy
        # traffic is a small constant fraction of push traffic.
        assert ring.copied_samples <= ring.pushed_samples

    def test_push_timing_budget(self):
        """Wall-clock guard: 1M samples through a windowed ring must be
        fast (generous bound; catches accidental O(n^2) regressions)."""
        window = 2001
        ring = SampleRing(capacity=4096)
        chunk = np.random.default_rng(0).random(1024)
        start = time.perf_counter()
        for _ in range(1000):
            ring.push(chunk)
            ring.drop_before(ring.end_position - window)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"1M windowed pushes took {elapsed:.2f}s"


# ---------------------------------------------------------------------------
# finite_segments
# ---------------------------------------------------------------------------


class TestFiniteSegments:
    def test_empty_chunk(self):
        assert finite_segments(np.empty(0)) == []

    def test_all_finite(self):
        x = np.arange(5.0)
        [(seg, bad)] = finite_segments(x)
        np.testing.assert_array_equal(seg, x)
        assert bad == 0
        assert seg.base is not None  # zero-copy view

    def test_interior_and_trailing_bad_runs(self):
        x = np.array([1.0, np.nan, np.nan, 2.0, 3.0, np.inf])
        pairs = finite_segments(x)
        assert [(list(s), b) for s, b in pairs] == [
            ([1.0], 0),
            ([2.0, 3.0], 2),
            ([], 1),
        ]
        # Bad-run lengths account for every non-finite sample.
        assert sum(b for _, b in pairs) == 3

    def test_leading_bad_run(self):
        x = np.array([np.nan, np.nan, 4.0])
        [(seg, bad)] = finite_segments(x)
        assert (list(seg), bad) == ([4.0], 2)

    def test_all_bad(self):
        pairs = finite_segments(np.full(4, np.nan))
        assert [(list(s), b) for s, b in pairs] == [([], 4)]


# ---------------------------------------------------------------------------
# picklability: campaign workers ship engine state between processes
# ---------------------------------------------------------------------------


class TestPickleMidStream:
    def test_detector_roundtrip_continues_identically(self):
        norm = normalize(make_dip_signal(n=8000, seed=25), NORM_CFG)
        head, tail = norm[:3105], norm[3105:]  # cut mid-signal

        whole = ChunkDetector(PERIOD, DET_CFG)
        want = whole.push(norm) + whole.finish()

        first = ChunkDetector(PERIOD, DET_CFG)
        got = first.push(head)
        resumed = pickle.loads(pickle.dumps(first))
        got += resumed.push(tail) + resumed.finish()
        assert as_tuples(got) == as_tuples(want)

    def test_streaming_facade_roundtrip(self):
        x = make_dip_signal(n=8000, seed=26)
        chunks = np.array_split(x, 10)

        reference = StreamingEmprof(RATE_HZ, CLOCK_HZ, normalizer=NORM_CFG)
        for chunk in chunks:
            reference.process(chunk)
        want = reference.finish()

        live = StreamingEmprof(RATE_HZ, CLOCK_HZ, normalizer=NORM_CFG)
        for chunk in chunks[:4]:
            live.process(chunk)
        live = pickle.loads(pickle.dumps(live))
        for chunk in chunks[4:]:
            live.process(chunk)
        got = live.finish()
        assert as_tuples(got.stalls) == as_tuples(want.stalls)
        assert report_to_dict(got) == report_to_dict(want)

    def test_normalizer_roundtrip(self):
        x = make_dip_signal(n=5000, seed=27)
        whole = ChunkNormalizer(NORM_CFG)
        want = np.concatenate([whole.push(x), whole.flush()])

        first = ChunkNormalizer(NORM_CFG)
        parts = [first.push(x[:2048])]
        resumed = pickle.loads(pickle.dumps(first))
        parts.append(resumed.push(x[2048:]))
        parts.append(resumed.flush())
        np.testing.assert_array_equal(np.concatenate(parts), want)
