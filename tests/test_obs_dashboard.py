"""The HTML dashboard: one self-contained file, no scripts, no network."""

from html.parser import HTMLParser

from repro.obs import cli as obs_cli
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.ledger import RunLedger, record


def _records(times=(1.0, 1.01, 0.99, 1.0, 1.02), label="bench_a"):
    out = []
    for wall in times:
        out.append(
            record(
                kind="bench",
                label=label,
                wall_time_s=wall,
                metrics={
                    "counters": {
                        "events_detected_total": {"value": wall * 100}
                    }
                },
                spans={
                    "detect": {"count": 1, "total_s": wall * 0.6, "mean_s": wall * 0.6},
                    "normalize": {"count": 1, "total_s": wall * 0.3, "mean_s": wall * 0.3},
                },
                quality={"gap_count": 2, "dropped_samples": 10},
            )
        )
    return out


class _Audit(HTMLParser):
    """Parses the document and collects self-containedness violations."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.tags = []
        self.violations = []

    def handle_starttag(self, tag, attrs):
        self.tags.append(tag)
        attrs = dict(attrs)
        if tag == "script":
            self.violations.append("script tag")
        if tag == "link":
            self.violations.append(f"external link: {attrs.get('href')}")
        if tag in ("img", "iframe"):
            self.violations.append(f"external resource tag: {tag}")
        for attribute in ("src", "href"):
            value = attrs.get(attribute, "")
            if value.startswith(("http:", "https:", "//")):
                self.violations.append(f"network reference: {value}")


class TestRenderDashboard:
    def test_single_well_formed_document(self):
        page = render_dashboard(_records())
        assert page.startswith("<!DOCTYPE html>")
        assert page.count("<html") == 1
        assert page.count("</html>") == 1
        parser = _Audit()
        parser.feed(page)
        assert "svg" in parser.tags  # sparklines are inline SVG
        assert "style" in parser.tags  # styling is inline too

    def test_self_contained_no_scripts_no_network(self):
        parser = _Audit()
        parser.feed(render_dashboard(_records()))
        assert parser.violations == []

    def test_sections_present(self):
        page = render_dashboard(_records())
        assert "wall-time trends" in page
        assert "span breakdown" in page
        assert "events_detected_total" in page
        assert "quality" in page
        assert "bench:bench_a" in page

    def test_regression_badge_paired_with_text(self):
        page = render_dashboard(_records(times=(1.0, 1.0, 1.0, 1.0, 3.2)))
        assert "REGRESSION" in page  # never color alone

    def test_stable_history_shows_ok(self):
        page = render_dashboard(_records())
        assert ">ok</span>" in page
        assert "REGRESSION" not in page

    def test_empty_ledger_renders_hint(self):
        page = render_dashboard([])
        assert "ledger is empty" in page
        parser = _Audit()
        parser.feed(page)
        assert parser.violations == []

    def test_labels_are_escaped(self):
        entry = record(
            kind="profile", label="<svg onload=x>", wall_time_s=0.5
        )
        page = render_dashboard([entry])
        assert "<svg onload" not in page
        assert "&lt;svg onload" in page

    def test_bus_health_tiles_render_gauges(self):
        entry = record(
            kind="profile",
            label="cap",
            wall_time_s=0.4,
            metrics={
                "gauges": {
                    "eventbus_dropped_events": {"value": 7.0},
                    "eventbus_queue_depth": {"value": 3.0},
                    "eventbus_sink_errors": {"value": 0.0},
                    "eventbus_sinks": {"value": 2.0},
                }
            },
        )
        page = render_dashboard(_records() + [entry])
        assert "event-bus health" in page
        assert "bus events dropped" in page
        assert "7" in page
        parser = _Audit()
        parser.feed(page)
        assert parser.violations == []

    def test_no_bus_section_without_gauges(self):
        page = render_dashboard(_records())
        assert "event-bus health" not in page

    def test_failed_campaign_runs_surface_in_overlay(self):
        failed = record(
            kind="campaign-run",
            label="camp/r2",
            wall_time_s=0.2,
            extra={"status": "failed", "error": "HardwareMissingError: gone"},
        )
        page = render_dashboard(_records() + [failed])
        assert "failed" in page
        assert "camp/r2" in page


class TestWriteDashboard:
    def test_writes_file_and_creates_parents(self, tmp_path):
        out = write_dashboard(
            tmp_path / "reports" / "dash.html", _records()
        )
        assert out.is_file()
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")


class TestDashboardCli:
    def test_renders_from_ledger(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append_many(_records())
        out = tmp_path / "dash.html"
        code = obs_cli.main(
            ["dashboard", str(ledger.path), "-o", str(out)]
        )
        assert code == obs_cli.EXIT_OK
        assert out.is_file()
        assert "dashboard (5 entries)" in capsys.readouterr().out
        parser = _Audit()
        parser.feed(out.read_text(encoding="utf-8"))
        assert parser.violations == []

    def test_missing_ledger_exits_two(self, tmp_path, capsys):
        code = obs_cli.main(
            ["dashboard", str(tmp_path / "absent.jsonl")]
        )
        assert code == obs_cli.EXIT_BAD_INPUT
        assert "cannot read" in capsys.readouterr().err

    def test_custom_title(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append_many(_records())
        out = tmp_path / "dash.html"
        obs_cli.main(
            [
                "dashboard",
                str(ledger.path),
                "-o",
                str(out),
                "--title",
                "nightly bench",
            ]
        )
        assert "<title>nightly bench</title>" in out.read_text()
