"""The repro-obs live subcommands: serve, tail, stitch, watch."""

import json
import threading

import pytest

from repro.obs import cli as obs_cli
from repro.obs import set_obs_enabled
from repro.obs.cli import EXIT_BAD_INPUT, EXIT_OK
from repro.obs.events import Event, EventBus, NDJSONFileSink
from repro.obs.statusd import StatusServer, query


@pytest.fixture()
def obs_on():
    previous = set_obs_enabled(True)
    yield
    set_obs_enabled(previous)


def _trace_payload(pid, process, trace_id="abcd" * 4, parent=None):
    return {
        "format": "repro-obs-trace",
        "version": 2,
        "pid": pid,
        "process": process,
        "trace_id": trace_id,
        "parent_span_id": parent,
        "dropped": 0,
        "spans": [
            {"span_id": 0, "parent_id": None, "name": f"{process}_root",
             "begin_s": 0.0, "end_s": 1.0, "duration_s": 1.0,
             "depth": 0, "thread": "t", "attrs": {}},
        ],
    }


def _write_events(path, sources=("main", "worker0")):
    bus = EventBus(auto_drain=False)
    bus.add_sink(NDJSONFileSink(path))
    for index, source in enumerate(sources * 4):
        bus.ingest(
            Event(kind="heartbeat", t_unix_s=0.1 * index, seq=index,
                  pid=10 + index, source=source).to_dict()
        )
    bus.drain()
    bus.close()


class TestStitch:
    def test_stitch_explicit_files(self, tmp_path, capsys):
        main_trace = tmp_path / "main.trace.json"
        worker_trace = tmp_path / "worker0.trace.json"
        main_trace.write_text(json.dumps(_trace_payload(1, "main")))
        worker_trace.write_text(
            json.dumps(_trace_payload(2, "worker0", parent="1:0"))
        )
        code = obs_cli.main(["stitch", str(main_trace), str(worker_trace)])
        output = capsys.readouterr().out
        assert code == EXIT_OK
        assert "abcd" * 4 in output
        assert "worker0" in output

    def test_stitch_campaign_directory_with_events(self, tmp_path, capsys):
        (tmp_path / "main.trace.json").write_text(
            json.dumps(_trace_payload(1, "main"))
        )
        _write_events(tmp_path / "events.ndjsonl")
        out_path = tmp_path / "stitched.json"
        code = obs_cli.main(
            ["stitch", str(tmp_path), "--json", str(out_path)]
        )
        assert code == EXIT_OK
        document = json.loads(out_path.read_text())
        assert document["trace_id"] == "abcd" * 4
        assert "worker0" in document["heartbeats"]

    def test_stitch_missing_input_is_bad_input(self, tmp_path, capsys):
        code = obs_cli.main(["stitch", str(tmp_path / "nope.trace.json")])
        assert code == EXIT_BAD_INPUT


class TestServeAndTail:
    def test_serve_preloads_events_and_tail_reads_them(
        self, tmp_path, capsys, obs_on
    ):
        events_path = tmp_path / "events.ndjsonl"
        _write_events(events_path)

        # serve --duration in a thread; grab the advertised port.
        ready = threading.Event()
        ports = []

        original = StatusServer.start

        def patched(self):
            result = original(self)
            ports.append(self.port)
            ready.set()
            return result

        StatusServer.start = patched
        try:
            server_thread = threading.Thread(
                target=obs_cli.main,
                args=(
                    ["serve", "--port", "0", "--events", str(events_path),
                     "--duration", "4"],
                ),
                daemon=True,
            )
            server_thread.start()
            assert ready.wait(5.0)
            reply = query("127.0.0.1", ports[0], {"req": "status"})
            assert reply["events"]["counts"]["heartbeat"] == 8

            code = obs_cli.main(["tail", f"127.0.0.1:{ports[0]}", "-n", "3"])
            output = capsys.readouterr().out
            assert code == EXIT_OK
            assert output.count("heartbeat") >= 3
        finally:
            StatusServer.start = original

    def test_tail_against_dead_server_is_bad_input(self, capsys):
        assert obs_cli.main(["tail", "127.0.0.1:1"]) == EXIT_BAD_INPUT


class TestWatchDemo:
    def test_demo_runs_standalone_and_prints_rates(self, capsys):
        code = obs_cli.main(
            ["watch", "--demo", "--duration", "1.2", "--interval", "0.3"]
        )
        output = capsys.readouterr().out
        assert code == EXIT_OK
        assert "chunks/s" in output
        assert "samples/s" in output

    def test_watch_without_address_or_demo_is_bad_input(self, capsys):
        assert obs_cli.main(["watch"]) == EXIT_BAD_INPUT


class TestFormatEvent:
    def test_line_contains_source_kind_and_attrs(self):
        event = Event(
            kind="quality_flag", t_unix_s=1754690000.0, seq=1, pid=1,
            source="worker2", attrs={"flag": "gap", "dropped": 3},
        )
        line = obs_cli.format_event(event)
        assert "worker2" in line
        assert "quality_flag" in line
        assert "flag=gap" in line
