"""Whole-program driver: cache, baseline, SARIF, and the repo gate.

Covers the incremental cache (hit/miss accounting, invalidation on
content change and on rule-set change, corrupt-cache tolerance), the
adopt-now baseline (suppress, stale detection, regeneration), SARIF
output shape, the pyproject <-> built-in layer-map sync promise, and
the repository-level guarantees: ``src/`` analyzes clean under the
checked-in baseline and a warm cached run stays within the tier-1
time budget.
"""

import json
import time
from pathlib import Path

import pytest

from repro.devtools.baseline import Baseline, write_baseline
from repro.devtools.cache import (
    DEFAULT_CACHE_NAME,
    FactCache,
    extract_outcomes,
    ruleset_signature,
)
from repro.devtools.engine import Finding, analyze_paths
from repro.devtools.graph import DEFAULT_LAYER_CONFIG, load_layer_config
from repro.devtools.reporters import render_json, render_sarif
from repro.devtools.rules import ALL_RULES
from repro.devtools.xrules import ALL_CROSS_RULES, cross_rule_names

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / ".emlint_baseline.json"

RULES = [cls() for cls in ALL_RULES]


def write_module(root: Path, name: str, source: str) -> Path:
    target = root / name
    target.write_text(source)
    return target


# -- cache ------------------------------------------------------------------


def test_cache_warm_run_hits_everything(tmp_path):
    write_module(tmp_path, "a.py", "x = 1\n")
    cache_file = tmp_path / DEFAULT_CACHE_NAME

    _, hits, misses = extract_outcomes(
        [tmp_path], RULES, cache=FactCache(cache_file)
    )
    assert (hits, misses) == (0, 1)
    assert cache_file.is_file()

    _, hits, misses = extract_outcomes(
        [tmp_path], RULES, cache=FactCache(cache_file)
    )
    assert (hits, misses) == (1, 0)


def test_cache_invalidated_on_content_change(tmp_path):
    module = write_module(tmp_path, "a.py", "x = 1\n")
    cache_file = tmp_path / DEFAULT_CACHE_NAME
    extract_outcomes([tmp_path], RULES, cache=FactCache(cache_file))

    module.write_text("x = 2\n")
    outcomes, hits, misses = extract_outcomes(
        [tmp_path], RULES, cache=FactCache(cache_file)
    )
    assert (hits, misses) == (0, 1)
    assert not outcomes[0].from_cache

    # ... and the rewrite is itself cached for the next run.
    _, hits, misses = extract_outcomes(
        [tmp_path], RULES, cache=FactCache(cache_file)
    )
    assert (hits, misses) == (1, 0)


def test_cache_invalidated_on_ruleset_change(tmp_path):
    write_module(tmp_path, "a.py", "x = 1\n")
    cache_file = tmp_path / DEFAULT_CACHE_NAME
    extract_outcomes([tmp_path], RULES, cache=FactCache(cache_file))

    subset = RULES[:2]
    assert ruleset_signature(subset) != ruleset_signature(RULES)
    _, hits, misses = extract_outcomes(
        [tmp_path], subset, cache=FactCache(cache_file)
    )
    assert (hits, misses) == (0, 1)


def test_corrupt_cache_is_treated_as_empty(tmp_path):
    write_module(tmp_path, "a.py", "x = 1\n")
    cache_file = tmp_path / DEFAULT_CACHE_NAME
    cache_file.write_text("{not json")

    outcomes, hits, misses = extract_outcomes(
        [tmp_path], RULES, cache=FactCache(cache_file)
    )
    assert (hits, misses) == (0, 1)
    assert outcomes[0].facts is not None
    # The corrupt file was replaced by a valid document.
    payload = json.loads(cache_file.read_text())
    assert payload["schema"] == "emlint-cache"


def test_cache_prunes_deleted_files(tmp_path):
    keep = write_module(tmp_path, "keep.py", "x = 1\n")
    gone = write_module(tmp_path, "gone.py", "y = 2\n")
    cache_file = tmp_path / DEFAULT_CACHE_NAME
    extract_outcomes([tmp_path], RULES, cache=FactCache(cache_file))

    gone.unlink()
    extract_outcomes([tmp_path], RULES, cache=FactCache(cache_file))
    payload = json.loads(cache_file.read_text())
    assert set(payload["entries"]) == {str(keep)}


def test_cached_findings_identical_to_fresh(tmp_path):
    write_module(tmp_path, "a.py", "def f(x=[]):\n    return x\n")
    cache_file = tmp_path / DEFAULT_CACHE_NAME
    cold = analyze_paths(
        [tmp_path],
        cross_rules=[],
        layers=DEFAULT_LAYER_CONFIG,
        cache_path=cache_file,
    )
    warm = analyze_paths(
        [tmp_path],
        cross_rules=[],
        layers=DEFAULT_LAYER_CONFIG,
        cache_path=cache_file,
    )
    assert warm.cache_misses == 0
    assert warm.findings == cold.findings
    assert any(f.rule == "mutable-default-arg" for f in warm.findings)


# -- baseline ---------------------------------------------------------------


def _finding(rule="hot-loop", path="pkg/mod.py", line=3, message="msg"):
    return Finding(path=path, line=line, col=1, rule=rule, message=message)


def test_baseline_suppresses_matching_finding(tmp_path):
    baseline_path = tmp_path / "base.json"
    write_baseline(baseline_path, [_finding()])
    baseline = Baseline.load(baseline_path)

    kept, suppressed = baseline.apply([_finding(), _finding(rule="layering")])
    assert suppressed == 1
    assert [f.rule for f in kept] == ["layering"]
    assert baseline.stale_entries() == []


def test_baseline_matches_independent_of_line_number(tmp_path):
    baseline_path = tmp_path / "base.json"
    write_baseline(baseline_path, [_finding(line=3)])
    baseline = Baseline.load(baseline_path)
    kept, suppressed = baseline.apply([_finding(line=99)])
    assert (kept, suppressed) == ([], 1)


def test_baseline_stale_entry_surfaced(tmp_path):
    baseline_path = tmp_path / "base.json"
    write_baseline(baseline_path, [_finding(), _finding(message="other")])
    baseline = Baseline.load(baseline_path)
    kept, suppressed = baseline.apply([_finding()])
    assert (kept, suppressed) == ([], 1)
    (stale,) = baseline.stale_entries()
    assert stale.message == "other"


def test_write_baseline_preserves_justifications(tmp_path):
    baseline_path = tmp_path / "base.json"
    write_baseline(baseline_path, [_finding()])
    payload = json.loads(baseline_path.read_text())
    payload["entries"][0]["justification"] = "reviewed: fine"
    baseline_path.write_text(json.dumps(payload))

    previous = Baseline.load(baseline_path)
    write_baseline(
        baseline_path, [_finding(), _finding(rule="layering")], previous
    )
    entries = {
        e["rule"]: e["justification"]
        for e in json.loads(baseline_path.read_text())["entries"]
    }
    assert entries["hot-loop"] == "reviewed: fine"
    assert entries["layering"] == "TODO: justify or fix"


def test_baseline_load_rejects_foreign_document(tmp_path):
    bogus = tmp_path / "base.json"
    bogus.write_text('{"schema": "something-else"}')
    with pytest.raises(ValueError, match="not an emlint-baseline"):
        Baseline.load(bogus)


def test_analyze_paths_reports_baseline_counters(tmp_path):
    pkg = tmp_path / "pkg" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "dsp.py").write_text(
        "import numpy as np\n"
        "def f(sig: np.ndarray):\n"
        "    for v in sig:\n"
        "        pass\n"
    )
    from repro.devtools.graph import LayerConfig

    layers = LayerConfig(layers={"core": ("pkg.core",)}, hot=("pkg.core",))
    unfiltered = analyze_paths([tmp_path], rules=[], layers=layers)
    assert [f.rule for f in unfiltered.findings] == ["hot-loop"]

    baseline_path = tmp_path / "base.json"
    write_baseline(baseline_path, unfiltered.findings)
    filtered = analyze_paths(
        [tmp_path],
        rules=[],
        layers=layers,
        baseline=Baseline.load(baseline_path),
    )
    assert filtered.findings == []
    assert filtered.baseline_suppressed == 1
    assert filtered.stale_baseline == []


# -- reporters --------------------------------------------------------------


def test_sarif_output_schema_sanity():
    from repro.devtools.engine import LintResult

    result = LintResult(findings=[_finding()], files_checked=1)
    log = json.loads(render_sarif(result, {"hot-loop": "vectorize me"}))
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "emlint"
    rules = {r["id"]: r["shortDescription"]["text"] for r in driver["rules"]}
    assert rules["hot-loop"] == "vectorize me"
    (res,) = run["results"]
    assert res["ruleId"] == "hot-loop"
    assert res["level"] == "error"
    assert res["message"]["text"] == "msg"
    location = res["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "pkg/mod.py"
    assert location["region"] == {"startLine": 3, "startColumn": 1}


def test_sarif_rule_table_covers_unregistered_rules():
    from repro.devtools.engine import LintResult

    result = LintResult(findings=[_finding(rule="parse-error")])
    log = json.loads(render_sarif(result))
    (run,) = log["runs"]
    ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "parse-error" in ids
    assert run["results"][0]["ruleIndex"] == ids.index("parse-error")


def test_json_report_carries_cache_and_baseline_counters():
    from repro.devtools.engine import LintResult

    result = LintResult(
        files_checked=3,
        cache_hits=2,
        cache_misses=1,
        baseline_suppressed=4,
        stale_baseline=["hot-loop::x.py::msg"],
    )
    payload = json.loads(render_json(result))
    assert payload["version"] == 2
    assert payload["cache_hits"] == 2
    assert payload["cache_misses"] == 1
    assert payload["baseline_suppressed"] == 4
    assert payload["stale_baseline"] == ["hot-loop::x.py::msg"]


# -- layer-map sync ---------------------------------------------------------


def test_pyproject_layer_map_matches_builtin_default():
    """pyproject.toml [tool.emlint] mirrors DEFAULT_LAYER_CONFIG.

    Both files promise this in comments; this is the test they cite.
    """
    config = load_layer_config(REPO_ROOT / "pyproject.toml")
    assert dict(config.layers) == dict(DEFAULT_LAYER_CONFIG.layers)
    assert dict(config.forbidden) == dict(DEFAULT_LAYER_CONFIG.forbidden)
    assert set(config.stdlib_only) == set(DEFAULT_LAYER_CONFIG.stdlib_only)
    assert set(config.hot) == set(DEFAULT_LAYER_CONFIG.hot)


# -- repository gate --------------------------------------------------------


def test_src_tree_clean_under_checked_in_baseline(tmp_path, monkeypatch):
    """The tentpole acceptance check: src/ passes the full analyzer."""
    monkeypatch.chdir(REPO_ROOT)  # baseline paths are repo-relative
    result = analyze_paths(
        [SRC],
        layers=load_layer_config(REPO_ROOT / "pyproject.toml"),
        cache_path=tmp_path / DEFAULT_CACHE_NAME,
        baseline=Baseline.load(BASELINE),
    )
    assert result.findings == []
    assert result.baseline_suppressed > 0  # the adopt-now worklist
    assert result.stale_baseline == []  # no rotting entries


def test_warm_whole_repo_run_is_fast(tmp_path, monkeypatch):
    """Tier-1 budget guard: a warm cached run re-parses nothing.

    The budget is generous (CI machines vary wildly) but low enough to
    catch the failure mode that matters: the cache silently missing and
    every run paying the cold-parse cost.
    """
    monkeypatch.chdir(REPO_ROOT)
    cache_file = tmp_path / DEFAULT_CACHE_NAME
    analyze_paths([SRC], cache_path=cache_file)  # cold, populates cache

    start = time.perf_counter()
    warm = analyze_paths([SRC], cache_path=cache_file)
    elapsed = time.perf_counter() - start
    assert warm.cache_misses == 0
    assert warm.cache_hits == warm.files_checked
    assert elapsed < 5.0, f"warm whole-repo lint took {elapsed:.2f}s"


def test_every_baseline_entry_is_justified():
    """Adopt-now debt must carry a reviewed one-line justification."""
    payload = json.loads(BASELINE.read_text())
    for entry in payload["entries"]:
        justification = entry.get("justification", "")
        assert justification and not justification.startswith("TODO"), (
            f"baseline entry for {entry['rule']} at {entry['path']} "
            "has no justification"
        )


def test_cross_rule_registry_complete():
    names = set(cross_rule_names())
    assert names == {
        "layering",
        "import-cycle",
        "shared-mutable-state",
        "fork-unsafety",
        "unpicklable-target",
        "signal-handler",
        "hot-loop",
    }
    assert len(ALL_CROSS_RULES) == len(names)
