"""Tier-1 gate: the source tree must be emlint-clean.

Runs the linter programmatically over ``src/`` and asserts zero
findings, so any regression (a new unit mix-up, a global RNG, an
unfrozen config, a float ``==``, a mutable default) fails pytest
immediately.  Also checks the CLI contract: exit 0 on the clean tree,
exit 1 with a file:line diagnostic on a seeded violation of each rule.
"""

from pathlib import Path

import pytest

from repro.devtools.engine import lint_paths
from repro.devtools.lint import main
from repro.devtools.rules import rule_names

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

# One minimal violating module per rule, used to prove the gate trips.
VIOLATIONS = {
    "unit-safety": "total = duration_cycles + gap_samples\n",
    "determinism": "import numpy as np\nx = np.random.rand(4)\n",
    "config-immutability": (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class DetectorConfig:\n"
        "    threshold: float = 0.5\n"
    ),
    "float-equality": "def f(a: float, b: float):\n    return a == b\n",
    "mutable-default-arg": "def f(items=[]):\n    return items\n",
    "silent-except": (
        "def f():\n"
        "    try:\n"
        "        return 1\n"
        "    except Exception:\n"
        "        pass\n"
    ),
}


def test_source_tree_is_lint_clean():
    result = lint_paths([SRC])
    assert result.files_checked > 50
    details = "\n".join(f.format() for f in result.findings)
    assert result.findings == [], f"emlint regressions in src/:\n{details}"


def test_obs_package_is_lint_clean():
    """The observability layer holds to the same rules as the pipeline."""
    result = lint_paths([SRC / "obs"])
    assert result.files_checked >= 6
    details = "\n".join(f.format() for f in result.findings)
    assert result.findings == [], f"emlint regressions in src/repro/obs:\n{details}"


def test_cli_exits_zero_on_clean_tree(capsys):
    assert main([str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


@pytest.mark.parametrize("rule", sorted(VIOLATIONS))
def test_cli_flags_seeded_violation(rule, tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATIONS[rule])
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    # file:line diagnostics naming the violated rule
    assert f"{bad}:" in out
    assert rule in out


def test_cli_rejects_unknown_rule(tmp_path, capsys):
    assert main(["--rules", "no-such-rule", str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "no-such-rule" in err


def test_cli_rejects_empty_rules(tmp_path, capsys):
    # `--rules ""` must not silently lint with zero rules.
    assert main(["--rules", "", str(tmp_path)]) == 2
    assert "at least one rule" in capsys.readouterr().err


def test_cli_rejects_missing_path(capsys):
    # A typo'd path must not pass as "0 findings in 0 files".
    assert main(["/no/such/path"]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_cli_flags_syntax_error(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    assert main([str(bad)]) == 1
    assert "parse-error" in capsys.readouterr().out


def test_cli_lists_all_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in rule_names():
        assert name in out
