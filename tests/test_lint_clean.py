"""Tier-1 gate: the source tree must be emlint-clean.

Runs the analyzer programmatically over ``src/`` and asserts zero
findings, so any regression (a new unit mix-up, a global RNG, an
unfrozen config, a float ``==``, a mutable default) fails pytest
immediately.  Also checks the CLI contract: exit 0 on the clean tree
(under the checked-in adopt-now baseline), exit 1 with a file:line
diagnostic on a seeded violation of each rule, and exit 2 on usage
errors — including ``--list-rules`` combined with an unknown
``--rules`` name.
"""

from pathlib import Path

import pytest

from repro.devtools.engine import lint_paths
from repro.devtools.lint import main
from repro.devtools.rules import rule_names
from repro.devtools.xrules import cross_rule_names

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"

# One minimal violating module per rule, used to prove the gate trips.
VIOLATIONS = {
    "unit-safety": "total = duration_cycles + gap_samples\n",
    "determinism": "import numpy as np\nx = np.random.rand(4)\n",
    "config-immutability": (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class DetectorConfig:\n"
        "    threshold: float = 0.5\n"
    ),
    "float-equality": "def f(a: float, b: float):\n    return a == b\n",
    "mutable-default-arg": "def f(items=[]):\n    return items\n",
    "silent-except": (
        "def f():\n"
        "    try:\n"
        "        return 1\n"
        "    except Exception:\n"
        "        pass\n"
    ),
}


def test_source_tree_is_lint_clean():
    result = lint_paths([SRC])
    assert result.files_checked > 50
    details = "\n".join(f.format() for f in result.findings)
    assert result.findings == [], f"emlint regressions in src/:\n{details}"


def test_obs_package_is_lint_clean():
    """The observability layer holds to the same rules as the pipeline."""
    result = lint_paths([SRC / "obs"])
    assert result.files_checked >= 6
    details = "\n".join(f.format() for f in result.findings)
    assert result.findings == [], f"emlint regressions in src/repro/obs:\n{details}"


def test_cli_exits_zero_on_clean_tree(tmp_path, capsys, monkeypatch):
    """The full analyzer (cross rules included) passes under the baseline."""
    monkeypatch.chdir(REPO_ROOT)  # baseline paths are repo-relative
    argv = [
        str(SRC),
        "--baseline",
        str(REPO_ROOT / ".emlint_baseline.json"),
        "--cache",
        str(tmp_path / "cache.json"),
    ]
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert "0 findings" in captured.out
    assert "baselined" in captured.out
    assert "stale baseline" not in captured.err


@pytest.mark.parametrize("rule", sorted(VIOLATIONS))
def test_cli_flags_seeded_violation(rule, tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATIONS[rule])
    assert main([str(bad), "--no-cache"]) == 1
    out = capsys.readouterr().out
    # file:line diagnostics naming the violated rule
    assert f"{bad}:" in out
    assert rule in out


def test_cli_rejects_unknown_rule(tmp_path, capsys):
    assert main(["--rules", "no-such-rule", str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "no-such-rule" in err
    # the diagnostic enumerates every known rule, cross rules included
    assert "hot-loop" in err


def test_cli_list_rules_with_unknown_rule_is_usage_error(capsys):
    # `--list-rules --rules bogus` must not exit 0 with a listing: the
    # command line is wrong and the caller must find out (exit 2).
    assert main(["--list-rules", "--rules", "bogus"]) == 2
    captured = capsys.readouterr()
    assert "unknown rule 'bogus'" in captured.err
    assert captured.out == ""


def test_cli_rejects_empty_rules(tmp_path, capsys):
    # `--rules ""` must not silently lint with zero rules.
    assert main(["--rules", "", str(tmp_path)]) == 2
    assert "at least one rule" in capsys.readouterr().err


def test_cli_rejects_missing_path(capsys):
    # A typo'd path must not pass as "0 findings in 0 files".
    assert main(["/no/such/path"]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_cli_rejects_bad_jobs(tmp_path, capsys):
    assert main(["--jobs", "0", str(tmp_path)]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_cli_rejects_broken_baseline(tmp_path, capsys):
    bogus = tmp_path / "base.json"
    bogus.write_text("{broken")
    assert main(["--baseline", str(bogus), str(tmp_path)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_cli_flags_syntax_error(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    assert main([str(bad), "--no-cache"]) == 1
    assert "parse-error" in capsys.readouterr().out


def test_cli_lists_all_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in rule_names():
        assert f"{name} [per-file]" in out
    for name in cross_rule_names():
        assert f"{name} [cross-module]" in out


def test_cli_list_rules_honors_subset(capsys):
    assert main(["--list-rules", "--rules", "hot-loop,unit-safety"]) == 0
    out = capsys.readouterr().out
    assert "hot-loop" in out
    assert "unit-safety" in out
    assert "layering" not in out


def test_cli_write_baseline_roundtrip(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(items=[]):\n    return items\n")
    baseline = tmp_path / "base.json"
    assert main([str(bad), "--no-cache", "--write-baseline", str(baseline)]) == 0
    assert "wrote 1 baseline entry" in capsys.readouterr().out
    # The same tree now passes under the baseline it just wrote.
    assert main([str(bad), "--no-cache", "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out
