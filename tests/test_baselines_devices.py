"""Unit tests for the perf baseline and the device presets."""

import numpy as np
import pytest

from repro.baselines.perf_counters import (
    PerfCounterConfig,
    PerfCounterModel,
    PerfSampler,
)
from repro.devices import (
    ALCATEL,
    DEVICE_NAMES,
    OLIMEX,
    SAMSUNG,
    alcatel,
    by_name,
    default_channel,
    olimex,
    samsung,
    sesc,
)
from repro.sim.trace import DLOAD, GroundTruth, MissRecord


class TestPerfCounterModel:
    def test_reports_at_least_truth(self):
        model = PerfCounterModel(PerfCounterConfig(seed=0))
        assert model.report(1024, 2e-3) >= 1024

    def test_zero_duration_reports_truth(self):
        model = PerfCounterModel(
            PerfCounterConfig(burst_rate_per_s=0, base_rate_per_s=0)
        )
        assert model.report(500, 0.0) == 500

    def test_paper_anecdote_band(self):
        # 1024 engineered misses on a ~2 ms run: perf reported
        # 32,768 +- 14,543 in the paper.
        model = PerfCounterModel(PerfCounterConfig(seed=3))
        reports = model.report_runs(1024, 2e-3, 300)
        assert 22_000 < reports.mean() < 45_000
        assert 8_000 < reports.std() < 22_000

    def test_run_to_run_variance_positive(self):
        model = PerfCounterModel()
        reports = model.report_runs(1024, 2e-3, 20)
        assert len(set(reports.tolist())) > 1

    def test_longer_runs_accumulate_more_background(self):
        short = PerfCounterModel(PerfCounterConfig(seed=1)).report_runs(0, 1e-3, 50)
        long = PerfCounterModel(PerfCounterConfig(seed=1)).report_runs(0, 1e-2, 50)
        assert long.mean() > 3 * short.mean()

    def test_report_for_ground_truth(self):
        truth = GroundTruth(
            misses=[MissRecord(0, DLOAD, 0, 0, 280)], total_cycles=1_000_000
        )
        model = PerfCounterModel()
        assert model.report_for(truth, 1e9) >= 1

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            PerfCounterModel().report(-1, 1.0)
        with pytest.raises(ValueError):
            PerfCounterModel().report_runs(10, 1.0, 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PerfCounterConfig(burst_rate_per_s=-1)
        with pytest.raises(ValueError):
            PerfCounterConfig(burst_shape=0)


class TestPerfSampler:
    def make_truth(self, counts):
        misses = []
        cycle = 0
        for region, n in counts.items():
            for _ in range(n):
                misses.append(
                    MissRecord(len(misses), DLOAD, 0, cycle, cycle + 280, region=region)
                )
                cycle += 1000
        return GroundTruth(misses=misses, total_cycles=cycle + 1000)

    def test_fine_sampling_attributes_well(self):
        truth = self.make_truth({1: 500, 2: 1500})
        sampler = PerfSampler(threshold=10)
        assert sampler.attribution_error(truth) < 0.05

    def test_coarse_sampling_attributes_poorly(self):
        truth = self.make_truth({1: 40, 2: 120})
        fine = PerfSampler(threshold=8).attribution_error(truth)
        coarse = PerfSampler(threshold=100).attribution_error(truth)
        assert coarse >= fine

    def test_overhead_scales_with_rate(self):
        truth = self.make_truth({1: 1000})
        fine = PerfSampler(threshold=10).profile(truth)
        coarse = PerfSampler(threshold=500).profile(truth)
        assert fine.overhead_cycles > coarse.overhead_cycles
        assert fine.samples == 100
        assert coarse.samples == 2

    def test_no_misses_no_error(self):
        truth = GroundTruth(total_cycles=1000)
        assert PerfSampler(threshold=10).attribution_error(truth) == 0.0

    def test_no_samples_is_total_error(self):
        truth = self.make_truth({1: 5})
        assert PerfSampler(threshold=100).attribution_error(truth) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PerfSampler(threshold=0)
        with pytest.raises(ValueError):
            PerfSampler(interrupt_cycles=-1)


class TestDevicePresets:
    def test_table1_frequencies(self):
        assert alcatel().clock_hz == pytest.approx(1.1e9)
        assert samsung().clock_hz == pytest.approx(0.8e9)
        assert olimex().clock_hz == pytest.approx(1.008e9)

    def test_llc_sizes(self):
        # Section VI-A: Alcatel 1 MB, the others 256 KB.
        assert alcatel().llc.size_bytes == 1024 * 1024
        assert samsung().llc.size_bytes == 256 * 1024
        assert olimex().llc.size_bytes == 256 * 1024

    def test_only_samsung_has_prefetcher(self):
        assert samsung().prefetcher_enabled
        assert not olimex().prefetcher_enabled
        assert not alcatel().prefetcher_enabled

    def test_native_sample_rates_are_50mhz(self):
        for factory in (alcatel, samsung, olimex):
            assert factory().sample_rate_hz == pytest.approx(50e6, rel=0.01)

    def test_memory_latency_ns_similar(self):
        # "their main memory latencies (in nanoseconds) are very similar"
        # (Samsung/Olimex); Alcatel is somewhat faster.
        oli = olimex().memory.access_latency / olimex().clock_hz
        sam = samsung().memory.access_latency / samsung().clock_hz
        assert oli == pytest.approx(sam, rel=0.3)

    def test_refresh_interval_is_70us(self):
        for factory in (alcatel, samsung, olimex):
            cfg = factory()
            assert cfg.memory.refresh_interval / cfg.clock_hz == pytest.approx(
                70e-6, rel=0.01
            )

    def test_phones_have_more_contention(self):
        assert samsung().memory.contention_prob > olimex().memory.contention_prob
        assert alcatel().memory.contention_prob > olimex().memory.contention_prob

    def test_sesc_matches_paper(self):
        cfg = sesc()
        assert cfg.core.width == 4
        assert not cfg.memory.refresh_enabled
        assert cfg.power.bin_cycles == 20

    def test_by_name(self):
        for name in DEVICE_NAMES:
            assert by_name(name).name == name

    def test_by_name_unknown(self):
        with pytest.raises(ValueError):
            by_name("iphone")

    def test_by_name_kwargs(self):
        assert by_name(OLIMEX, bin_cycles=5).power.bin_cycles == 5

    def test_default_channels(self):
        oli = default_channel(OLIMEX)
        sam = default_channel(SAMSUNG)
        alc = default_channel(ALCATEL)
        # The open IoT board probes cleaner than the phones.
        assert oli.snr_db > sam.snr_db
        assert oli.snr_db > alc.snr_db

    def test_default_channel_unknown(self):
        with pytest.raises(ValueError):
            default_channel("iphone")
