"""End-to-end fuzz: EMPROF's accuracy envelope on arbitrary programs.

Each case draws a random multi-phase program, runs the complete chain
(simulate -> EM apparatus -> receiver -> EMPROF), and validates the
profile against ground truth.  Asserted envelope:

* stall-cycle accuracy stays at paper level (> 95%) on the clean
  simulator trace and > 90% through the noisy EM path;
* detection matches the *observable* stall groups closely;
* no pathological overcounting (precision stays high).

These bounds intentionally sit below the tuned-benchmark numbers: the
fuzzer generates programs nobody calibrated for.
"""

import pytest

from repro.core.profiler import Emprof
from repro.core.validate import validate_profile
from repro.devices import olimex, sesc
from repro.experiments.runner import run_device, run_simulator
from repro.workloads.synthetic import RandomWorkload

SEEDS = list(range(8))


class TestFuzzSimulatorPath:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_program_accuracy(self, seed):
        workload = RandomWorkload(seed=seed)
        run = run_simulator(workload, config=sesc())
        truth = run.result.ground_truth
        v = validate_profile(run.report, truth)
        if truth.memory_stall_count() < 10:
            pytest.skip("program drew almost no misses")
        assert v.stall_accuracy > 0.95, (seed, v)
        # The detected count must land between the pessimistic bound
        # (ground-truth stalls merged at one-sample resolution) and the
        # raw stall count - the detector sometimes resolves sub-sample
        # gaps the merge model collapses, which is better, not worse.
        assert 0.88 * v.true_groups <= v.detected_misses, (seed, v)
        assert v.detected_misses <= 1.05 * truth.memory_stall_count(), (seed, v)
        assert v.match.precision > 0.9, (seed, v)


class TestFuzzDevicePath:
    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_random_program_through_em_chain(self, seed):
        workload = RandomWorkload(seed=seed)
        run = run_device(workload, olimex(), bandwidth_hz=40e6)
        truth = run.result.ground_truth
        if truth.memory_stall_count() < 10:
            pytest.skip("program drew almost no misses")
        v = validate_profile(run.report, truth)
        assert v.stall_accuracy > 0.90, (seed, v)
        assert v.match.precision > 0.85, (seed, v)


class TestRandomWorkload:
    def test_replayable(self):
        a = RandomWorkload(seed=3)
        b = RandomWorkload(seed=3)
        assert [p.kind for p in a.phases] == [p.kind for p in b.phases]
        cfg = sesc()
        assert list(a.instructions(cfg))[:100] == list(b.instructions(cfg))[:100]

    def test_seeds_differ(self):
        kinds = {tuple(p.kind for p in RandomWorkload(seed=s).phases) for s in range(10)}
        assert len(kinds) > 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWorkload(max_phases=1)
        with pytest.raises(ValueError):
            RandomWorkload(size=0)
