"""Integration tests of the experiment drivers (tables and figures)."""

import numpy as np
import pytest

from repro.experiments import tables
from repro.experiments.figures import (
    fig1_stall_dip,
    fig2_hit_vs_miss,
    fig3a_hidden_misses,
    fig3b_overlapped_misses,
    fig10_dual_probe,
    fig13_boot_profile,
)


class TestTables:
    def test_table1_matches_paper_specs(self):
        rows = {r.device: r for r in tables.table1_rows()}
        assert rows["alcatel"].frequency_hz == pytest.approx(1.1e9)
        assert rows["samsung"].frequency_hz == pytest.approx(0.8e9)
        assert rows["olimex"].frequency_hz == pytest.approx(1.008e9)
        assert rows["alcatel"].llc_bytes == 1024 * 1024
        assert rows["samsung"].prefetcher

    def test_table2_small_grid_accuracy(self):
        rows = tables.table2_rows(grid=((128, 4),), devices=("olimex",))
        assert len(rows) == 1
        assert rows[0].accuracy > 0.95

    def test_table2_formatting(self):
        rows = tables.table2_rows(grid=((64, 4),), devices=("olimex",))
        text = tables.format_table2(rows)
        assert "olimex" in text
        assert "%" in text

    def test_table3_micro_rows(self):
        rows = tables.table3_micro_rows(grid=((128, 4),))
        assert rows[0].miss_accuracy > 0.95
        assert rows[0].stall_accuracy > 0.95

    def test_table3_spec_row(self):
        rows = tables.table3_spec_rows(benchmarks=("twolf",), scale=0.35)
        assert rows[0].benchmark == "twolf"
        assert rows[0].miss_accuracy > 0.8
        assert rows[0].stall_accuracy > 0.95

    def test_table4_rows_structure(self):
        rows = tables.table4_rows(
            benchmarks=("vpr",), grid=(), devices=("olimex", "alcatel"), scale=0.35
        )
        assert len(rows) == 2
        text = tables.format_table4(rows)
        assert "Average" in text

    def test_perf_anecdote_matches_paper(self):
        pa = tables.perf_anecdote(runs=300, seed=1)
        # Paper: mean 32,768, std 14,543 for 1,024 true misses.
        assert pa.true_misses == 1024
        assert 24_000 < pa.mean_reported < 43_000
        assert 8_000 < pa.std_reported < 22_000


class TestFigures:
    def test_fig1_shows_a_dip(self):
        fig = fig1_stall_dip(tm=32)
        assert len(fig.signal) > 0
        assert fig.moving_avg is not None
        # The dip bottoms well below the busy level around it.
        assert fig.signal.min() < 0.5 * np.median(fig.signal)
        # Olimex stalls run ~300 ns (Section III-C).
        assert 150e-9 < fig.annotations["stall_seconds"] < 600e-9

    def test_fig2_order_of_magnitude_contrast(self):
        hit, miss = fig2_hit_vs_miss()
        # Fig. 2: LLC-miss stalls are an order of magnitude longer
        # than the brief LLC-hit stalls.
        assert hit.annotations["mean_brief_stall_cycles"] < 30
        assert miss.annotations["mean_memory_stall_cycles"] > 200

    def test_fig3a_misses_without_stalls(self):
        r = fig3a_hidden_misses()
        assert r.hidden_misses >= 0.8 * r.total_misses
        assert r.detected <= r.total_misses - r.hidden_misses + 1

    def test_fig3b_overlap_underreports_misses(self):
        r = fig3b_overlapped_misses()
        # Overlapped I$/D$ misses collapse into fewer detected stalls.
        assert r.max_misses_per_stall >= 2
        assert r.detected < r.total_misses

    def test_fig10_dips_coincide_with_memory_activity(self):
        r = fig10_dual_probe(tm=40, cm=10)
        assert r.coincidence > 0.9
        assert len(r.processor.signal) == len(r.memory.signal)

    def test_fig13_two_boot_runs_similar_but_distinct(self):
        runs = fig13_boot_profile(scale=0.3)
        assert len(runs) == 2
        a, b = runs
        assert a.total_misses > 50
        # Similar totals (same boot flow) ...
        assert abs(a.total_misses - b.total_misses) < 0.3 * a.total_misses
        # ... but not the identical trace (different run).
        n = min(len(a.miss_rate), len(b.miss_rate))
        assert not np.array_equal(a.miss_rate[:n], b.miss_rate[:n])
