"""Unit tests for moving min/max normalization."""

import numpy as np
import pytest

from repro.core.normalize import (
    NormalizerConfig,
    moving_average,
    moving_extrema,
    normalize,
)


def square_wave(n=2000, period=100, low=0.1, high=0.9):
    x = np.full(n, high)
    for start in range(0, n, period):
        x[start : start + period // 4] = low
    return x


class TestMovingAverage:
    def test_constant_signal_unchanged(self):
        x = np.full(100, 3.0)
        np.testing.assert_allclose(moving_average(x, 9), 3.0)

    def test_window_one_is_identity(self):
        x = np.arange(10.0)
        np.testing.assert_array_equal(moving_average(x, 1), x)

    def test_smooths_impulse(self):
        x = np.zeros(51)
        x[25] = 1.0
        y = moving_average(x, 5)
        assert y[25] == pytest.approx(0.2)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average(np.zeros(10), 0)


class TestMovingExtrema:
    def test_tracks_local_extremes(self):
        x = square_wave()
        mmin, mmax = moving_extrema(x, 201)
        assert np.all(mmin <= x)
        assert np.all(mmax >= x)
        # Interior windows span both levels.
        assert mmin[500] == pytest.approx(0.1)
        assert mmax[500] == pytest.approx(0.9)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_extrema(np.zeros(10), -1)


class TestNormalize:
    def test_output_in_unit_range(self):
        x = square_wave()
        y = normalize(x, NormalizerConfig(window_samples=301))
        assert y.min() >= 0.0
        assert y.max() <= 1.0

    def test_dips_map_to_zero_busy_to_one(self):
        x = square_wave()
        y = normalize(x, NormalizerConfig(window_samples=301))
        assert y[505] == pytest.approx(0.0, abs=0.05)  # inside a dip
        assert y[560] == pytest.approx(1.0, abs=0.05)  # busy level

    def test_gain_invariance(self):
        x = square_wave()
        cfg = NormalizerConfig(window_samples=301)
        y1 = normalize(x, cfg)
        y2 = normalize(x * 7.3, cfg)
        np.testing.assert_allclose(y1, y2, atol=1e-12)

    def test_slow_drift_compensated(self):
        x = square_wave(4000)
        drift = 1.0 + 0.3 * np.sin(np.linspace(0, 2 * np.pi, 4000))
        cfg = NormalizerConfig(window_samples=301)
        y = normalize(x * drift, cfg)
        base = normalize(x, cfg)
        # Same dips detected at the same places despite the drift.
        assert np.array_equal(y < 0.45, base < 0.45)

    def test_flat_signal_normalizes_to_one(self):
        # No dynamic range -> no dips -> everything reads busy.
        x = np.full(1000, 0.8) + 0.001 * np.sin(np.arange(1000))
        y = normalize(x, NormalizerConfig(window_samples=101))
        assert np.all(y == 1.0)

    def test_min_range_ratio_guards_ripple(self):
        # 20% ripple, below the default 35% range requirement.
        x = 0.8 + 0.08 * np.sign(np.sin(np.arange(2000) / 7))
        y = normalize(x, NormalizerConfig(window_samples=201))
        assert np.all(y == 1.0)

    def test_empty_signal(self):
        assert normalize(np.array([])).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            normalize(np.zeros((3, 3)))

    def test_smoothing_option(self):
        x = square_wave()
        x[760] = 5.0  # a one-sample glitch in a busy stretch
        smoothed = normalize(x, NormalizerConfig(window_samples=301, smooth_samples=5))
        raw = normalize(x, NormalizerConfig(window_samples=301))
        # Smoothing keeps the glitch from dragging nearby busy samples
        # toward the dip threshold.
        busy_idx = 780
        assert smoothed[busy_idx] > raw[busy_idx]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NormalizerConfig(window_samples=2)
        with pytest.raises(ValueError):
            NormalizerConfig(min_range_ratio=1.5)
        with pytest.raises(ValueError):
            NormalizerConfig(smooth_samples=0)
