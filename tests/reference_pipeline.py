"""Frozen seed implementations for differential testing.

These are verbatim (minus obs instrumentation and runtime contracts)
copies of the per-sample/per-run pipeline as it existed before the
vectorized chunked engine (:mod:`repro.core.engine`) replaced it:

* :class:`ReferenceOnlineNormalizer` - monotonic-deque sliding min/max
* :class:`ReferenceStreamingDetector` - per-sample dip state machine
* :func:`reference_detect_stalls` - the batch run/merge/refine passes
* :func:`reference_finite_segments` - the per-sample finite scanner
* :class:`ReferenceStreamingEmprof` - the streaming facade over the
  reference components (sharing the real :class:`QualityMonitor`)
* :func:`reference_merge_intervals` / :func:`reference_match_stalls` -
  the greedy interval validators

``tests/test_engine_equivalence.py`` asserts the production pipeline
is bit-identical to these across signals, fault families and
chunkings.  Do not "improve" this module: its value is being the
frozen seed semantics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.detect import DetectorConfig
from repro.core.events import DetectedStall, ProfileReport
from repro.core.normalize import NormalizerConfig
from repro.core.validate import MatchResult
from repro.faults.quality import QualityConfig, QualityMonitor


class ReferenceOnlineNormalizer:
    """The seed OnlineNormalizer: monotonic deques, per-sample emission."""

    def __init__(self, config: Optional[NormalizerConfig] = None):
        cfg = config if config is not None else NormalizerConfig()
        if cfg.smooth_samples != 1:
            raise ValueError("online normalization does not support pre-smoothing")
        self.config = cfg
        self._half = cfg.window_samples // 2
        self._buffer: Deque[float] = deque()
        self._buffer_start = 0
        self._next_in = 0
        self._next_out = 0
        self._min_q: Deque[tuple] = deque()
        self._max_q: Deque[tuple] = deque()

    def _admit(self, pos: int, value: float) -> None:
        self._buffer.append(value)
        while self._min_q and self._min_q[-1][1] >= value:
            self._min_q.pop()
        self._min_q.append((pos, value))
        while self._max_q and self._max_q[-1][1] <= value:
            self._max_q.pop()
        self._max_q.append((pos, value))

    def _evict_before(self, pos: int) -> None:
        while self._buffer_start < pos:
            self._buffer.popleft()
            self._buffer_start += 1
        while self._min_q and self._min_q[0][0] < pos:
            self._min_q.popleft()
        while self._max_q and self._max_q[0][0] < pos:
            self._max_q.popleft()

    def _emit_one(self) -> float:
        i = self._next_out
        self._evict_before(i - self._half)
        mmin = self._min_q[0][1]
        mmax = self._max_q[0][1]
        x = self._buffer[i - self._buffer_start]
        self._next_out += 1
        span = mmax - mmin
        if span <= self.config.min_range_ratio * mmax or span <= 0:
            return 1.0
        return float(np.clip((x - mmin) / span, 0.0, 1.0))

    def push(self, chunk: np.ndarray) -> np.ndarray:
        out: List[float] = []
        arr = np.asarray(chunk, dtype=np.float64)
        for value in arr:
            self._admit(self._next_in, float(value))
            self._next_in += 1
            while self._next_out + self._half < self._next_in:
                out.append(self._emit_one())
        return np.asarray(out)

    def flush(self) -> np.ndarray:
        out: List[float] = []
        while self._next_out < self._next_in:
            out.append(self._emit_one())
        return np.asarray(out)

    @property
    def latency_samples(self) -> int:
        return self._half


@dataclass
class _RefDipState:
    start: int
    end: int
    min_level: float
    below_samples: int
    enter_prev: float
    start_value: float = 0.0
    end_prev_value: float = 0.0
    exit_value: float = 0.0
    gap_start: Optional[int] = None
    gap_max: float = -np.inf


class ReferenceStreamingDetector:
    """The seed StreamingDetector: one Python iteration per sample."""

    def __init__(
        self,
        sample_period_cycles: float,
        config: Optional[DetectorConfig] = None,
    ):
        if sample_period_cycles <= 0:
            raise ValueError("sample period must be positive")
        self.period = float(sample_period_cycles)
        self.config = config if config is not None else DetectorConfig()
        self._pos = 0
        self._prev = 1.0
        self._open: Optional[_RefDipState] = None

    def _refine(self, a: float, b: float, boundary: int) -> float:
        if boundary <= 0:
            return float(boundary)
        if a == b:
            return float(boundary)
        frac = (self.config.threshold - a) / (b - a)
        if not 0.0 <= frac <= 1.0:
            return float(boundary)
        return boundary - 1 + frac

    def _finalize(self, dip, exit_value: float) -> Optional[DetectedStall]:
        cfg = self.config
        if dip.end - dip.start < cfg.min_duration_samples:
            return None
        begin = self._refine(dip.enter_prev, dip.start_value, dip.start)
        finish = self._refine(dip.end_prev_value, exit_value, dip.end)
        if finish <= begin:
            return None
        duration = (finish - begin) * self.period
        if duration < cfg.min_duration_cycles:
            return None
        return DetectedStall(
            begin_sample=begin,
            end_sample=finish,
            begin_cycle=begin * self.period,
            end_cycle=finish * self.period,
            min_level=dip.min_level,
            is_refresh=duration >= cfg.refresh_min_cycles,
        )

    def push(self, normalized: np.ndarray) -> List[DetectedStall]:
        cfg = self.config
        out: List[DetectedStall] = []
        arr = np.asarray(normalized, dtype=np.float64)
        for value in arr:
            v = float(value)
            i = self._pos
            below = v < cfg.threshold
            dip = self._open
            if dip is None:
                if below:
                    dip = _RefDipState(
                        start=i, end=i + 1, min_level=v,
                        below_samples=1, enter_prev=self._prev,
                    )
                    dip.start_value = v
                    dip.end_prev_value = v
                    self._open = dip
            else:
                in_gap = dip.gap_start is not None
                if below:
                    if in_gap:
                        gap_len = i - dip.gap_start
                        if (
                            dip.gap_max < cfg.recover_threshold
                            or gap_len <= cfg.merge_gap_samples
                        ):
                            dip.gap_start = None
                            dip.gap_max = -np.inf
                        else:
                            stall = self._finalize(dip, dip.exit_value)
                            if stall is not None:
                                out.append(stall)
                            dip = _RefDipState(
                                start=i, end=i + 1, min_level=v,
                                below_samples=1, enter_prev=self._prev,
                            )
                            dip.start_value = v
                            dip.end_prev_value = v
                            self._open = dip
                            self._prev = v
                            self._pos += 1
                            continue
                    dip.end = i + 1
                    dip.below_samples += 1
                    dip.min_level = min(dip.min_level, v)
                    dip.end_prev_value = v
                else:
                    if not in_gap:
                        dip.gap_start = i
                        dip.exit_value = v
                    dip.gap_max = max(dip.gap_max, v)
            self._prev = v
            self._pos += 1
        return out

    def finish(self) -> List[DetectedStall]:
        out: List[DetectedStall] = []
        dip = self._open
        if dip is not None:
            exit_value = (
                dip.end_prev_value if dip.gap_start is None else dip.exit_value
            )
            stall = self._finalize(dip, exit_value)
            if stall is not None:
                out.append(stall)
            self._open = None
        return out

    def resync(self) -> List[DetectedStall]:
        out = self.finish()
        self._prev = 1.0
        return out


def _runs_below(mask: np.ndarray) -> List[Tuple[int, int]]:
    if len(mask) == 0:
        return []
    padded = np.concatenate(([False], mask, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    return list(zip(edges[0::2].tolist(), edges[1::2].tolist()))


def _merge_runs(runs, max_gap):
    if not runs or max_gap <= 0:
        return runs
    merged = [runs[0]]
    for start, end in runs[1:]:
        last_start, last_end = merged[-1]
        if start - last_end <= max_gap:
            merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged


def _merge_hysteresis(runs, normalized, recover):
    if not runs:
        return runs
    merged = [runs[0]]
    for start, end in runs[1:]:
        last_start, last_end = merged[-1]
        if float(normalized[last_end:start].max()) < recover:
            merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged


def _refine_edge(normalized, index, threshold):
    n = len(normalized)
    lo, hi = index - 1, index
    if lo < 0 or hi >= n:
        return float(index)
    a = float(normalized[lo])
    b = float(normalized[hi])
    if a == b:
        return float(index)
    frac = (threshold - a) / (b - a)
    if not 0.0 <= frac <= 1.0:
        return float(index)
    return lo + frac


def reference_detect_stalls(
    normalized: np.ndarray,
    sample_period_cycles: float,
    config: Optional[DetectorConfig] = None,
) -> List[DetectedStall]:
    """The seed batch detector: run extraction + two merge passes."""
    cfg = config if config is not None else DetectorConfig()
    x = np.asarray(normalized, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("signal must be one-dimensional")
    if sample_period_cycles <= 0:
        raise ValueError("sample period must be positive")

    runs = _runs_below(x < cfg.threshold)
    runs = _merge_runs(runs, cfg.merge_gap_samples)
    runs = _merge_hysteresis(runs, x, cfg.recover_threshold)

    stalls: List[DetectedStall] = []
    for start, end in runs:
        if end - start < cfg.min_duration_samples:
            continue
        begin = _refine_edge(x, start, cfg.threshold)
        finish = _refine_edge(x, end, cfg.threshold)
        if finish <= begin:
            continue
        duration_cycles = (finish - begin) * sample_period_cycles
        if duration_cycles < cfg.min_duration_cycles:
            continue
        stalls.append(
            DetectedStall(
                begin_sample=begin,
                end_sample=finish,
                begin_cycle=begin * sample_period_cycles,
                end_cycle=finish * sample_period_cycles,
                min_level=float(x[start:end].min()) if end > start else float(x[start]),
                is_refresh=duration_cycles >= cfg.refresh_min_cycles,
            )
        )
    return stalls


def reference_finite_segments(chunk: np.ndarray, finite: np.ndarray):
    """The seed per-sample finite-run scanner."""
    out = []
    i = 0
    n = len(chunk)
    while i < n:
        bad = 0
        while i < n and not finite[i]:
            bad += 1
            i += 1
        start = i
        while i < n and finite[i]:
            i += 1
        out.append((chunk[start:i], bad))
    return out


class ReferenceStreamingEmprof:
    """The seed StreamingEmprof orchestration over reference components.

    Shares the production :class:`QualityMonitor` (quality gating is
    not part of this PR's rewrite) but normalizes and detects with the
    frozen per-sample implementations above.
    """

    def __init__(
        self,
        sample_rate_hz: float,
        clock_hz: float,
        normalizer: Optional[NormalizerConfig] = None,
        detector: Optional[DetectorConfig] = None,
        quality: Optional[QualityConfig] = None,
    ):
        self.sample_rate_hz = float(sample_rate_hz)
        self.clock_hz = float(clock_hz)
        self.period = clock_hz / sample_rate_hz
        self._normalizer_config = (
            normalizer if normalizer is not None else NormalizerConfig()
        )
        self._normalizer = ReferenceOnlineNormalizer(self._normalizer_config)
        self._detector = ReferenceStreamingDetector(self.period, detector)
        self.quality_monitor = QualityMonitor(
            quality, gain_guard_samples=self._normalizer_config.window_samples
        )
        self._stalls: List[DetectedStall] = []
        self._n_samples = 0
        self._n_dropped = 0
        self._finished = False

    def process(self, chunk, gap_before: int = 0) -> List[DetectedStall]:
        chunk = np.asarray(chunk, dtype=np.float64)
        new: List[DetectedStall] = []
        if gap_before > 0:
            new.extend(self._handle_gap(gap_before))
        if len(chunk) == 0:
            return [self.quality_monitor.flag(s) for s in new]
        finite = np.isfinite(chunk)
        if finite.all():
            new.extend(self._consume(chunk))
        else:
            for segment, bad_run in reference_finite_segments(chunk, finite):
                if bad_run:
                    new.extend(self._handle_gap(bad_run))
                if len(segment):
                    new.extend(self._consume(segment))
        return [self.quality_monitor.flag(s) for s in new]

    def _consume(self, chunk) -> List[DetectedStall]:
        self.quality_monitor.observe(chunk, self._n_samples)
        self._n_samples += len(chunk)
        normalized = self._normalizer.push(chunk)
        new = self._detector.push(normalized)
        self._stalls.extend(new)
        return new

    def _handle_gap(self, dropped: int) -> List[DetectedStall]:
        tail = self._normalizer.flush()
        new = list(self._detector.push(tail))
        new.extend(self._detector.resync())
        self._stalls.extend(new)
        self._normalizer = ReferenceOnlineNormalizer(self._normalizer_config)
        self.quality_monitor.mark_gap(self._n_samples, dropped)
        self._n_dropped += dropped
        return new

    def finish(self) -> ProfileReport:
        if not self._finished:
            tail = self._normalizer.flush()
            self._stalls.extend(self._detector.push(tail))
            self._stalls.extend(self._detector.finish())
            self._finished = True
        stalls = [self.quality_monitor.flag(s) for s in self._stalls]
        quality = self.quality_monitor.summary()
        return ProfileReport(
            stalls=stalls,
            total_cycles=(self._n_samples + self._n_dropped) * self.period,
            clock_hz=self.clock_hz,
            sample_period_cycles=self.period,
            region_names={},
            quality=quality if quality.any_impairment else None,
        )


def reference_merge_intervals(intervals: np.ndarray, max_gap: float) -> np.ndarray:
    """The seed greedy interval merger."""
    iv = np.asarray(intervals, dtype=np.float64)
    if iv.size == 0:
        return iv.reshape(0, 2)
    order = np.argsort(iv[:, 0])
    iv = iv[order]
    merged = [iv[0].tolist()]
    for begin, end in iv[1:]:
        if begin - merged[-1][1] <= max_gap:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([begin, end])
    return np.asarray(merged)


def reference_match_stalls(
    detected: Sequence[DetectedStall],
    true_intervals: np.ndarray,
    tolerance_cycles: float = 0.0,
) -> MatchResult:
    """The seed greedy interval matcher."""
    truth = np.asarray(true_intervals, dtype=np.float64).reshape(-1, 2)
    det = sorted(detected, key=lambda s: s.begin_cycle)
    order = np.argsort(truth[:, 0]) if len(truth) else np.array([], dtype=int)
    truth = truth[order]

    tp = 0
    fp = 0
    matched_truth = np.zeros(len(truth), dtype=bool)
    truth_detected_cycles = np.zeros(len(truth))
    ti = 0
    for s in det:
        begin = s.begin_cycle - tolerance_cycles
        end = s.end_cycle + tolerance_cycles
        while ti < len(truth) and truth[ti, 1] <= begin:
            ti += 1
        j = ti
        hit = False
        while j < len(truth) and truth[j, 0] < end:
            hit = True
            if not matched_truth[j]:
                matched_truth[j] = True
                tp += 1
            truth_detected_cycles[j] += s.duration_cycles
            j += 1
        if not hit:
            fp += 1
    fn = int(np.count_nonzero(~matched_truth))
    n_det_groups = tp + fp
    precision = tp / n_det_groups if n_det_groups else 1.0
    recall = tp / len(truth) if len(truth) else 1.0
    errors = (
        truth_detected_cycles[matched_truth]
        - (truth[matched_truth, 1] - truth[matched_truth, 0])
        if len(truth)
        else np.array([])
    )
    return MatchResult(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        precision=precision,
        recall=recall,
        duration_errors=np.asarray(errors, dtype=np.float64),
    )
