"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro import io as repro_io


class TestDevices:
    def test_lists_all_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for name in ("alcatel", "samsung", "olimex"):
            assert name in out


class TestCaptureAndProfile:
    def test_capture_writes_npz(self, tmp_path, capsys):
        out_path = tmp_path / "cap.npz"
        code = main(
            [
                "capture",
                "--device", "olimex",
                "--workload", "micro",
                "--tm", "64",
                "--cm", "4",
                "-o", str(out_path),
            ]
        )
        assert code == 0
        cap = repro_io.load_capture(out_path)
        assert len(cap.magnitude) > 100
        assert cap.clock_hz == pytest.approx(1.008e9)

    def test_capture_with_ground_truth(self, tmp_path):
        cap_path = tmp_path / "cap.npz"
        gt_path = tmp_path / "gt.npz"
        main(
            [
                "capture", "--workload", "micro", "--tm", "32", "--cm", "4",
                "-o", str(cap_path), "--ground-truth", str(gt_path),
            ]
        )
        truth = repro_io.load_ground_truth(gt_path)
        assert truth.miss_count() >= 32

    def test_profile_reads_capture_and_writes_report(self, tmp_path, capsys):
        cap_path = tmp_path / "cap.npz"
        rep_path = tmp_path / "report.json"
        main(["capture", "--workload", "micro", "--tm", "64", "--cm", "4",
              "-o", str(cap_path)])
        capsys.readouterr()
        code = main(
            ["profile", str(cap_path), "--isolate-window", "-o", str(rep_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EMPROF profile" in out
        assert "classification" in out
        payload = json.loads(rep_path.read_text())
        assert payload["format"] == "emprof-report-v1"
        report = repro_io.load_report(rep_path)
        assert abs(report.miss_count - 64) <= 2

    def test_profile_custom_threshold(self, tmp_path, capsys):
        cap_path = tmp_path / "cap.npz"
        main(["capture", "--workload", "micro", "--tm", "32", "--cm", "4",
              "-o", str(cap_path)])
        capsys.readouterr()
        assert main(["profile", str(cap_path), "--threshold", "0.5"]) == 0

    def test_spec_workload_capture(self, tmp_path):
        cap_path = tmp_path / "vpr.npz"
        code = main(
            ["capture", "--workload", "vpr", "--scale", "0.3", "-o", str(cap_path)]
        )
        assert code == 0

    def test_unknown_workload_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["capture", "--workload", "doom", "-o", str(tmp_path / "x.npz")])


class TestFaultsCommand:
    def capture_path(self, tmp_path):
        path = tmp_path / "cap.npz"
        main(
            [
                "capture", "--workload", "micro", "--tm", "64", "--cm", "4",
                "-o", str(path),
            ]
        )
        return path

    def test_faults_demo_compares_clean_and_impaired(self, tmp_path, capsys):
        path = self.capture_path(tmp_path)
        capsys.readouterr()
        assert main(["faults", str(path), "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "injected impairments" in out
        assert "clean profile" in out
        assert "impaired profile" in out
        assert "low-confidence" in out
        assert "miss-count drift" in out

    def test_faults_saves_impaired_capture(self, tmp_path, capsys):
        path = self.capture_path(tmp_path)
        out_path = tmp_path / "impaired.npz"
        assert main(["faults", str(path), "-o", str(out_path)]) == 0
        impaired = repro_io.load_capture(out_path)
        clean = repro_io.load_capture(path)
        assert len(impaired.magnitude) < len(clean.magnitude)  # dropouts

    def test_faults_requires_an_impairment(self, tmp_path):
        path = self.capture_path(tmp_path)
        with pytest.raises(SystemExit):
            main(
                [
                    "faults", str(path), "--dropout-rate", "0",
                    "--gain-steps", "0", "--clip-rate", "0",
                ]
            )


class TestSelftest:
    def test_selftest_passes_on_olimex(self, capsys):
        assert main(["selftest", "--tm", "128", "--cm", "4"]) == 0
        assert "selftest passed" in capsys.readouterr().out


class TestTableCommand:
    def test_table5_small(self, capsys):
        assert main(["table", "5", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "batch_process" in out

    def test_rejects_unknown_table(self):
        with pytest.raises(SystemExit):
            main(["table", "7"])


class TestAttributeCommand:
    def test_attribute_parser_small(self, capsys):
        from repro.cli import main

        assert main(["attribute", "--benchmark", "parser", "--scale", "0.6"]) == 0
        out = capsys.readouterr().out
        assert "Region" in out
        assert "optimization target" in out
