"""Tests for the one-command reproduction report generator."""

import numpy as np
import pytest

from repro.experiments.reportgen import ReportSection, generate_report


class TestGenerateReport:
    def test_subset_writes_results_md(self, tmp_path):
        path = generate_report(tmp_path, include=["perf"])
        assert path.name == "results.md"
        text = path.read_text()
        assert "# EMPROF reproduction" in text
        assert "perf baseline anecdote" in text
        assert "32768 / 14543" in text

    def test_figure_sections_save_series(self, tmp_path):
        generate_report(tmp_path, scale=0.5, include=["fig12"])
        data = np.load(tmp_path / "fig12_sweep.npz")
        assert len(data["bandwidth_hz"]) == 10  # 2 devices x 5 bandwidths
        assert (data["detected"] >= 0).all()

    def test_table5_section(self, tmp_path):
        path = generate_report(tmp_path, include=["table5"])
        assert "batch_process" in path.read_text()

    def test_unknown_section_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            generate_report(tmp_path, include=["table9"])

    def test_creates_missing_directory(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        path = generate_report(target, include=["perf"])
        assert path.exists()

    def test_sections_record_timing(self, tmp_path):
        path = generate_report(tmp_path, include=["perf"])
        assert "generated in" in path.read_text()


class TestCliIntegration:
    def test_reproduce_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["reproduce", "-o", str(tmp_path), "--only", "perf"])
        assert code == 0
        assert (tmp_path / "results.md").exists()

    def test_compare_subcommand(self, tmp_path, capsys):
        from repro import io as repro_io
        from repro.cli import main
        from repro.core.events import DetectedStall, ProfileReport

        def rep(stall_cycles, total):
            stalls = (
                [DetectedStall(0, stall_cycles / 20, 0, stall_cycles, 0.05)]
                if stall_cycles
                else []
            )
            return ProfileReport(stalls, total, 1e9, 20.0)

        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        repro_io.save_report(before, rep(5000, 10_000))
        repro_io.save_report(after, rep(1000, 6_500))
        code = main(["compare", str(before), str(after)])
        assert code == 0
        out = capsys.readouterr().out
        assert "improved" in out
        assert "speedup" in out
