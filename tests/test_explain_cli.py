"""`repro explain` and `repro profile --flight-out` end to end through
the CLI: every input form, every output form."""

import json

import pytest

from repro import io as repro_io
from repro.cli import main


@pytest.fixture(scope="module")
def capture_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("explain") / "cap.npz"
    assert main(
        ["capture", "--workload", "micro", "--tm", "64", "--cm", "4",
         "-o", str(path)]
    ) == 0
    return path


class TestExplainCapture:
    def test_prints_provenance_cards(self, capture_path, capsys):
        assert main(["explain", str(capture_path)]) == 0
        out = capsys.readouterr().out
        assert "stall #0:" in out
        assert "triggered at sample" in out
        assert "margin" in out

    def test_at_window_lists_overlaps(self, capture_path, capsys):
        main(["explain", str(capture_path)])
        first = capsys.readouterr().out
        # Pull the first stall's interval out of the rendered card.
        line = next(l for l in first.splitlines() if l.startswith("stall #0"))
        lo = float(line.split("samples ")[1].split("-")[0])
        begin, end = int(lo), int(lo) + 50
        assert main(
            ["explain", str(capture_path), "--at", f"{begin}:{end}"]
        ) == 0
        out = capsys.readouterr().out
        assert "stall #0" in out

    def test_at_empty_window_says_so(self, tmp_path, capsys):
        # A flat capture: no stalls, no candidates - the window query
        # must say so instead of printing an empty list.
        import numpy as np

        from repro.emsignal import Capture

        flat = tmp_path / "flat.npz"
        repro_io.save_capture(
            flat,
            Capture(
                magnitude=np.full(5000, 0.9),
                sample_rate_hz=50e6,
                clock_hz=1e9,
                bandwidth_hz=40e6,
            ),
        )
        assert main(["explain", str(flat), "--at", "100:200"]) == 0
        out = capsys.readouterr().out.lower()
        assert "nothing" in out or "no stall" in out

    def test_at_rejects_malformed_range(self, capture_path):
        with pytest.raises(SystemExit):
            main(["explain", str(capture_path), "--at", "banana"])

    def test_html_output(self, capture_path, tmp_path, capsys):
        out_path = tmp_path / "explain.html"
        assert main(
            ["explain", str(capture_path), "--html", str(out_path)]
        ) == 0
        html = out_path.read_text()
        assert "<script" not in html
        assert "stall #0" in html

    def test_flight_out_writes_sidecar(self, capture_path, tmp_path):
        sidecar = tmp_path / "run.flight"
        assert main(
            ["explain", str(capture_path), "--flight-out", str(sidecar)]
        ) == 0
        header, events = repro_io.load_flight(sidecar)
        assert header["events"] == len(events) > 0

    def test_diff_of_identical_runs(self, capture_path, capsys):
        assert main(
            ["explain", str(capture_path), "--diff", str(capture_path)]
        ) == 0
        assert "identical" in capsys.readouterr().out


class TestExplainReport:
    def test_profile_flight_out_then_explain_report(
        self, capture_path, tmp_path, capsys
    ):
        report_path = tmp_path / "rep.json"
        sidecar = tmp_path / "rep.flight"
        assert main(
            ["profile", str(capture_path),
             "-o", str(report_path), "--flight-out", str(sidecar)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(report_path.read_text())
        assert "evidence" in payload
        assert sidecar.exists()

        assert main(["explain", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "stall #0:" in out

    def test_report_without_evidence_exits_with_hint(
        self, capture_path, tmp_path
    ):
        report_path = tmp_path / "plain.json"
        assert main(
            ["profile", str(capture_path), "-o", str(report_path)]
        ) == 0
        with pytest.raises(SystemExit) as exc:
            main(["explain", str(report_path)])
        assert "evidence" in str(exc.value)

    def test_flight_out_from_report_input_refused(
        self, capture_path, tmp_path
    ):
        report_path = tmp_path / "rep.json"
        main(
            ["profile", str(capture_path), "-o", str(report_path),
             "--flight-out", str(tmp_path / "a.flight")]
        )
        with pytest.raises(SystemExit):
            main(
                ["explain", str(report_path),
                 "--flight-out", str(tmp_path / "b.flight")]
            )


class TestProfileFlightGuards:
    def test_flight_out_with_isolate_window_refused(
        self, capture_path, tmp_path
    ):
        with pytest.raises(SystemExit):
            main(
                ["profile", str(capture_path), "--isolate-window",
                 "--flight-out", str(tmp_path / "w.flight")]
            )
