"""Cross-process trace context: propagation, stitching, heartbeats."""

import pytest

from repro.obs import tracectx
from repro.obs.tracectx import (
    ENV_PARENT_SPAN,
    ENV_TRACE_ID,
    TraceContext,
    heartbeat_gaps,
    render_stitched,
    stitch_traces,
)


@pytest.fixture(autouse=True)
def clean_context():
    previous = tracectx.activate(None)
    yield
    tracectx.activate(previous)


class TestTraceContext:
    def test_new_mints_sixteen_hex_digits(self):
        context = TraceContext.new()
        assert len(context.trace_id) == 16
        int(context.trace_id, 16)
        assert context.parent_span_id is None

    def test_child_keeps_trace_id(self):
        root = TraceContext.new()
        child = root.child("123:0")
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == "123:0"

    def test_env_round_trip(self):
        context = TraceContext(trace_id="cafe" * 4, parent_span_id="7:3")
        env = context.to_env({})
        assert env[ENV_TRACE_ID] == "cafe" * 4
        assert env[ENV_PARENT_SPAN] == "7:3"
        assert TraceContext.from_env(env) == context

    def test_to_env_clears_stale_parent(self):
        env = {ENV_PARENT_SPAN: "stale"}
        TraceContext(trace_id="ab12").to_env(env)
        assert ENV_PARENT_SPAN not in env

    def test_from_env_absent_is_none(self):
        assert TraceContext.from_env({}) is None

    def test_cli_args_match_profile_flags(self):
        context = TraceContext(trace_id="ab12", parent_span_id="9:1")
        assert context.to_cli_args() == [
            "--trace-id", "ab12", "--parent-span", "9:1",
        ]
        assert TraceContext(trace_id="ab12").to_cli_args() == [
            "--trace-id", "ab12",
        ]


class TestActiveContext:
    def test_current_mints_once_and_caches(self):
        first = tracectx.current()
        assert tracectx.current() is first

    def test_peek_never_mints(self):
        assert tracectx.peek() is None

    def test_activate_returns_previous(self):
        context = TraceContext.new()
        assert tracectx.activate(context) is None
        assert tracectx.peek() == context
        assert tracectx.activate(None) == context


def _payload(pid, process, spans, trace_id="feed" * 4, parent=None):
    return {
        "format": "repro-obs-trace",
        "version": 2,
        "pid": pid,
        "process": process,
        "trace_id": trace_id,
        "parent_span_id": parent,
        "spans": spans,
        "dropped": 0,
    }


class TestStitch:
    def test_single_trace_id_and_globalized_parents(self):
        main = _payload(
            100, "main",
            [{"span_id": 0, "parent_id": None, "name": "campaign",
              "begin_s": 0.0, "end_s": 2.0, "duration_s": 2.0, "attrs": {}}],
        )
        worker = _payload(
            200, "worker0",
            [{"span_id": 0, "parent_id": None, "name": "campaign_worker",
              "begin_s": 0.1, "end_s": 1.9, "duration_s": 1.8, "attrs": {}}],
            parent="100:0",
        )
        document = stitch_traces([main, worker])
        assert document["trace_id"] == "feed" * 4
        assert document["mixed_trace_ids"] == []
        by_gid = {s["gid"]: s for s in document["spans"]}
        assert by_gid["200:0"]["parent_gid"] == "100:0"
        assert by_gid["100:0"]["parent_gid"] is None
        assert len(document["processes"]) == 2

    def test_mixed_trace_ids_flagged(self):
        a = _payload(1, "a", [], trace_id="aaaa")
        b = _payload(2, "b", [], trace_id="bbbb")
        document = stitch_traces([a, b])
        assert document["trace_id"] == "unknown"
        assert document["mixed_trace_ids"] == ["aaaa", "bbbb"]

    def test_render_is_textual_and_names_processes(self):
        document = stitch_traces([_payload(1, "main", [])])
        text = render_stitched(document)
        assert "main" in text
        assert "feed" * 4 in text


def _beat(source, t):
    return {"kind": "heartbeat", "source": source, "t_unix_s": t}


class TestHeartbeatGaps:
    def test_steady_source_is_healthy(self):
        events = [_beat("w0", 0.1 * i) for i in range(10)]
        table = heartbeat_gaps(events)
        assert table["w0"]["count"] == 10
        assert not table["w0"]["stalled"]
        assert table["w0"]["expected_interval_s"] == pytest.approx(0.1)

    def test_killed_worker_is_stalled(self):
        # w1 beats until t=0.5 then dies; w0 keeps the horizon moving.
        events = [_beat("w0", 0.1 * i) for i in range(30)]
        events += [_beat("w1", 0.1 * i) for i in range(6)]
        table = heartbeat_gaps(events)
        assert table["w1"]["stalled"]
        assert not table["w0"]["stalled"]
        assert table["w1"]["end_gap_s"] == pytest.approx(2.4)

    def test_single_beat_never_stalls(self):
        # One beat gives no cadence estimate - no basis to accuse.
        events = [_beat("w0", 0.0), _beat("w1", 10.0)]
        assert not heartbeat_gaps(events)["w0"]["stalled"]

    def test_accepts_event_objects(self):
        from repro.obs.events import Event

        events = [
            Event(kind="heartbeat", t_unix_s=0.1 * i, seq=i, pid=1,
                  source="w0")
            for i in range(5)
        ]
        assert heartbeat_gaps(events)["w0"]["count"] == 5


def _spawn(worker, t, source="main"):
    return {
        "kind": "worker_spawned",
        "source": source,
        "t_unix_s": t,
        "attrs": {"worker": worker, "pid": 4242},
    }


class TestDeadBeforeFirstHeartbeat:
    """A spawned worker killed before its first beat must stay visible."""

    def test_spawned_never_beats_is_stalled_row(self):
        events = [_spawn("w9", 0.5)]
        events += [_beat("w0", 0.1 * i) for i in range(30)]
        table = heartbeat_gaps(events)
        row = table["w9"]
        assert row["count"] == 0
        assert row["stalled"] is True
        assert row["first_unix_s"] is None
        assert row["last_unix_s"] is None
        # Silence measured from the spawn announcement to the horizon.
        assert row["end_gap_s"] == pytest.approx(2.9 - 0.5)
        # Healthy neighbour unaffected.
        assert not table["w0"]["stalled"]

    def test_spawned_then_beating_worker_uses_beat_row(self):
        # Once a worker heartbeats, the spawn event must not shadow
        # the real cadence-based row.
        events = [_spawn("w0", 0.0)]
        events += [_beat("w0", 0.1 * i) for i in range(10)]
        row = heartbeat_gaps(events)["w0"]
        assert row["count"] == 10
        assert not row["stalled"]

    def test_spawn_event_objects_carry_worker_attr(self):
        from repro.obs.events import Event

        events = [
            Event(kind="worker_spawned", t_unix_s=0.0, seq=0, pid=1,
                  source="main", attrs={"worker": "w3"}),
            Event(kind="heartbeat", t_unix_s=5.0, seq=1, pid=1,
                  source="w0"),
        ]
        table = heartbeat_gaps(events)
        assert table["w3"]["count"] == 0
        assert table["w3"]["stalled"] is True

    def test_stitch_surfaces_dead_worker_and_renders(self):
        payloads = [_payload(100, "main", [])]
        events = [_spawn("w7", 1.0)]
        events += [_beat("w0", 0.5 * i) for i in range(12)]
        document = stitch_traces(payloads, events=events)
        assert document["heartbeats"]["w7"]["count"] == 0
        assert document["heartbeats"]["w7"]["stalled"] is True
        text = render_stitched(document)
        assert "w7" in text
        assert "STALLED" in text

    def test_spawn_without_worker_attr_falls_back_to_source(self):
        events = [
            {"kind": "worker_spawned", "source": "wX", "t_unix_s": 0.0},
            _beat("w0", 4.0),
        ]
        assert heartbeat_gaps(events)["wX"]["stalled"] is True
