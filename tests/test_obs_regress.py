"""The perf-regression observatory: statistics and the CI exit-code gate."""

import pytest

from repro.obs import cli as obs_cli
from repro.obs.ledger import RunLedger, record
from repro.obs.regress import (
    STATUS_INSUFFICIENT,
    STATUS_OK,
    STATUS_REGRESSION,
    RegressConfig,
    check_records,
)


def _history(label, times, kind="bench", spans_of=None):
    """Ledger-ordered records with the given wall times."""
    out = []
    for wall in times:
        spans = spans_of(wall) if spans_of is not None else None
        out.append(
            record(kind=kind, label=label, wall_time_s=wall, spans=spans)
        )
    return out


class TestRegressConfig:
    def test_defaults_are_valid(self):
        RegressConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"baseline_window": 0},
            {"min_history": 0},
            {"min_history": 9, "baseline_window": 5},
            {"mad_sigmas": 0.0},
            {"rel_slack": -0.1},
            {"abs_slack_s": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RegressConfig(**kwargs)


class TestCheckRecords:
    def test_insufficient_history_is_not_a_failure(self):
        report = check_records(_history("a", [1.0, 1.0]))
        assert report.ok
        assert [v.status for v in report.verdicts] == [STATUS_INSUFFICIENT]

    def test_stable_history_passes(self):
        report = check_records(
            _history("a", [1.0, 1.02, 0.98, 1.01, 0.99, 1.0])
        )
        assert report.ok
        wall = [v for v in report.verdicts if v.metric == "wall_time_s"]
        assert [v.status for v in wall] == [STATUS_OK]

    def test_three_x_slowdown_regresses(self):
        report = check_records(
            _history("a", [1.0, 1.02, 0.98, 1.01, 0.99, 3.0])
        )
        assert not report.ok
        (verdict,) = report.regressions
        assert verdict.metric == "wall_time_s"
        assert verdict.ratio > 2.5

    def test_speedup_never_gates(self):
        report = check_records(
            _history("a", [1.0, 1.02, 0.98, 1.01, 0.99, 0.2])
        )
        assert report.ok

    def test_rel_slack_floor_absorbs_jitter_free_history(self):
        # Identical history => MAD 0; only the relative floor keeps a
        # small wobble from gating.
        report = check_records(_history("a", [1.0, 1.0, 1.0, 1.0, 1.1]))
        assert report.ok

    def test_abs_slack_floor_ignores_microsecond_noise(self):
        report = check_records(
            _history("a", [1e-4, 1e-4, 1e-4, 1e-4, 3e-4])
        )
        assert report.ok  # 3x, but under the 5 ms absolute floor

    def test_single_outlier_in_history_does_not_poison_baseline(self):
        # Median-of-window: one historically slow run must not raise
        # the bar enough to hide a real regression.
        report = check_records(
            _history("a", [1.0, 1.0, 9.0, 1.0, 1.0, 3.0])
        )
        assert not report.ok

    def test_groups_judged_independently(self):
        records = _history("fast", [1.0, 1.0, 1.0, 1.0, 3.0]) + _history(
            "slow", [5.0, 5.0, 5.0, 5.0, 5.0]
        )
        report = check_records(records)
        assert [v.group for v in report.regressions] == ["bench:fast"]

    def test_span_metrics_judged(self):
        def spans_of(wall):
            return {"detect": {"count": 1, "total_s": wall * 0.5, "mean_s": wall * 0.5}}

        report = check_records(
            _history("a", [1.0, 1.0, 1.0, 1.0, 3.4], spans_of=spans_of)
        )
        metrics = {v.metric for v in report.regressions}
        assert metrics == {"wall_time_s", "span:detect"}

    def test_spans_can_be_disabled(self):
        def spans_of(wall):
            return {"detect": {"count": 1, "total_s": wall, "mean_s": wall}}

        report = check_records(
            _history("a", [1.0, 1.0, 1.0, 1.0, 3.4], spans_of=spans_of),
            RegressConfig(include_spans=False),
        )
        assert {v.metric for v in report.verdicts} == {"wall_time_s"}

    def test_baseline_window_slides(self):
        # Old slowness beyond the window must not excuse new slowness.
        times = [9.0, 9.0, 9.0] + [1.0] * 5 + [3.0]
        report = check_records(
            _history("a", times), RegressConfig(baseline_window=5)
        )
        assert not report.ok

    def test_empty_history_formats(self):
        report = check_records([])
        assert report.ok
        assert "no ledger history" in report.format()

    def test_format_names_the_offender(self):
        report = check_records(
            _history("hot_loop", [1.0, 1.0, 1.0, 1.0, 3.0])
        )
        text = report.format()
        assert "bench:hot_loop" in text
        assert "REGRESSION" in text
        assert "3.00x" in text


class TestRegressCliGate:
    """The exit-code contract `make regress` and CI rely on."""

    def _write(self, tmp_path, times):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append_many(_history("a", times))
        return str(ledger.path)

    def test_stable_history_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, [1.0, 1.01, 0.99, 1.0, 1.02, 1.0])
        assert obs_cli.main(["regress", path]) == obs_cli.EXIT_OK
        assert "0 regression(s)" in capsys.readouterr().out

    def test_injected_slowdown_exits_three(self, tmp_path, capsys):
        path = self._write(tmp_path, [1.0, 1.01, 0.99, 1.0, 1.02, 3.0])
        assert obs_cli.main(["regress", path]) == obs_cli.EXIT_REGRESSION
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_ledger_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "absent.jsonl")
        assert obs_cli.main(["regress", missing]) == obs_cli.EXIT_BAD_INPUT
        assert "cannot read" in capsys.readouterr().err

    def test_allow_missing_exits_zero(self, tmp_path):
        missing = str(tmp_path / "absent.jsonl")
        code = obs_cli.main(["regress", missing, "--allow-missing"])
        assert code == obs_cli.EXIT_OK

    def test_invalid_config_exits_two(self, tmp_path, capsys):
        path = self._write(tmp_path, [1.0])
        code = obs_cli.main(["regress", path, "--window", "0"])
        assert code == obs_cli.EXIT_BAD_INPUT
        assert "invalid regression config" in capsys.readouterr().err

    def test_kind_filter(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append_many(
            _history("a", [1.0, 1.0, 1.0, 1.0, 3.0], kind="bench")
        )
        ledger.append_many(
            _history("a", [1.0, 1.0, 1.0, 1.0, 1.0], kind="profile")
        )
        path = str(ledger.path)
        assert obs_cli.main(["regress", path]) == obs_cli.EXIT_REGRESSION
        code = obs_cli.main(["regress", path, "--kind", "profile"])
        assert code == obs_cli.EXIT_OK
