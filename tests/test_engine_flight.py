"""The flight recorder against the real engine: bit-identity with
recording on, decision events for every reported stall, near misses,
and carry/merge provenance across adversarial chunkings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.normalize import NormalizerConfig
from repro.core.profiler import Emprof, EmprofConfig
from repro.core.streaming import StreamingEmprof
from repro.obs.flight import FlightRecorder, build_evidence

from tests.conftest import CHUNKING_NAMES, chunk_plan, make_dip_signal

RATE_HZ = 50e6
CLOCK_HZ = 1e9

CFG = EmprofConfig(normalizer=NormalizerConfig(window_samples=301))


def _profiler(x):
    return Emprof(x, RATE_HZ, CLOCK_HZ, config=CFG)


def _stall_tuple(s):
    return (
        s.begin_sample,
        s.end_sample,
        s.begin_cycle,
        s.end_cycle,
        s.min_level,
        s.is_refresh,
        s.low_confidence,
        s.region,
    )


class TestRecorderOnBitIdentity:
    """Recording must never change a single output bit."""

    def test_batch_profile_identical(self):
        x = make_dip_signal()
        plain = _profiler(x).profile()
        recorded = _profiler(x).profile(flight=FlightRecorder())
        assert [_stall_tuple(s) for s in recorded.stalls] == [
            _stall_tuple(s) for s in plain.stalls
        ]
        assert plain.evidence is None
        assert recorded.evidence is not None

    def test_chunked_profile_identical(self):
        x = make_dip_signal()
        plain = _profiler(x).profile_chunked(chunk_samples=997)
        recorded = _profiler(x).profile_chunked(
            chunk_samples=997, flight=FlightRecorder()
        )
        assert [_stall_tuple(s) for s in recorded.stalls] == [
            _stall_tuple(s) for s in plain.stalls
        ]

    @pytest.mark.parametrize("chunking", CHUNKING_NAMES)
    def test_streaming_identical_across_chunkings(self, chunking):
        x = make_dip_signal()
        cfg = EmprofConfig(normalizer=NormalizerConfig(window_samples=301,
                                                       smooth_samples=1))

        def run(flight):
            st = StreamingEmprof(
                RATE_HZ, CLOCK_HZ,
                normalizer=cfg.normalizer, detector=cfg.detector,
                flight=flight,
            )
            for chunk in chunk_plan(x, chunking):
                st.process(chunk)
            return st.finish()

        plain = run(None)
        recorded = run(FlightRecorder())
        assert [_stall_tuple(s) for s in recorded.stalls] == [
            _stall_tuple(s) for s in plain.stalls
        ]


class TestDecisionEvents:
    def test_one_emit_event_per_reported_stall(self):
        x = make_dip_signal()
        recorder = FlightRecorder()
        report = _profiler(x).profile(flight=recorder)
        emits = [e for e in recorder.events() if e.kind == "stall_emitted"]
        assert len(emits) == len(report.stalls)
        for event, stall in zip(emits, report.stalls):
            assert abs(float(event.attrs["begin"]) - stall.begin_sample) < 1e-9

    def test_finish_event_closes_the_log(self):
        recorder = FlightRecorder()
        _profiler(make_dip_signal()).profile(flight=recorder)
        assert recorder.events()[-1].kind == "finish"

    def test_rejection_logged_as_near_miss(self):
        # One lone sample below threshold: a dip the detector must
        # reject as too short, visible only in the flight log.
        x = np.full(4000, 0.9)
        x[2000] = 0.05
        recorder = FlightRecorder()
        report = _profiler(x).profile(flight=recorder)
        assert report.stalls == []
        rejected = [
            e for e in recorder.events() if e.kind == "stall_rejected"
        ]
        assert len(rejected) == 1
        assert rejected[0].attrs["reason"] == "too_few_samples"
        assert int(rejected[0].attrs["trigger"]) == 2000

    def test_carry_events_when_dip_straddles_chunks(self):
        # Chunks shorter than a dip (7 < 13): every dip is still open
        # at some boundary no matter how the normalizer's settling
        # delay shifts the detector-space cuts.
        x = make_dip_signal()
        recorder = FlightRecorder()
        cfg = EmprofConfig(normalizer=NormalizerConfig(window_samples=301,
                                                       smooth_samples=1))
        st = StreamingEmprof(
            RATE_HZ, CLOCK_HZ,
            normalizer=cfg.normalizer, detector=cfg.detector,
            flight=recorder,
        )
        for chunk in chunk_plan(x, "prime-7"):
            st.process(chunk)
        st.finish()
        kinds = {e.kind for e in recorder.events()}
        assert "carry_open" in kinds
        assert "carry_merge" in kinds


class TestEvidence:
    def test_trigger_and_margin_name_the_exact_decision(self):
        x = make_dip_signal()
        recorder = FlightRecorder()
        report = _profiler(x).profile(flight=recorder)
        evidence = report.evidence
        assert len(evidence.stalls) == len(report.stalls)
        for stall, ev in zip(report.stalls, evidence.stalls):
            assert ev.begin_sample == stall.begin_sample
            assert ev.end_sample == stall.end_sample
            # The trigger is the first whole sample inside the
            # refined interval.
            assert stall.begin_sample <= ev.trigger_sample
            assert ev.trigger_sample <= stall.begin_sample + 1
            assert ev.min_level == stall.min_level
            assert ev.depth_margin == pytest.approx(
                evidence.threshold - stall.min_level
            )
            assert ev.complete

    def test_stall_evidence_accessor_on_report(self):
        report = _profiler(make_dip_signal()).profile(flight=FlightRecorder())
        assert report.stall_evidence(0) == report.evidence.stalls[0]

    def test_stall_evidence_without_recorder_raises(self):
        report = _profiler(make_dip_signal()).profile()
        with pytest.raises(ValueError):
            report.stall_evidence(0)

    def test_wrapped_ring_marks_evidence_incomplete(self):
        x = make_dip_signal()
        recorder = FlightRecorder(capacity=8)  # far too small
        report = _profiler(x).profile(flight=recorder)
        evidence = report.evidence
        assert evidence.overwritten_events > 0
        assert any(not ev.complete for ev in evidence.stalls)
        # Incomplete evidence still names the stall's interval.
        first = evidence.stalls[0]
        assert first.begin_sample == report.stalls[0].begin_sample

    def test_merge_chain_recorded_for_ragged_dip(self):
        # A dip with a brief bump that stays below the recovery level:
        # the hysteresis merge must appear in that stall's chain.
        x = np.full(4000, 0.9)
        x[2000:2020] = 0.05
        x[2020:2022] = 0.5  # above threshold, below recovery
        x[2022:2040] = 0.05
        recorder = FlightRecorder()
        report = _profiler(x).profile(flight=recorder)
        assert len(report.stalls) == 1
        ev = report.evidence.stalls[0]
        assert len(ev.merge_chain) >= 1
        assert ev.merge_chain[0]["reason"] in ("no_recovery", "short_gap")

    def test_build_evidence_is_pure_over_the_log(self):
        x = make_dip_signal()
        recorder = FlightRecorder()
        report = _profiler(x).profile(flight=recorder)
        rebuilt = build_evidence(
            report.stalls, recorder.events(), CFG.detector, recorder=recorder
        )
        assert rebuilt == report.evidence
