"""Unit tests for phase 1 of the whole-program analyzer: fact extraction."""

import ast

from repro.devtools.facts import (
    ModuleFacts,
    extract_facts,
    module_name_for,
    _resolve_relative,
)


def facts_of(source: str, module: str = "pkg.mod", **kw) -> ModuleFacts:
    return extract_facts(ast.parse(source), module=module, path="pkg/mod.py", **kw)


# -- imports ----------------------------------------------------------------


def test_module_level_vs_deferred_imports():
    facts = facts_of(
        "import json\n"
        "def f():\n"
        "    import numpy\n"
    )
    by_target = {i.target: i for i in facts.imports}
    assert by_target["json"].module_level
    assert not by_target["numpy"].module_level


def test_class_body_imports_count_as_module_level():
    facts = facts_of("class C:\n    import os\n")
    (imp,) = facts.imports
    assert imp.module_level


def test_relative_import_resolution_plain_module():
    # In pkg.sub.mod: `from ..other import x` -> pkg.other
    assert _resolve_relative("pkg.sub.mod", 2, "other") == "pkg.other"
    assert _resolve_relative("pkg.sub.mod", 1, "sib") == "pkg.sub.sib"
    assert _resolve_relative("pkg.sub.mod", 1, None) == "pkg.sub"


def test_relative_import_resolution_package_init():
    # In pkg/sub/__init__.py (module "pkg.sub"): `.x` is pkg.sub.x.
    assert _resolve_relative("pkg.sub", 1, "x", is_package=True) == "pkg.sub.x"
    assert _resolve_relative("pkg.sub", 2, "x", is_package=True) == "pkg.x"


def test_from_import_records_names():
    facts = facts_of("from .sibling import a, b\n", module="pkg.mod")
    (imp,) = facts.imports
    assert imp.target == "pkg.sibling"
    assert imp.names == ("a", "b")


def test_module_name_for_walks_packages(tmp_path):
    pkg = tmp_path / "pkg" / "sub"
    pkg.mkdir(parents=True)
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("")
    assert module_name_for(pkg / "mod.py") == "pkg.sub.mod"
    assert module_name_for(pkg / "__init__.py") == "pkg.sub"
    assert module_name_for(tmp_path / "standalone.py") == "standalone"


# -- module-level globals ---------------------------------------------------


def test_global_classification():
    facts = facts_of(
        "import threading\n"
        "CACHE = {}\n"
        "ITEMS = list()\n"
        "LOCK = threading.Lock()\n"
        "RNG = default_rng(0)\n"
        "LOG = open('x.log')\n"
        "LIMIT = 7\n"
    )
    kinds = {g.name: g.kind for g in facts.globals}
    assert kinds["CACHE"] == "mutable"
    assert kinds["ITEMS"] == "mutable"
    assert kinds["LOCK"] == "lock"
    assert kinds["RNG"] == "rng"
    assert kinds["LOG"] == "handle"
    assert kinds["LIMIT"] == "other"


# -- function summaries -----------------------------------------------------


def test_mutation_and_global_rebind_recorded():
    facts = facts_of(
        "CACHE = {}\n"
        "COUNT = 0\n"
        "def put(k, v):\n"
        "    CACHE[k] = v\n"
        "def bump():\n"
        "    global COUNT\n"
        "    COUNT = COUNT + 1\n"
    )
    put = next(f for f in facts.functions if f.qualname == "put")
    (mutation,) = put.mutations
    assert mutation.name == "CACHE"
    assert mutation.how == "subscript"
    assert not mutation.locked
    bump = next(f for f in facts.functions if f.qualname == "bump")
    assert ("COUNT", 7) in bump.global_rebinds


def test_mutation_under_module_lock_is_marked_locked():
    facts = facts_of(
        "import threading\n"
        "CACHE = {}\n"
        "LOCK = threading.Lock()\n"
        "def put(k, v):\n"
        "    with LOCK:\n"
        "        CACHE[k] = v\n"
    )
    (mutation,) = facts.functions[0].mutations
    assert mutation.locked


def test_mutating_method_call_recorded():
    facts = facts_of(
        "ITEMS = []\n"
        "def add(x):\n"
        "    ITEMS.append(x)\n"
    )
    (mutation,) = facts.functions[0].mutations
    assert mutation.how == "call:append"


def test_local_shadow_not_recorded():
    facts = facts_of(
        "def f():\n"
        "    local = {}\n"
        "    local['k'] = 1\n"
    )
    assert facts.functions[0].mutations == ()


def test_loop_shapes_over_arrays():
    facts = facts_of(
        "import numpy as np\n"
        "def f(sig: np.ndarray):\n"
        "    arr = np.asarray(sig)\n"
        "    for v in arr:\n"
        "        pass\n"
        "    for i in range(len(arr)):\n"
        "        pass\n"
        "    for i, v in enumerate(arr):\n"
        "        pass\n"
        "    for i in range(10):\n"
        "        x = arr[i]\n"
        "    for item in [1, 2]:\n"
        "        pass\n"
    )
    loops = facts.functions[0].loops
    assert [l.iterates for l in loops] == [
        "array",
        "range_len_array",
        "enumerate_array",
        "range",
        "other",
    ]
    assert loops[3].subscripts_array
    assert not loops[4].subscripts_array


def test_process_targets_flag_lambda_and_nested():
    facts = facts_of(
        "def run(pool, executor):\n"
        "    def inner(x):\n"
        "        return x\n"
        "    pool.map(lambda x: x, [1])\n"
        "    executor.submit(inner, 1)\n"
        "    Process(target=inner).start()\n"
    )
    problems = {(t.api, t.problem) for t in facts.functions[0].process_targets}
    assert ("pool.map", "lambda") in problems
    assert ("executor.submit", "nested-function") in problems
    assert ("Process(target=...)", "nested-function") in problems


def test_plain_map_builtin_not_flagged():
    facts = facts_of(
        "def run(items):\n"
        "    return list(map(lambda x: x, items))\n"
    )
    assert facts.functions[0].process_targets == ()


# -- signal registrations and special calls ---------------------------------


def test_signal_registration_facts_extracted():
    facts = facts_of(
        "import signal, time\n"
        "def handler(s, f):\n"
        "    time.sleep(1)\n"
        "    print('bye')\n"
        "def install(svc):\n"
        "    signal.signal(signal.SIGTERM, handler)\n"
        "    signal.signal(signal.SIGINT, svc.on_signal)\n"
        "    signal.signal(signal.SIGHUP, signal.SIG_IGN)\n"
    )
    fns = {f.qualname: f for f in facts.functions}
    regs = fns["install"].signal_registrations
    # SIG_IGN is a disposition, not a handler: two registrations only.
    assert [(r.signal_name, r.handler, r.handler_kind) for r in regs] == [
        ("SIGTERM", "handler", "name"),
        ("SIGINT", "on_signal", "attribute"),
    ]
    assert ("sleep", 3) in fns["handler"].blocking_calls
    assert ("print", 4) in fns["handler"].nonreentrant_calls


def test_inline_lambda_handler_scanned_at_registration():
    facts = facts_of(
        "import signal, time\n"
        "def install():\n"
        "    signal.signal(signal.SIGTERM, lambda s, f: time.sleep(9))\n"
    )
    (reg,) = facts.functions[0].signal_registrations
    assert reg.handler_kind == "lambda"
    assert reg.inline_blocking == (("sleep", 3),)
    assert reg.inline_nonreentrant == ()


def test_str_join_is_not_a_blocking_call():
    facts = facts_of(
        "def fmt(parts):\n"
        "    return ', '.join(parts)\n"
    )
    assert facts.functions[0].blocking_calls == ()


def test_logging_calls_are_nonreentrant_only_on_logging_receivers():
    facts = facts_of(
        "def f(logger, cursor):\n"
        "    logger.warning('x')\n"
        "    cursor.execute('y')\n"
        "    info = cursor.info('z')\n"
    )
    calls = facts.functions[0].nonreentrant_calls
    assert ("warning", 2) in calls
    # `cursor.info` is not a logger; receiver-name heuristic holds.
    assert all(name != "info" for name, _ in calls)


# -- serialization ----------------------------------------------------------


def test_facts_round_trip_through_json_dict():
    facts = facts_of(
        "import numpy as np\n"
        "import signal\n"
        "import time\n"
        "CACHE = {}\n"
        "def f(sig: np.ndarray):\n"
        "    CACHE['k'] = 1\n"
        "    for v in np.asarray(sig):\n"
        "        pass\n"
        "def install(h):\n"
        "    signal.signal(signal.SIGTERM, h)\n"
        "    signal.signal(signal.SIGINT, lambda s, f: time.sleep(1))\n"
        "    time.sleep(0.1)\n",
        suppressions={3: {"hot-loop"}},
    )
    import json

    payload = json.loads(json.dumps(facts.to_dict()))
    restored = ModuleFacts.from_dict(payload)
    assert restored == facts
    assert restored.suppressions == {3: ["hot-loop"]}
