"""The observability overhead guard.

With ``EMPROF_OBS`` unset, every instrumented public function must be
one flag check away from its uninstrumented ``_impl``.  This test
times `Emprof.profile` (disabled-observability wrapper path) against
the raw pipeline (`_normalize_impl` + `_detect_stalls_impl` called
directly) on a ~1M-sample signal and holds the wrapper within 10 %.

Runtime contracts are switched off for both paths so the comparison
isolates the observability layer.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.detect import DetectorConfig, _detect_stalls_impl
from repro.core.normalize import NormalizerConfig, _normalize_impl
from repro.core.profiler import Emprof
from repro.devtools.contracts import set_contracts_enabled
from repro.obs import set_obs_enabled

N_SAMPLES = 1_000_000
SAMPLE_RATE_HZ = 40e6
CLOCK_HZ = 1e9
REPEATS = 5


@pytest.fixture(scope="module")
def big_signal():
    """~1M samples of busy level with periodic stall dips."""
    rng = np.random.default_rng(42)
    signal = 1.0 + 0.02 * rng.standard_normal(N_SAMPLES)
    for start in range(5_000, N_SAMPLES - 40, 10_000):
        signal[start:start + 12] *= 0.1
    return np.maximum(signal, 0.0)


def _best_of(func, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        func()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def test_disabled_obs_overhead_within_ten_percent(big_signal):
    normalizer_cfg = NormalizerConfig()
    detector_cfg = DetectorConfig()

    def baseline():
        norm = _normalize_impl(big_signal, normalizer_cfg)
        return _detect_stalls_impl(
            norm, CLOCK_HZ / SAMPLE_RATE_HZ, detector_cfg
        )

    def instrumented():
        emprof = Emprof(big_signal, SAMPLE_RATE_HZ, CLOCK_HZ)
        return emprof.profile()

    obs_previous = set_obs_enabled(False)
    contracts_previous = set_contracts_enabled(False)
    try:
        # Sanity: both paths see the same stalls.
        assert len(instrumented().stalls) == len(baseline()) > 50

        # Interleave measurements so drift hits both paths equally.
        baseline_best = float("inf")
        instrumented_best = float("inf")
        for _ in range(REPEATS):
            baseline_best = min(baseline_best, _best_of(baseline, 1))
            instrumented_best = min(instrumented_best, _best_of(instrumented, 1))
    finally:
        set_contracts_enabled(contracts_previous)
        set_obs_enabled(obs_previous)

    ratio = instrumented_best / baseline_best
    assert ratio < 1.10, (
        f"disabled-observability profile() is {ratio:.3f}x the raw "
        f"pipeline ({instrumented_best * 1e3:.1f}ms vs "
        f"{baseline_best * 1e3:.1f}ms)"
    )


def test_flight_recording_overhead_within_ten_percent(big_signal):
    """Recording the engine's decisions may cost at most 10 % on the
    ~1M-sample signal — the recorder only reads state the engine
    already computed, so the hooks must stay cheap."""
    from repro.obs.flight import FlightRecorder

    def plain():
        return Emprof(big_signal, SAMPLE_RATE_HZ, CLOCK_HZ).profile()

    def recorded():
        return Emprof(big_signal, SAMPLE_RATE_HZ, CLOCK_HZ).profile(
            flight=FlightRecorder()
        )

    obs_previous = set_obs_enabled(False)
    contracts_previous = set_contracts_enabled(False)
    try:
        # Sanity: recording changes nothing observable.
        assert len(recorded().stalls) == len(plain().stalls) > 50

        plain_best = float("inf")
        recorded_best = float("inf")
        for _ in range(REPEATS):
            plain_best = min(plain_best, _best_of(plain, 1))
            recorded_best = min(recorded_best, _best_of(recorded, 1))
    finally:
        set_contracts_enabled(contracts_previous)
        set_obs_enabled(obs_previous)

    ratio = recorded_best / plain_best
    assert ratio < 1.10, (
        f"flight-recorded profile() is {ratio:.3f}x the unrecorded one "
        f"({recorded_best * 1e3:.1f}ms vs {plain_best * 1e3:.1f}ms)"
    )


def test_recorder_off_means_no_recorder_objects(big_signal):
    """Without a recorder the engine must not allocate flight state -
    the off path is a single `is not None` test per decision site."""
    emprof = Emprof(big_signal[:100_000], SAMPLE_RATE_HZ, CLOCK_HZ)
    report = emprof.profile()
    assert report.evidence is None


def test_disabled_obs_emits_zero_events(big_signal):
    """EMPROF_OBS off means the event bus sees *nothing* — not merely
    cheap events, zero events."""
    from repro.core.streaming import StreamingEmprof
    from repro.obs.events import InMemorySink, bus

    obs_previous = set_obs_enabled(False)
    contracts_previous = set_contracts_enabled(False)
    bus.reset()
    sink = InMemorySink()
    bus.add_sink(sink)
    try:
        emprof = Emprof(big_signal[:100_000], SAMPLE_RATE_HZ, CLOCK_HZ)
        emprof.profile()

        streaming = StreamingEmprof(SAMPLE_RATE_HZ, CLOCK_HZ)
        for begin in range(0, 100_000, 20_000):
            streaming.process(big_signal[begin:begin + 20_000])
        streaming.finish()

        bus.flush()
        stats = bus.stats()
    finally:
        bus.remove_sink(sink)
        bus.reset()
        set_contracts_enabled(contracts_previous)
        set_obs_enabled(obs_previous)

    assert sink.events == []
    assert stats["total"] == 0
    assert stats["dropped_events"] == 0
