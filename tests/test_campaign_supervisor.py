"""Chaos tests for the supervised campaign job queue.

Each test injects one real failure mode into a multi-worker pass -
SIGKILL mid-run, SIGSTOP (alive but silent), a poison spec that kills
every worker it touches, a run that hangs past its lease deadline -
and asserts the supervisor's invariants: every run completes exactly
once or is quarantined, nothing is lost, nothing is double-reported,
and every requeue/quarantine decision lands in the run ledger.
"""

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.core.detect import DetectorConfig
from repro.core.normalize import NormalizerConfig
from repro.core.profiler import EmprofConfig
from repro.emsignal.receiver import Capture
from repro.experiments import Campaign, RunSpec
from repro.faults import CrashingSource, StallingSource
from repro.obs.ledger import RunLedger

SMALL = EmprofConfig(
    normalizer=NormalizerConfig(window_samples=301),
    detector=DetectorConfig(),
)


class SlowSource:
    """A deterministic dip capture that takes a while to acquire."""

    def __init__(self, delay_s=0.3, seed=0):
        self.delay_s = delay_s
        self.seed = seed

    def capture(self):
        time.sleep(self.delay_s)
        rng = np.random.default_rng(self.seed)
        x = np.full(3000, 0.9) + rng.normal(0, 0.02, 3000)
        for s in range(200, 2800, 170):
            x[s : s + 13] = 0.1
        return Capture(
            magnitude=np.clip(x, 0.0, None),
            sample_rate_hz=50e6,
            clock_hz=1e9,
            bandwidth_hz=50e6,
            region_names={},
        )


def slow_specs(n, delay_s=0.3):
    return [
        RunSpec(
            f"run{i}",
            (lambda i=i: SlowSource(delay_s, seed=i)),
            config=SMALL,
        )
        for i in range(n)
    ]


def wait_for_lease(execution, timeout_s=10.0):
    """Block until at least one run is leased; returns the snapshot."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        snap = execution.snapshot()
        if snap["leases"]:
            return snap
        time.sleep(0.02)
    raise AssertionError("no lease appeared in time")


def test_sigkill_mid_run_completes_every_run_exactly_once(tmp_path):
    campaign = Campaign(
        tmp_path / "camp",
        sleep=lambda _: None,
        ledger=RunLedger(tmp_path / "ledger.jsonl", fsync=False),
        workers=2,
        heartbeat_interval_s=0.05,
    )
    execution = campaign.start(slow_specs(4))
    try:
        snap = wait_for_lease(execution)
        victim = sorted(snap["leases"])[0]
        execution.processes[victim].kill()
    finally:
        result = execution.join(timeout_s=60.0)

    # No lost runs, no duplicates: one done outcome per spec.
    assert sorted(o.name for o in result.outcomes) == [
        f"run{i}" for i in range(4)
    ]
    assert result.counts() == {"done": 4, "failed": 0, "skipped": 0}
    assert result.completed
    # The killed worker's lease was requeued and re-executed.
    assert result.interrupted()
    assert all(n >= 2 for n in result.interrupted().values())
    manifest = json.loads((campaign.directory / "manifest.json").read_text())
    assert all(e["status"] == "done" for e in manifest["runs"].values())
    # Exactly one committed report per run.
    for i in range(4):
        assert campaign.report_path(f"run{i}").is_file()
    # The incident is on the durable record.
    records = RunLedger(tmp_path / "ledger.jsonl").read(kind="campaign-requeue")
    assert records
    assert all("died" in r.extra["reason"] for r in records)


def test_sigstopped_worker_is_detected_killed_and_requeued(tmp_path):
    campaign = Campaign(
        tmp_path / "camp",
        sleep=lambda _: None,
        ledger=RunLedger(tmp_path / "ledger.jsonl", fsync=False),
        workers=2,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=0.6,
    )
    execution = campaign.start(slow_specs(3, delay_s=0.4))
    try:
        snap = wait_for_lease(execution)
        victim = sorted(snap["leases"])[0]
        # The process stays alive but stops heartbeating - the failure
        # mode is_alive() cannot see; only the watchdog can.
        os.kill(execution.processes[victim].pid, signal.SIGSTOP)
    finally:
        result = execution.join(timeout_s=60.0)

    assert result.counts() == {"done": 3, "failed": 0, "skipped": 0}
    assert result.completed
    assert result.interrupted()
    records = RunLedger(tmp_path / "ledger.jsonl").read(kind="campaign-requeue")
    assert any("no heartbeat" in r.extra["reason"] for r in records)


def test_poison_spec_quarantined_rest_complete(tmp_path):
    campaign = Campaign(
        tmp_path / "camp",
        sleep=lambda _: None,
        ledger=RunLedger(tmp_path / "ledger.jsonl", fsync=False),
        workers=2,
        heartbeat_interval_s=0.05,
        max_attempts=2,
    )
    specs = slow_specs(2, delay_s=0.1) + [
        RunSpec("poison", CrashingSource, config=SMALL)
    ]
    result = campaign.start(specs).join(timeout_s=60.0)

    statuses = {o.name: o.status for o in result.outcomes}
    assert statuses == {"run0": "done", "run1": "done", "poison": "poisoned"}
    assert not result.completed
    assert result.counts()["poisoned"] == 1
    poisoned = next(o for o in result.outcomes if o.name == "poison")
    assert poisoned.attempts == 2  # burned exactly max_attempts workers
    manifest = json.loads((campaign.directory / "manifest.json").read_text())
    assert manifest["runs"]["poison"]["status"] == "poisoned"
    assert manifest["runs"]["poison"]["attempts"] == 2
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    assert ledger.read(kind="campaign-requeue")
    (quarantine,) = ledger.read(kind="campaign-quarantine")
    assert quarantine.label.endswith("/poison")

    # Quarantine is sticky: a second pass does not re-run the spec.
    again = Campaign(
        tmp_path / "camp",
        sleep=lambda _: None,
        workers=2,
        heartbeat_interval_s=0.05,
        max_attempts=2,
    ).execute(specs)
    statuses = {o.name: o.status for o in again.outcomes}
    assert statuses["poison"] == "poisoned"
    assert statuses["run0"] == "skipped"


def test_hung_run_hits_its_lease_deadline_and_quarantines(tmp_path):
    # The worker keeps heartbeating (its beat thread is independent of
    # the stuck capture), so only the per-run timeout can catch this.
    campaign = Campaign(
        tmp_path / "camp",
        sleep=lambda _: None,
        ledger=RunLedger(tmp_path / "ledger.jsonl", fsync=False),
        workers=2,
        heartbeat_interval_s=0.05,
        max_attempts=2,
    )
    specs = [
        RunSpec(
            "stuck",
            (lambda: StallingSource(hang_s=60.0)),
            config=SMALL,
            timeout_s=0.4,
        )
    ] + slow_specs(1, delay_s=0.1)
    result = campaign.start(specs).join(timeout_s=60.0)

    statuses = {o.name: o.status for o in result.outcomes}
    assert statuses == {"stuck": "poisoned", "run0": "done"}
    records = RunLedger(tmp_path / "ledger.jsonl").read(kind="campaign-requeue")
    assert any("timeout" in r.extra["reason"] for r in records)


def test_drain_finishes_leased_runs_only(tmp_path):
    campaign = Campaign(
        tmp_path / "camp",
        sleep=lambda _: None,
        workers=2,
        heartbeat_interval_s=0.05,
    )
    execution = campaign.start(slow_specs(6, delay_s=0.3))
    try:
        wait_for_lease(execution)
        execution.request_stop("drain")
    finally:
        result = execution.join(timeout_s=60.0)

    # Everything that was leased committed; nothing new was dispatched.
    assert 0 < len(result.outcomes) < 6
    assert all(o.status == "done" for o in result.outcomes)
    manifest = json.loads((campaign.directory / "manifest.json").read_text())
    done = [n for n, e in manifest["runs"].items() if e["status"] == "done"]
    assert sorted(done) == sorted(o.name for o in result.outcomes)

    # The next pass picks up exactly the undispatched remainder.
    resumed = Campaign(
        tmp_path / "camp",
        sleep=lambda _: None,
        workers=2,
        heartbeat_interval_s=0.05,
    ).execute(slow_specs(6, delay_s=0.05))
    assert resumed.completed
    skipped = {o.name for o in resumed.outcomes if o.status == "skipped"}
    assert skipped == set(done)


def test_cancel_marks_leases_interrupted_for_next_pass(tmp_path):
    campaign = Campaign(
        tmp_path / "camp",
        sleep=lambda _: None,
        workers=2,
        heartbeat_interval_s=0.05,
    )
    execution = campaign.start(slow_specs(4, delay_s=0.5))
    try:
        wait_for_lease(execution)
        execution.request_stop("cancel")
    finally:
        result = execution.join(timeout_s=60.0)

    interrupted = [o for o in result.outcomes if o.status == "interrupted"]
    assert interrupted
    manifest = json.loads((campaign.directory / "manifest.json").read_text())
    for outcome in interrupted:
        entry = manifest["runs"][outcome.name]
        assert entry["status"] == "interrupted"
        assert entry["attempts"] >= 1
