"""Boundary-refinement edge cases for the detector, plus the runtime
contracts (devtools.contracts) guarding the event invariants.

Covers the cases the batch detector's interpolation has to fall back
on: dips touching the first/last sample of the trace, a dip exactly at
``min_duration_samples``, and the recover-threshold hysteresis split.
Every detection result is additionally pushed through the contract
checks, and the streaming detector must agree sample-for-sample.
"""

import numpy as np
import pytest

from repro.core.detect import DetectorConfig, detect_stalls
from repro.core.events import DetectedStall, ProfileReport
from repro.core.streaming import StreamingDetector
from repro.devtools.contracts import (
    ContractViolation,
    check_report,
    check_stall,
    check_stall_sequence,
    check_unit_interval,
    contracts_enabled,
    set_contracts_enabled,
)

PERIOD = 20.0

CFG = DetectorConfig(
    threshold=0.5,
    recover_threshold=0.8,
    min_duration_cycles=10.0,
    min_duration_samples=4,
    merge_gap_samples=0,
    refresh_min_cycles=1000.0,
)


def stream_detect(normalized, chunk=3):
    """Run the streaming detector over ``normalized`` in small chunks."""
    det = StreamingDetector(PERIOD, CFG)
    out = []
    for i in range(0, len(normalized), chunk):
        out.extend(det.push(normalized[i : i + chunk]))
    out.extend(det.finish())
    return out


def assert_batch_stream_agree(normalized):
    batch = detect_stalls(normalized, PERIOD, CFG)
    streamed = stream_detect(normalized)
    assert len(batch) == len(streamed)
    for b, s in zip(batch, streamed):
        assert b.begin_sample == pytest.approx(s.begin_sample)
        assert b.end_sample == pytest.approx(s.end_sample)
        assert b.is_refresh == s.is_refresh
    return batch


# -- boundary refinement edge cases ------------------------------------------


def test_dip_touching_first_sample_falls_back_to_integer_edge():
    x = np.array([0.1] * 6 + [1.0] * 10)
    stalls = assert_batch_stream_agree(x)
    assert len(stalls) == 1
    stall = stalls[0]
    # No sample precedes the trace: the entry edge cannot interpolate.
    assert stall.begin_sample == 0.0
    # The exit edge interpolates between samples 5 (0.1) and 6 (1.0).
    assert 5.0 < stall.end_sample < 6.0
    assert stall.end_sample == pytest.approx(5.0 + (0.5 - 0.1) / (1.0 - 0.1))
    check_stall_sequence(stalls)


def test_dip_touching_last_sample_falls_back_to_integer_edge():
    x = np.array([1.0] * 10 + [0.1] * 6)
    stalls = assert_batch_stream_agree(x)
    assert len(stalls) == 1
    stall = stalls[0]
    assert 9.0 < stall.begin_sample < 10.0
    # The trace ends mid-dip: exit edge is the trace end, uninterpolated.
    assert stall.end_sample == float(len(x))
    check_stall_sequence(stalls)


def test_dip_spanning_entire_trace():
    x = np.full(12, 0.1)
    stalls = assert_batch_stream_agree(x)
    assert len(stalls) == 1
    assert stalls[0].begin_sample == 0.0
    assert stalls[0].end_sample == float(len(x))
    check_stall_sequence(stalls)


def test_dip_exactly_at_min_duration_samples_is_kept():
    x = np.array([1.0] * 5 + [0.1] * CFG.min_duration_samples + [1.0] * 5)
    stalls = assert_batch_stream_agree(x)
    assert len(stalls) == 1
    check_stall(stalls[0])


def test_dip_one_sample_short_of_min_duration_is_dropped():
    x = np.array([1.0] * 5 + [0.1] * (CFG.min_duration_samples - 1) + [1.0] * 5)
    assert assert_batch_stream_agree(x) == []


def test_hysteresis_merges_shallow_recovery():
    # The gap peaks at 0.6: above threshold but below recover_threshold,
    # so the two dips are one stall (a noisy sample cannot split it).
    x = np.array([1.0] * 4 + [0.1] * 5 + [0.6] * 3 + [0.1] * 5 + [1.0] * 4)
    stalls = assert_batch_stream_agree(x)
    assert len(stalls) == 1
    assert stalls[0].duration_samples > 10.0
    check_stall_sequence(stalls)


def test_hysteresis_splits_full_recovery():
    # Same shape, but the gap recovers to 0.9 >= recover_threshold:
    # a genuine busy period separates two stalls.
    x = np.array([1.0] * 4 + [0.1] * 5 + [0.9] * 3 + [0.1] * 5 + [1.0] * 4)
    stalls = assert_batch_stream_agree(x)
    assert len(stalls) == 2
    assert stalls[0].end_sample <= stalls[1].begin_sample
    check_stall_sequence(stalls)


# -- contract checks ---------------------------------------------------------


def make_stall(begin=0.0, end=5.0, period=PERIOD, **kwargs):
    return DetectedStall(
        begin_sample=begin,
        end_sample=end,
        begin_cycle=begin * period,
        end_cycle=end * period,
        min_level=kwargs.pop("min_level", 0.1),
        **kwargs,
    )


def test_check_stall_rejects_inverted_interval():
    with pytest.raises(ContractViolation):
        check_stall(make_stall(begin=6.0, end=5.0))


def test_check_stall_rejects_non_finite_fields():
    with pytest.raises(ContractViolation):
        check_stall(make_stall(begin=float("nan")))


def test_check_stall_sequence_rejects_out_of_order():
    stalls = [make_stall(begin=10.0, end=12.0), make_stall(begin=0.0, end=5.0)]
    with pytest.raises(ContractViolation):
        check_stall_sequence(stalls)


def test_check_unit_interval():
    check_unit_interval(np.array([0.0, 0.5, 1.0]))
    check_unit_interval(np.array([]))
    with pytest.raises(ContractViolation):
        check_unit_interval(np.array([0.0, 1.5]))
    with pytest.raises(ContractViolation):
        check_unit_interval(np.array([np.nan]))


def test_report_validate_passes_on_detector_output():
    x = np.array([1.0] * 5 + [0.1] * 6 + [1.0] * 5)
    stalls = detect_stalls(x, PERIOD, CFG)
    report = ProfileReport(
        stalls=stalls,
        total_cycles=len(x) * PERIOD,
        clock_hz=1e9,
        sample_period_cycles=PERIOD,
    )
    assert report.validate() is report


def test_report_validate_rejects_bad_reports():
    good = make_stall()
    with pytest.raises(ContractViolation):
        check_report(
            ProfileReport(
                stalls=[good],
                total_cycles=-1.0,
                clock_hz=1e9,
                sample_period_cycles=PERIOD,
            )
        )
    with pytest.raises(ContractViolation):
        ProfileReport(
            stalls=[make_stall(begin=3.0, end=1.0)],
            total_cycles=100.0,
            clock_hz=1e9,
            sample_period_cycles=PERIOD,
        ).validate()


def test_streaming_detector_contract_spans_push_calls():
    # The monotonicity contract threads a high-water mark across calls;
    # a healthy stream never trips it.
    x = np.array(
        [1.0] * 4 + [0.1] * 5 + [1.0] * 4 + [0.1] * 5 + [1.0] * 4
    )
    stalls = stream_detect(x, chunk=2)
    assert len(stalls) == 2
    check_stall_sequence(stalls)


def test_contracts_can_be_disabled_and_restored():
    assert contracts_enabled()
    previous = set_contracts_enabled(False)
    try:
        assert previous is True
        assert not contracts_enabled()
        # With contracts off, even a malformed report passes validate-free
        # construction paths (validate() itself still checks explicitly
        # via check_* functions only when invoked through decorators).
        det = StreamingDetector(PERIOD, CFG)
        det.push(np.array([1.0, 0.1, 0.1, 0.1, 0.1, 1.0]))
        det.finish()
    finally:
        set_contracts_enabled(True)
    assert contracts_enabled()
