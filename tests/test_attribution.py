"""Unit tests for spectral attribution."""

import numpy as np
import pytest

from repro.attribution.report import (
    RegionReport,
    attribute_stalls,
    format_region_table,
)
from repro.attribution.spectral import (
    RegionSegment,
    RegionTimeline,
    SpectralProfiler,
    timeline_accuracy,
)
from repro.core.events import DetectedStall, ProfileReport

RATE = 50e6


def tone(freq, n, rate=RATE, rng=None):
    """A busy-looking signal with a characteristic modulation line."""
    t = np.arange(n) / rate
    base = 0.8 + 0.15 * np.sin(2 * np.pi * freq * t)
    if rng is not None:
        base = base + rng.normal(0, 0.01, n)
    return base


class TestSpectralProfiler:
    def make_trained(self, rng):
        prof = SpectralProfiler(window_samples=128, smoothing_frames=3)
        prof.train("slow", tone(1e6, 4096, rng=rng), RATE)
        prof.train("fast", tone(8e6, 4096, rng=rng), RATE)
        return prof

    def test_regions_listed(self, rng):
        prof = self.make_trained(rng)
        assert set(prof.regions) == {"slow", "fast"}

    def test_classify_pure_segments(self, rng):
        prof = self.make_trained(rng)
        test = np.concatenate([tone(1e6, 4096, rng=rng), tone(8e6, 4096, rng=rng)])
        timeline = prof.attribute(test, RATE)
        assert timeline.region_at(1000) == "slow"
        assert timeline.region_at(7000) == "fast"

    def test_segments_contiguous(self, rng):
        prof = self.make_trained(rng)
        test = np.concatenate([tone(1e6, 4096, rng=rng), tone(8e6, 4096, rng=rng)])
        timeline = prof.attribute(test, RATE)
        for a, b in zip(timeline.segments, timeline.segments[1:]):
            assert a.end_sample == pytest.approx(b.begin_sample)

    def test_timeline_accuracy_high_on_clean_signal(self, rng):
        prof = self.make_trained(rng)
        test = np.concatenate([tone(1e6, 4096, rng=rng), tone(8e6, 4096, rng=rng)])
        timeline = prof.attribute(test, RATE)
        acc = timeline_accuracy(
            timeline, [("slow", 0, 4096), ("fast", 4096, 8192)]
        )
        assert acc > 0.9

    def test_untrained_classification_raises(self):
        prof = SpectralProfiler()
        with pytest.raises(RuntimeError):
            prof.attribute(np.zeros(1024), RATE)

    def test_short_training_signal_raises(self):
        prof = SpectralProfiler(window_samples=256)
        with pytest.raises(ValueError):
            prof.train("x", np.zeros(64), RATE)

    def test_smoothing_config_validation(self):
        with pytest.raises(ValueError):
            SpectralProfiler(smoothing_frames=4)  # must be odd

    def test_train_many(self, rng):
        prof = SpectralProfiler(window_samples=128)
        prof.train_many(
            {"a": tone(1e6, 2048, rng=rng), "b": tone(8e6, 2048, rng=rng)}, RATE
        )
        assert set(prof.regions) == {"a", "b"}


class TestRegionTimeline:
    def make(self):
        return RegionTimeline(
            segments=[
                RegionSegment("a", 0, 100),
                RegionSegment("b", 100, 250),
                RegionSegment("a", 250, 300),
            ],
            sample_rate_hz=RATE,
        )

    def test_region_at(self):
        tl = self.make()
        assert tl.region_at(50) == "a"
        assert tl.region_at(150) == "b"
        assert tl.region_at(1000) is None

    def test_samples_per_region(self):
        totals = self.make().samples_per_region()
        assert totals == {"a": 150, "b": 150}

    def test_segment_width(self):
        assert RegionSegment("a", 10, 35).width == 25


class TestAttributionReport:
    def make_report(self):
        period = 20.0
        stalls = [
            DetectedStall(10, 20, 200, 400, 0.05),  # inside region a
            DetectedStall(120, 130, 2400, 2600, 0.05),  # inside region b
            DetectedStall(140, 155, 2800, 3100, 0.05),  # inside region b
        ]
        return ProfileReport(
            stalls=stalls,
            total_cycles=6000,
            clock_hz=1e9,
            sample_period_cycles=period,
        )

    def make_timeline(self):
        return RegionTimeline(
            segments=[RegionSegment("a", 0, 100), RegionSegment("b", 100, 300)],
            sample_rate_hz=RATE,
        )

    def test_rows_cover_regions(self):
        rows = attribute_stalls(self.make_report(), self.make_timeline())
        assert {r.region for r in rows} == {"a", "b"}

    def test_counts_assigned_correctly(self):
        rows = {r.region: r for r in attribute_stalls(self.make_report(), self.make_timeline())}
        assert rows["a"].total_misses == 1
        assert rows["b"].total_misses == 2

    def test_rates_per_mcycle(self):
        rows = {r.region: r for r in attribute_stalls(self.make_report(), self.make_timeline())}
        # Region a spans 100 samples * 20 cycles = 2000 cycles.
        assert rows["a"].miss_rate_per_mcycle == pytest.approx(1e6 / 2000)

    def test_stall_percent(self):
        rows = {r.region: r for r in attribute_stalls(self.make_report(), self.make_timeline())}
        assert rows["a"].stall_percent == pytest.approx(100 * 200 / 2000)

    def test_avg_latency(self):
        rows = {r.region: r for r in attribute_stalls(self.make_report(), self.make_timeline())}
        assert rows["b"].avg_latency_cycles == pytest.approx(250)

    def test_rows_sorted_by_cycles(self):
        rows = attribute_stalls(self.make_report(), self.make_timeline())
        assert rows[0].region == "b"  # larger region first

    def test_format_table(self):
        rows = attribute_stalls(self.make_report(), self.make_timeline())
        text = format_region_table(rows)
        assert "Region" in text
        assert "b" in text
        assert len(text.splitlines()) == 4
