"""Observability integrated with the pipeline and the CLI.

Covers the acceptance path end to end: an instrumented capture ->
profile run must produce a trace whose spans cover normalize, detect
and report correctly nested under profile, and a metrics document
with the stall counters and the detect-latency histogram.  Also holds
the `profile_window` coordinate-shift regression test.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core.events import DetectedStall
from repro.core.profiler import Emprof
from repro.devices import olimex
from repro.experiments.runner import run_device
from repro.workloads import Microbenchmark


@pytest.fixture()
def obs_clean():
    """Observability on, global tracer/metrics cleared before and after."""
    previous = obs.set_obs_enabled(True)
    obs.trace.reset()
    obs.metrics.reset()
    yield
    obs.trace.reset()
    obs.metrics.reset()
    obs.set_obs_enabled(previous)


class TestPipelineInstrumentation:
    def test_device_run_records_span_tree_and_metrics(self, obs_clean):
        run_device(
            Microbenchmark(total_misses=32, consecutive_misses=4, seed=3),
            olimex(),
            bandwidth_hz=40e6,
        )
        names = {r.name for r in obs.trace.records()}
        assert {
            "run_device", "sim.run", "channel.apply", "receiver.capture",
            "profile", "normalize", "detect", "report",
        } <= names

        by_id = {r.span_id: r for r in obs.trace.records()}
        profile = obs.trace.by_name("profile")[0]
        for child in ("normalize", "detect", "report"):
            record = obs.trace.by_name(child)[0]
            assert by_id[record.parent_id].name == "profile"
        assert by_id[profile.parent_id].name == "run_device"

        snap = obs.metrics.snapshot()
        assert snap["counters"]["stalls_detected_total"]["value"] > 0
        assert snap["counters"]["sim_cycles_total"]["value"] > 0
        assert snap["counters"]["receiver_captures_total"]["value"] == 1
        assert snap["histograms"]["detect_latency_seconds"]["count"] == 1
        assert snap["gauges"]["sim_cycles_per_second"]["value"] > 0

    def test_disabled_run_records_nothing(self):
        previous = obs.set_obs_enabled(False)
        obs.trace.reset()
        obs.metrics.reset()
        try:
            run_device(
                Microbenchmark(total_misses=16, consecutive_misses=4, seed=3),
                olimex(),
            )
            assert obs.trace.records() == []
            snap = obs.metrics.snapshot()
            assert snap["counters"]["stalls_detected_total"]["value"] == 0.0
        finally:
            obs.set_obs_enabled(previous)

    def test_observability_does_not_change_results(self):
        """The watcher must not perturb the watched."""
        workload = Microbenchmark(total_misses=32, consecutive_misses=4, seed=5)
        previous = obs.set_obs_enabled(False)
        try:
            off = run_device(workload, olimex(), seed=1).report
            obs.set_obs_enabled(True)
            on = run_device(workload, olimex(), seed=1).report
        finally:
            obs.set_obs_enabled(previous)
        assert on.miss_count == off.miss_count
        assert on.stall_cycles == pytest.approx(off.stall_cycles)


class TestCliArtifacts:
    def test_profile_writes_trace_and_metrics(self, obs_clean, tmp_path, capsys):
        cap_path = tmp_path / "cap.npz"
        spans_path = tmp_path / "spans.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["capture", "--workload", "micro", "--tm", "64", "--cm", "4",
             "-o", str(cap_path)]
        ) == 0
        assert main(
            ["profile", str(cap_path),
             "--trace-out", str(spans_path),
             "--metrics-out", str(metrics_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "trace (" in out and "metrics ->" in out

        trace_doc = json.loads(spans_path.read_text())
        assert trace_doc["format"] == "repro-obs-trace"
        rows = {row["name"]: row for row in trace_doc["spans"]}
        assert {"profile", "normalize", "detect", "report"} <= set(rows)
        for child in ("normalize", "detect", "report"):
            assert rows[child]["parent_id"] == rows["profile"]["span_id"]

        metrics_doc = json.loads(metrics_path.read_text())
        assert metrics_doc["counters"]["stalls_detected_total"]["value"] > 0
        assert "refresh_stalls_total" in metrics_doc["counters"]
        assert metrics_doc["histograms"]["detect_latency_seconds"]["count"] >= 1

    def test_metrics_out_auto_enables_obs(self, tmp_path):
        """--metrics-out works without EMPROF_OBS being set."""
        cap_path = tmp_path / "cap.npz"
        metrics_path = tmp_path / "metrics.prom"
        previous = obs.set_obs_enabled(False)
        obs.metrics.reset()
        try:
            main(["capture", "--workload", "micro", "--tm", "32", "--cm", "4",
                  "-o", str(cap_path)])
            assert main(
                ["profile", str(cap_path), "--metrics-out", str(metrics_path)]
            ) == 0
            # .prom extension selects Prometheus text exposition.
            text = metrics_path.read_text()
            assert "# TYPE stalls_detected_total counter" in text
        finally:
            obs.metrics.reset()
            obs.set_obs_enabled(previous)

    def test_obs_subcommand_renders_artifacts(self, obs_clean, tmp_path, capsys):
        cap_path = tmp_path / "cap.npz"
        spans_path = tmp_path / "spans.json"
        metrics_path = tmp_path / "metrics.json"
        main(["capture", "--workload", "micro", "--tm", "32", "--cm", "4",
              "-o", str(cap_path)])
        main(["profile", str(cap_path), "--trace-out", str(spans_path),
              "--metrics-out", str(metrics_path)])
        capsys.readouterr()
        assert main(["obs", str(metrics_path), "--trace", str(spans_path)]) == 0
        out = capsys.readouterr().out
        assert "stalls_detected_total" in out
        assert "spans" in out

    def test_obs_subcommand_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["obs", str(bad)]) == 2
        assert capsys.readouterr().err

    def test_chrome_trace_format(self, obs_clean, tmp_path):
        cap_path = tmp_path / "cap.npz"
        chrome_path = tmp_path / "chrome.json"
        main(["capture", "--workload", "micro", "--tm", "32", "--cm", "4",
              "-o", str(cap_path)])
        assert main(
            ["profile", str(cap_path), "--trace-out", str(chrome_path),
             "--trace-format", "chrome"]
        ) == 0
        doc = json.loads(chrome_path.read_text())
        assert any(e["name"] == "detect" for e in doc["traceEvents"])

    def test_quiet_and_verbose_flags_parse(self, capsys):
        assert main(["-q", "devices"]) == 0
        capsys.readouterr()
        assert main(["-vv", "devices"]) == 0


class TestProfileWindowShift:
    def test_shifted_translates_only_positions(self):
        stall = DetectedStall(
            begin_sample=10.5, end_sample=12.25,
            begin_cycle=262.5, end_cycle=306.25,
            min_level=0.2, is_refresh=True, region=3,
        )
        moved = stall.shifted(100.0, 2500.0)
        assert moved.begin_sample == pytest.approx(110.5)
        assert moved.end_sample == pytest.approx(112.25)
        assert moved.begin_cycle == pytest.approx(2762.5)
        assert moved.end_cycle == pytest.approx(2806.25)
        # Durations and classification survive the translation - the
        # regression a positional rebuild would scramble.
        assert moved.duration_samples == pytest.approx(stall.duration_samples)
        assert moved.duration_cycles == pytest.approx(stall.duration_cycles)
        assert moved.min_level == pytest.approx(stall.min_level)
        assert moved.is_refresh is True
        assert moved.region == 3

    def test_windowed_stalls_align_with_whole_signal(self, olimex_run):
        """profile_window must report whole-signal coordinates."""
        emprof = Emprof.from_simulation(olimex_run)
        whole = emprof.profile()
        assert whole.miss_count > 10
        begin = len(emprof.signal) // 4
        end = 3 * len(emprof.signal) // 4
        windowed = emprof.profile_window(begin, end)

        period = emprof.sample_period_cycles
        margin = 2.0  # samples of slack for window-edge effects
        interior = [
            s for s in whole.stalls
            if begin + margin < s.begin_sample and s.end_sample < end - margin
        ]
        assert interior, "window must contain interior stalls"
        windowed_begins = np.array([s.begin_sample for s in windowed.stalls])
        for s in interior:
            deltas = np.abs(windowed_begins - s.begin_sample)
            match = windowed.stalls[int(np.argmin(deltas))]
            assert match.begin_sample == pytest.approx(s.begin_sample, abs=1e-6)
            assert match.end_sample == pytest.approx(s.end_sample, abs=1e-6)
            assert match.begin_cycle == pytest.approx(
                match.begin_sample * period, abs=1e-6
            )
            assert match.is_refresh == s.is_refresh
            assert match.min_level == pytest.approx(s.min_level, abs=1e-9)
