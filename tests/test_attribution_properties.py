"""Property-based tests for the attribution layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attribution.spectral import SpectralProfiler
from repro.attribution.zop import ZopMatcher

RATE = 50e6


def tone(freq, n, amp=0.15, rng=None):
    t = np.arange(n)
    x = 0.8 + amp * np.sin(2 * np.pi * freq * t / 64.0)
    if rng is not None:
        x = x + rng.normal(0, 0.01, n)
    return x


@given(gain=st.floats(min_value=0.2, max_value=5.0, allow_nan=False))
@settings(max_examples=25, deadline=None)
def test_spectral_classification_gain_invariant(gain):
    """Probe gain must not change which region a frame matches."""
    rng = np.random.default_rng(0)
    prof = SpectralProfiler(window_samples=64, smoothing_frames=1)
    prof.train("slow", tone(2.0, 1024, rng=rng), RATE)
    prof.train("fast", tone(11.0, 1024, rng=rng), RATE)
    test = np.concatenate([tone(2.0, 512, rng=rng), tone(11.0, 512, rng=rng)])
    base = prof.attribute(test, RATE)
    scaled = prof.attribute(test * gain, RATE)
    probes = (100, 300, 600, 900)
    for p in probes:
        assert base.region_at(p) == scaled.region_at(p)


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=25, deadline=None)
def test_spectral_timeline_covers_signal(seed):
    """Segments tile the analyzed span without overlap."""
    rng = np.random.default_rng(seed)
    prof = SpectralProfiler(window_samples=64, smoothing_frames=1)
    prof.train("a", tone(2.0, 1024, rng=rng), RATE)
    prof.train("b", tone(9.0, 1024, rng=rng), RATE)
    n_blocks = int(rng.integers(2, 6))
    test = np.concatenate(
        [tone(2.0 if k % 2 == 0 else 9.0, 256, rng=rng) for k in range(n_blocks)]
    )
    timeline = prof.attribute(test, RATE)
    segments = timeline.segments
    assert segments
    for a, b in zip(segments, segments[1:]):
        assert a.end_sample == pytest.approx(b.begin_sample)
        assert a.width > 0
    assert segments[0].begin_sample <= 64
    assert segments[-1].end_sample >= len(test) - 64


@given(
    seq=st.lists(st.sampled_from(["A", "B", "C"]), min_size=1, max_size=12),
    gain=st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
)
@settings(max_examples=25, deadline=None)
def test_zop_matching_recovers_any_clean_sequence(seq, gain):
    """For any block sequence, clean matching reconstructs it exactly,
    at any probe gain (templates are normalized)."""
    freqs = {"A": 2.0, "B": 7.0, "C": 13.0}
    matcher = ZopMatcher(max_distance=0.5)
    for name, f in freqs.items():
        matcher.add_template(name, tone(f, 64))
    signal = gain * np.concatenate([tone(freqs[s], 64) for s in seq])
    result = matcher.match(signal)
    assert result.sequence() == seq
    assert result.coverage == pytest.approx(1.0)


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_zop_segments_are_tiled_and_in_bounds(seed):
    rng = np.random.default_rng(seed)
    matcher = ZopMatcher(max_distance=0.6)
    matcher.add_template("A", tone(2.0, 64))
    matcher.add_template("B", tone(7.0, 64))
    n = int(rng.integers(2, 8))
    signal = np.concatenate(
        [tone(2.0 if rng.random() < 0.5 else 7.0, 64, rng=rng) for _ in range(n)]
    )
    result = matcher.match(signal)
    prev_end = 0
    for seg in result.segments:
        assert seg.begin_sample >= prev_end
        assert seg.end_sample <= len(signal)
        assert seg.distance >= 0.0
        prev_end = seg.end_sample
    assert 0.0 <= result.coverage <= 1.0
