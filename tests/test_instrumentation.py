"""Tests for the profiling-instrumentation observer-effect model."""

import pytest

from repro.baselines.instrumentation import (
    INTERRUPT_REGION,
    InstrumentationConfig,
    InstrumentedWorkload,
    observer_effect,
)
from repro.devices import sesc
from repro.sim.machine import simulate
from repro.sim.trace import GroundTruth
from repro.workloads import Microbenchmark
from repro.workloads.base import StreamWorkload
from repro.sim.isa import alu


def tiny_workload(n=5000):
    def factory(config):
        for k in range(n):
            yield alu(0x100 + 4 * (k % 8), region=1)

    return StreamWorkload("tiny", factory, {1: "app"})


class TestInstrumentedWorkload:
    def test_injects_handlers(self):
        iw = InstrumentedWorkload(
            tiny_workload(), InstrumentationConfig(period_instructions=1000)
        )
        regions = [i.region for i in iw.instructions(sesc())]
        assert INTERRUPT_REGION in regions
        assert regions.count(1) == 5000  # app stream untouched

    def test_handler_count_matches_period(self):
        cfg = InstrumentationConfig(
            period_instructions=1000, handler_instructions=100
        )
        iw = InstrumentedWorkload(tiny_workload(5000), cfg)
        stream = list(iw.instructions(sesc()))
        handler = sum(1 for i in stream if i.region == INTERRUPT_REGION)
        assert handler == 5 * 100

    def test_region_names_extended(self):
        iw = InstrumentedWorkload(tiny_workload())
        assert iw.region_names[INTERRUPT_REGION] == "profiler_interrupt"
        assert iw.region_names[1] == "app"

    def test_name_encodes_period(self):
        iw = InstrumentedWorkload(
            tiny_workload(), InstrumentationConfig(period_instructions=123)
        )
        assert "123" in iw.name

    def test_handlers_touch_memory(self):
        cfg = InstrumentationConfig(period_instructions=500, handler_data_lines=8)
        iw = InstrumentedWorkload(tiny_workload(2000), cfg)
        mem_ops = [
            i for i in iw.instructions(sesc())
            if i.region == INTERRUPT_REGION and i.addr
        ]
        assert len(mem_ops) == 4 * 8

    def test_config_validation(self):
        with pytest.raises(ValueError):
            InstrumentationConfig(period_instructions=0)
        with pytest.raises(ValueError):
            InstrumentationConfig(handler_instructions=0)
        with pytest.raises(ValueError):
            InstrumentationConfig(handler_data_lines=-1)


class TestObserverEffect:
    @pytest.fixture(scope="class")
    def runs(self):
        workload = Microbenchmark(
            total_misses=64, consecutive_misses=8, blank_iterations=4000
        )
        clean = simulate(workload, sesc()).ground_truth
        instrumented = simulate(
            InstrumentedWorkload(
                workload, InstrumentationConfig(period_instructions=5_000)
            ),
            sesc(),
        ).ground_truth
        return clean, instrumented

    def test_overhead_positive(self, runs):
        clean, instrumented = runs
        effect = observer_effect(clean, instrumented)
        assert effect.overhead_fraction > 0.0
        assert effect.handler_cycles > 0

    def test_handler_misses_counted(self, runs):
        clean, instrumented = runs
        effect = observer_effect(clean, instrumented)
        assert effect.handler_misses > 0

    def test_app_misses_separated_from_handler_misses(self, runs):
        clean, instrumented = runs
        effect = observer_effect(clean, instrumented)
        app_instr = sum(
            1 for m in instrumented.misses if m.region != INTERRUPT_REGION
        )
        assert app_instr == clean.miss_count() + effect.app_miss_delta

    def test_identity_comparison_is_zero(self, runs):
        clean, _ = runs
        effect = observer_effect(clean, clean)
        assert effect.overhead_fraction == 0.0
        assert effect.app_miss_delta == 0
        assert effect.handler_misses == 0

    def test_rejects_empty_clean(self):
        with pytest.raises(ValueError):
            observer_effect(GroundTruth(), GroundTruth())
