"""Tests for the data-TLB model and its pipeline integration."""

from dataclasses import replace

import pytest

from repro.devices import sesc
from repro.sim.isa import alu, load
from repro.sim.machine import simulate
from repro.sim.tlb import Tlb
from repro.workloads.base import StreamWorkload


class TestTlbUnit:
    def test_first_access_misses(self):
        tlb = Tlb(entries=4)
        assert tlb.access(0x1000) is False
        assert tlb.misses == 1

    def test_same_page_hits(self):
        tlb = Tlb(entries=4, page_bytes=4096)
        tlb.access(0x1000)
        assert tlb.access(0x1FFF) is True

    def test_different_page_misses(self):
        tlb = Tlb(entries=4, page_bytes=4096)
        tlb.access(0x1000)
        assert tlb.access(0x2000) is False

    def test_capacity_bounded(self):
        tlb = Tlb(entries=4)
        for k in range(10):
            tlb.access(k * 4096)
        assert tlb.occupancy == 4

    def test_lru_eviction(self):
        tlb = Tlb(entries=2)
        tlb.access(0 * 4096)
        tlb.access(1 * 4096)
        tlb.access(0 * 4096)  # refresh page 0
        tlb.access(2 * 4096)  # evicts page 1 (least recent)
        assert tlb.access(0 * 4096) is True
        assert tlb.access(1 * 4096) is False

    def test_miss_rate(self):
        tlb = Tlb(entries=4)
        tlb.access(0x0)
        tlb.access(0x0)
        assert tlb.miss_rate() == pytest.approx(0.5)
        assert Tlb().miss_rate() == 0.0

    def test_flush(self):
        tlb = Tlb(entries=4)
        tlb.access(0x0)
        tlb.flush()
        assert tlb.occupancy == 0
        assert tlb.access(0x0) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            Tlb(entries=0)
        with pytest.raises(ValueError):
            Tlb(page_bytes=3000)


def page_hopper(pages, per_page=1):
    """Loads hopping across ``pages`` distinct pages."""

    def factory(config):
        for k in range(400):
            page = (k % pages) * 4096
            addr = 0x4000_0000 + page + (k % per_page) * 64
            yield load(0x100, addr, dep=2)
            for j in range(120):
                yield alu(0x104 + 4 * (j % 8))

    return StreamWorkload(f"hop{pages}", factory, {0: "hop"})


class TestTlbInPipeline:
    def tlb_config(self, walk=100):
        cfg = sesc()
        return replace(
            cfg, tlb_enabled=True, tlb_entries=16, tlb_walk_cycles=walk
        )

    def test_tlb_misses_counted_in_stats(self):
        result = simulate(page_hopper(64), self.tlb_config())
        assert result.stats["tlb_misses"] > 300  # 64 pages >> 16 entries

    def test_small_working_set_stays_resident(self):
        result = simulate(page_hopper(8), self.tlb_config())
        # 8 pages fit the 16-entry TLB: only compulsory misses.
        assert result.stats["tlb_misses"] == 8

    def test_walks_extend_execution(self):
        fast = simulate(page_hopper(64), sesc()).ground_truth.total_cycles
        slow = simulate(
            page_hopper(64), self.tlb_config(walk=100)
        ).ground_truth.total_cycles
        assert slow > fast

    def test_walk_latency_appears_in_miss_latency(self):
        base = simulate(page_hopper(64), sesc())
        walked = simulate(page_hopper(64), self.tlb_config(walk=100))
        lat_base = base.ground_truth.misses[10].latency
        # Find a corresponding walked miss: latencies include +100.
        walked_lat = [m.latency for m in walked.ground_truth.misses[5:15]]
        assert max(walked_lat) >= lat_base + 100

    def test_disabled_by_default(self):
        result = simulate(page_hopper(64), sesc())
        assert result.stats["tlb_misses"] == 0.0

    def test_reset_flushes_tlb(self):
        from repro.sim.machine import Machine

        machine = Machine(self.tlb_config())
        machine.run(page_hopper(8))
        machine.reset()
        second = machine.run(page_hopper(8))
        # Counters are cumulative (like the cache counters); the flush
        # shows as a second round of 8 compulsory translation misses.
        assert second.stats["tlb_misses"] == 16

    def test_without_reset_tlb_stays_warm(self):
        from repro.sim.machine import Machine

        machine = Machine(self.tlb_config())
        machine.run(page_hopper(8))
        warm = machine.run(page_hopper(8))
        assert warm.stats["tlb_misses"] == 8  # no new misses
