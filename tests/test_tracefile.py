"""Tests for instruction-trace recording and replay."""

import numpy as np
import pytest

from repro.devices import sesc
from repro.sim.isa import Instr, alu, load
from repro.sim.machine import simulate
from repro.sim.tracefile import TraceWorkload, record_workload, save_trace
from repro.workloads import Microbenchmark


class TestSaveLoad:
    def test_roundtrip_preserves_instructions(self, tmp_path):
        instrs = [alu(0x100, region=2), load(0x104, 0x2000, dep=3, region=2)]
        path = tmp_path / "t.npz"
        n = save_trace(path, instrs, region_names={2: "main"}, name="mini")
        assert n == 2
        replay = TraceWorkload(path)
        assert replay.name == "mini"
        assert replay.region_names == {2: "main"}
        out = list(replay.instructions(sesc()))
        assert out == instrs

    def test_len(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, [alu(0x100)] * 7)
        assert len(TraceWorkload(path)) == 7

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, [])
        replay = TraceWorkload(path)
        assert len(replay) == 0
        assert list(replay.instructions(sesc())) == []

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, format="something")
        with pytest.raises(ValueError):
            TraceWorkload(path)


class TestReplayEquivalence:
    def test_replay_simulates_identically(self, tmp_path):
        cfg = sesc()
        workload = Microbenchmark(
            total_misses=32, consecutive_misses=4, blank_iterations=2000
        )
        path = tmp_path / "micro.npz"
        count = record_workload(path, workload, cfg)
        assert count > 0

        direct = simulate(workload, cfg, seed=3)
        replayed = simulate(TraceWorkload(path), cfg, seed=3)

        assert (
            direct.ground_truth.total_cycles == replayed.ground_truth.total_cycles
        )
        assert direct.ground_truth.miss_count() == replayed.ground_truth.miss_count()
        np.testing.assert_array_equal(direct.power_trace, replayed.power_trace)

    def test_region_names_carried_to_result(self, tmp_path):
        cfg = sesc()
        workload = Microbenchmark(
            total_misses=16, consecutive_misses=4, blank_iterations=1000
        )
        path = tmp_path / "micro.npz"
        record_workload(path, workload, cfg)
        result = simulate(TraceWorkload(path), cfg)
        assert result.ground_truth.region_names == workload.region_names
