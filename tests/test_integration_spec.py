"""Integration tests over the SPEC models, devices and experiments."""

import numpy as np
import pytest

from repro.core.validate import validate_profile
from repro.devices import alcatel, olimex, samsung, sesc
from repro.experiments.runner import run_device, run_simulator
from repro.workloads import spec_workload

SCALE = 1.0  # full structure: capacity contrasts need the real pass counts


@pytest.fixture(scope="module")
def parser_run():
    return run_simulator(spec_workload("parser", scale=SCALE), config=sesc())


class TestSpecOnSimulator:
    def test_parser_accuracies_in_paper_band(self, parser_run):
        v = validate_profile(parser_run.report, parser_run.result.ground_truth)
        assert v.miss_accuracy > 0.85
        assert v.stall_accuracy > 0.95

    def test_parser_regions_have_contrasting_density(self, parser_run):
        truth = parser_run.result.ground_truth
        by_region = truth.misses_by_region()
        names = {v: k for k, v in truth.region_names.items()}
        batch = by_region.get(names["batch_process"], 0)
        randtable = by_region.get(names["init_randtable"], 0)
        # init_randtable's misses are fixed first-touch (they do not
        # scale with run length), so the contrast tightens at small
        # test scales; the full-scale bench shows the Table V ratio.
        assert batch > 3 * max(1, randtable)

    def test_mcf_has_long_serial_stalls(self):
        run = run_simulator(spec_workload("mcf", scale=SCALE), config=sesc())
        lat = run.report.latencies_cycles()
        assert len(lat) > 20
        # Chase misses expose the full latency: mean near/over 280.
        assert lat.mean() > 230

    def test_vpr_low_miss_density(self):
        vpr = run_simulator(spec_workload("vpr", scale=SCALE), config=sesc())
        bzip2 = run_simulator(spec_workload("bzip2", scale=SCALE), config=sesc())
        assert (
            vpr.result.ground_truth.stall_fraction()
            < bzip2.result.ground_truth.stall_fraction()
        )


class TestDeviceEffects:
    def test_large_llc_reduces_misses(self):
        wl = spec_workload("bzip2", scale=SCALE)
        big = run_device(wl, alcatel()).result.ground_truth.miss_count()
        small = run_device(wl, olimex()).result.ground_truth.miss_count()
        # Section VI-A: Alcatel's 1 MB LLC -> far fewer misses.
        assert big < 0.8 * small

    def test_prefetcher_reduces_misses_on_streams(self):
        wl = spec_workload("equake", scale=SCALE)
        pf = run_device(wl, samsung()).result.ground_truth.miss_count()
        nopf = run_device(wl, olimex()).result.ground_truth.miss_count()
        # Samsung's prefetcher covers the sequential sweeps.
        assert pf < 0.9 * nopf

    def test_prefetcher_useless_on_pointer_chase(self):
        wl = spec_workload("mcf", scale=SCALE)
        pf = run_device(wl, samsung()).result.ground_truth.miss_count()
        nopf = run_device(wl, olimex()).result.ground_truth.miss_count()
        assert pf > 0.75 * nopf

    def test_em_chain_preserves_profile(self):
        # The EM path (noise, drift, bandwidth) must report nearly the
        # same stall totals as the clean simulator trace.
        wl = spec_workload("twolf", scale=SCALE)
        dev = run_device(wl, olimex(), bandwidth_hz=40e6)
        truth = dev.result.ground_truth
        v = validate_profile(dev.report, truth)
        assert v.stall_accuracy > 0.9
