"""The event bus: schema, gating, bounded delivery, sinks."""

import json
import threading

import pytest

from repro.obs import set_obs_enabled
from repro.obs.events import (
    DEFAULT_CAPACITY,
    EVENT_KINDS,
    Event,
    EventBus,
    InMemorySink,
    NDJSONFileSink,
    read_events,
)


@pytest.fixture()
def obs_on():
    previous = set_obs_enabled(True)
    yield
    set_obs_enabled(previous)


@pytest.fixture()
def obs_off():
    previous = set_obs_enabled(False)
    yield
    set_obs_enabled(previous)


class TestEventSchema:
    def test_round_trip(self):
        event = Event(
            kind="chunk_processed",
            t_unix_s=12.5,
            seq=7,
            pid=4242,
            source="worker0",
            trace_id="abc123",
            attrs={"samples": 1024},
        )
        parsed = Event.from_dict(event.to_dict())
        assert parsed == event
        assert json.loads(json.dumps(event.to_dict())) == event.to_dict()

    def test_rejects_wrong_schema(self):
        payload = Event(kind="heartbeat", t_unix_s=0.0, seq=0, pid=1).to_dict()
        payload["schema"] = "something-else"
        with pytest.raises(ValueError):
            Event.from_dict(payload)

    def test_rejects_unknown_kind(self):
        payload = Event(kind="heartbeat", t_unix_s=0.0, seq=0, pid=1).to_dict()
        payload["kind"] = "explosion"
        with pytest.raises(ValueError):
            Event.from_dict(payload)

    def test_kind_catalogue_is_pinned(self):
        assert EVENT_KINDS == (
            "run_started",
            "run_finished",
            "chunk_processed",
            "stall_detected",
            "quality_flag",
            "checkpoint_written",
            "heartbeat",
            "worker_spawned",
            "worker_killed",
            "job_requeued",
            "job_quarantined",
        )


class TestEmitGating:
    def test_disabled_emit_is_a_no_op(self, obs_off):
        bus = EventBus(auto_drain=False)
        sink = InMemorySink()
        bus.add_sink(sink)
        bus.emit("heartbeat")
        bus.drain()
        assert sink.events == []
        assert bus.stats()["total"] == 0

    def test_enabled_emit_reaches_sinks(self, obs_on):
        bus = EventBus(auto_drain=False)
        sink = InMemorySink()
        bus.add_sink(sink)
        bus.emit("run_started", op="test")
        assert bus.drain() == 1
        (event,) = sink.events
        assert event.kind == "run_started"
        assert event.attrs["op"] == "test"

    def test_unknown_kind_raises_when_enabled(self, obs_on):
        bus = EventBus(auto_drain=False)
        with pytest.raises(ValueError):
            bus.emit("not_a_kind")

    def test_ingest_is_not_gated(self, obs_off):
        # Aggregators (the status server) accept foreign events even
        # when local production is off - ingest is an explicit opt-in.
        bus = EventBus(auto_drain=False)
        payload = Event(
            kind="heartbeat", t_unix_s=1.0, seq=3, pid=99, source="w0"
        ).to_dict()
        bus.ingest(payload)
        assert bus.stats()["total"] == 1
        assert bus.tail(1)[0].source == "w0"


class TestBoundedDelivery:
    def test_overflow_counts_dropped_events(self, obs_on):
        bus = EventBus(capacity=8, auto_drain=False)
        bus.add_sink(InMemorySink())
        for _ in range(8 + 5):
            bus.emit("heartbeat")
        stats = bus.stats()
        assert stats["dropped_events"] == 5
        # The admitted events still deliver in full.
        assert bus.drain() == 8

    def test_tail_ring_eviction_is_not_a_drop(self, obs_on):
        bus = EventBus(capacity=DEFAULT_CAPACITY, tail_capacity=4,
                       auto_drain=False)
        for index in range(10):
            bus.emit("heartbeat", n=index)
        tail = bus.tail(100)
        assert [e.attrs["n"] for e in tail] == [6, 7, 8, 9]
        assert bus.stats()["dropped_events"] == 0
        assert bus.stats()["total"] == 10

    def test_auto_drain_delivers_without_manual_drain(self, obs_on):
        bus = EventBus()
        sink = InMemorySink()
        bus.add_sink(sink)
        try:
            bus.emit("quality_flag", flag="gap")
            assert bus.flush(timeout_s=5.0)
            assert [e.kind for e in sink.events] == ["quality_flag"]
        finally:
            bus.close()

    def test_sink_errors_are_counted_not_raised(self, obs_on):
        class Broken:
            def write(self, event):
                raise RuntimeError("sink on fire")

        bus = EventBus(auto_drain=False)
        bus.add_sink(Broken())
        bus.emit("heartbeat")
        bus.drain()
        assert bus.stats()["sink_errors"] == 1


class TestStats:
    def test_chunk_attrs_roll_up(self, obs_on):
        bus = EventBus(auto_drain=False)
        bus.emit("chunk_processed", samples=100, stalls=3, latency_s=0.01)
        bus.emit("chunk_processed", samples=50, stalls=1, latency_s=0.02)
        bus.emit("quality_flag", flag="gap")
        stats = bus.stats()
        assert stats["samples_total"] == 150
        assert stats["stalls_total"] == 4
        assert stats["quality_flags_total"] == 1
        assert stats["counts"]["chunk_processed"] == 2

    def test_heartbeats_tracked_per_source(self, obs_on):
        bus = EventBus(auto_drain=False)
        bus.set_source("w3")
        bus.emit("heartbeat")
        assert "w3" in bus.stats()["last_heartbeat_unix_s"]

    def test_reset_clears_counters_and_sinks(self, obs_on):
        bus = EventBus(auto_drain=False)
        bus.add_sink(InMemorySink())
        bus.emit("heartbeat")
        bus.reset()
        stats = bus.stats()
        assert stats["total"] == 0
        assert bus.tail(10) == []
        # Post-reset the bus is usable again (the fork-child path).
        sink = InMemorySink()
        bus.add_sink(sink)
        bus.emit("heartbeat")
        bus.drain()
        assert len(sink.events) == 1


class TestBusGauges:
    def test_stats_carry_queue_depth_and_sinks(self, obs_on):
        bus = EventBus(auto_drain=False)
        bus.add_sink(InMemorySink())
        bus.emit("heartbeat")
        bus.emit("heartbeat")
        stats = bus.stats()
        assert stats["queue_depth"] == 2
        assert stats["sinks"] == 1
        assert bus.queue_depth == 2
        assert bus.sink_count == 1
        bus.drain()
        assert bus.queue_depth == 0

    def test_export_gauges_publishes_bus_health(self, obs_on):
        from repro.obs.events import export_gauges
        from repro.obs.metrics import MetricsRegistry

        bus = EventBus(auto_drain=False, capacity=2)
        bus.add_sink(InMemorySink())
        for _ in range(5):
            bus.emit("heartbeat")
        registry = MetricsRegistry()
        export_gauges(registry=registry, source=bus)
        gauges = registry.snapshot()["gauges"]
        assert gauges["eventbus_dropped_events"]["value"] == 3.0
        assert gauges["eventbus_queue_depth"]["value"] == 2.0
        assert gauges["eventbus_sinks"]["value"] == 1.0
        assert gauges["eventbus_sink_errors"]["value"] == 0.0

    def test_export_gauges_lands_in_prometheus_text(self, obs_on):
        from repro.obs.events import export_gauges
        from repro.obs.metrics import MetricsRegistry

        bus = EventBus(auto_drain=False)
        registry = MetricsRegistry()
        export_gauges(registry=registry, source=bus)
        text = registry.to_prometheus()
        assert "eventbus_dropped_events" in text
        assert "eventbus_queue_depth" in text


class TestNDJSONFile:
    def test_write_and_read_back(self, obs_on, tmp_path):
        path = tmp_path / "events.ndjsonl"
        bus = EventBus(auto_drain=False)
        bus.add_sink(NDJSONFileSink(path))
        bus.emit("run_started", op="x")
        bus.emit("run_finished", op="x")
        bus.drain()
        bus.close()
        events, bad = read_events(path)
        assert [e.kind for e in events] == ["run_started", "run_finished"]
        assert bad == 0

    def test_torn_and_foreign_lines_are_counted(self, obs_on, tmp_path):
        path = tmp_path / "events.ndjsonl"
        bus = EventBus(auto_drain=False)
        bus.add_sink(NDJSONFileSink(path))
        bus.emit("heartbeat")
        bus.drain()
        bus.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": \n')
            handle.write('{"schema": "foreign", "kind": "heartbeat"}\n')
        events, bad = read_events(path)
        assert len(events) == 1
        assert bad == 2

    def test_missing_file_reads_empty(self, tmp_path):
        events, bad = read_events(tmp_path / "never-written.ndjsonl")
        assert events == [] and bad == 0


class TestConcurrency:
    def test_many_producers_one_consumer(self, obs_on):
        bus = EventBus(capacity=100_000, auto_drain=False)
        sink = InMemorySink()
        bus.add_sink(sink)
        n_threads, per_thread = 8, 250

        def produce():
            for _ in range(per_thread):
                bus.emit("heartbeat")

        threads = [threading.Thread(target=produce) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        bus.drain()
        assert len(sink.events) == n_threads * per_thread
        # seq numbers are unique: no two producers shared a slot.
        seqs = {e.seq for e in sink.events}
        assert len(seqs) == n_threads * per_thread
