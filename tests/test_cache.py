"""Unit tests for the set-associative caches and the hierarchy."""

import numpy as np
import pytest

from repro.sim.cache import Cache, CacheHierarchy, L1, LLC, MEM
from repro.sim.config import CacheConfig


def small_cache(size=1024, line=64, assoc=2, seed=0):
    return Cache(CacheConfig(size, line_bytes=line, associativity=assoc),
                 np.random.default_rng(seed))


class TestCacheBasics:
    def test_first_access_misses(self):
        c = small_cache()
        assert c.access(0x1000) is False
        assert c.misses == 1

    def test_second_access_hits(self):
        c = small_cache()
        c.access(0x1000)
        assert c.access(0x1000) is True
        assert c.hits == 1

    def test_same_line_different_bytes_hit(self):
        c = small_cache()
        c.access(0x1000)
        assert c.access(0x1000 + 63) is True

    def test_adjacent_lines_are_distinct(self):
        c = small_cache()
        c.access(0x1000)
        assert c.access(0x1000 + 64) is False

    def test_accesses_counter(self):
        c = small_cache()
        c.access(0)
        c.access(0)
        c.access(64)
        assert c.accesses == 3

    def test_miss_rate(self):
        c = small_cache()
        c.access(0)
        c.access(0)
        assert c.miss_rate() == pytest.approx(0.5)

    def test_miss_rate_empty(self):
        assert small_cache().miss_rate() == 0.0

    def test_occupancy_grows(self):
        c = small_cache()
        for k in range(4):
            c.access(k * 64)  # consecutive lines land in distinct sets
        assert c.occupancy == 4

    def test_flush_empties(self):
        c = small_cache()
        c.access(0x2000)
        c.flush()
        assert c.occupancy == 0
        assert c.access(0x2000) is False


class TestReplacement:
    def test_set_capacity_respected(self):
        c = small_cache(size=1024, assoc=2)  # 8 sets
        n_sets = c.config.num_sets
        # Four lines mapping to set 0.
        for k in range(4):
            c.access(k * n_sets * 64)
        # Only two ways exist, so two of the four were evicted.
        resident = sum(c.probe(k * n_sets * 64) for k in range(4))
        assert resident == 2

    def test_eviction_is_random_but_deterministic_per_seed(self):
        outcome = []
        for seed in (1, 1):
            c = small_cache(seed=seed)
            n_sets = c.config.num_sets
            for k in range(6):
                c.access(k * n_sets * 64)
            outcome.append([c.probe(k * n_sets * 64) for k in range(6)])
        assert outcome[0] == outcome[1]

    def test_working_set_within_capacity_never_evicts(self):
        c = small_cache(size=4096, assoc=4)
        lines = [k * 64 for k in range(4096 // 64)]
        for addr in lines:
            c.access(addr)
        assert all(c.probe(addr) for addr in lines)


class TestProbeFillInvalidate:
    def test_probe_does_not_allocate(self):
        c = small_cache()
        assert c.probe(0x3000) is False
        assert c.access(0x3000) is False  # still a miss

    def test_probe_does_not_count(self):
        c = small_cache()
        c.probe(0x3000)
        assert c.accesses == 0

    def test_fill_installs_without_counting(self):
        c = small_cache()
        c.fill(0x4000)
        assert c.accesses == 0
        assert c.access(0x4000) is True

    def test_fill_idempotent(self):
        c = small_cache()
        c.fill(0x4000)
        c.fill(0x4000)
        assert c.occupancy == 1

    def test_invalidate_present(self):
        c = small_cache()
        c.access(0x5000)
        assert c.invalidate(0x5000) is True
        assert c.probe(0x5000) is False

    def test_invalidate_absent(self):
        c = small_cache()
        assert c.invalidate(0x5000) is False


class TestHierarchy:
    def make(self):
        return CacheHierarchy(
            CacheConfig(1024, associativity=2),
            CacheConfig(1024, associativity=2),
            CacheConfig(8192, associativity=4),
            np.random.default_rng(0),
        )

    def test_cold_data_access_reaches_memory(self):
        h = self.make()
        assert h.lookup_data(0x9000) == MEM

    def test_l1_hit_after_fill(self):
        h = self.make()
        h.lookup_data(0x9000)
        assert h.lookup_data(0x9000) == L1

    def test_llc_hit_after_l1_eviction(self):
        h = self.make()
        n_sets = h.l1d.config.num_sets
        target = 0x0
        h.lookup_data(target)
        # Evict from tiny L1 by filling its set, without exhausting the LLC set.
        for k in range(1, 6):
            h.lookup_data(k * n_sets * 64)
        if not h.l1d.probe(target):
            assert h.lookup_data(target) == LLC

    def test_instruction_path_separate_from_data(self):
        h = self.make()
        h.lookup_instruction(0x9000)
        # Data L1 never saw it, but the unified LLC did.
        assert not h.l1d.probe(0x9000)
        assert h.llc_resident(0x9000)

    def test_unified_llc_shares_lines(self):
        h = self.make()
        h.lookup_data(0xA000)
        assert h.lookup_instruction(0xA000) in (L1, LLC)

    def test_flush_cold_starts_everything(self):
        h = self.make()
        h.lookup_data(0xB000)
        h.flush()
        assert h.lookup_data(0xB000) == MEM
