"""Hardened streaming pipeline: gaps, quality gating, low confidence."""

import numpy as np
import pytest

from repro import io as repro_io
from repro.core.detect import DetectorConfig, detect_stalls, flag_low_confidence
from repro.core.events import DetectedStall, QualitySummary
from repro.core.normalize import NormalizerConfig, normalize
from repro.core.profiler import Emprof
from repro.core.streaming import StreamingEmprof, profile_chunks
from repro.faults import (
    DropoutFault,
    FaultInjector,
    GainStepFault,
    QualityConfig,
    QualityMonitor,
    iter_chunks,
)

NORM = NormalizerConfig(window_samples=301)
RATE, CLOCK = 50e6, 1e9  # period = 20 cycles/sample


def dip_signal(n=6000, seed=0, dip_every=170, dip_len=13):
    rng = np.random.default_rng(seed)
    x = np.full(n, 0.9) + rng.normal(0, 0.02, n)
    for s in range(200, n - 200, dip_every):
        x[s : s + dip_len] = 0.1 + rng.normal(0, 0.01, dip_len)
    return np.clip(x, 0.0, None)


def stream(x, chunk=997, **kwargs):
    s = StreamingEmprof(RATE, CLOCK, normalizer=NORM, **kwargs)
    for begin in range(0, len(x), chunk):
        s.process(x[begin : begin + chunk])
    return s


class TestCleanSignalUntouched:
    """The quality layer only flags; clean output stays batch-identical."""

    def test_streamed_equals_batch_with_monitor_on(self):
        x = dip_signal()
        batch = detect_stalls(normalize(x, NORM), CLOCK / RATE)
        report = stream(x).finish()
        assert len(report.stalls) == len(batch)
        for got, want in zip(report.stalls, batch):
            assert got.begin_sample == pytest.approx(want.begin_sample)
            assert not got.low_confidence
        assert report.quality is None
        assert report.low_confidence_count == 0

    def test_zero_length_chunks_are_noops(self):
        x = dip_signal()
        s = StreamingEmprof(RATE, CLOCK, normalizer=NORM)
        s.process(np.empty(0))
        for begin in range(0, len(x), 1024):
            s.process(x[begin : begin + 1024])
            s.process(np.empty(0))
        want = stream(x).finish()
        got = s.finish()
        assert [st.begin_sample for st in got.stalls] == [
            st.begin_sample for st in want.stalls
        ]
        assert got.quality is None


class TestGapHandling:
    def test_gap_resynchronizes_and_flags(self):
        x = dip_signal()
        cut = 3000
        s = StreamingEmprof(RATE, CLOCK, normalizer=NORM)
        s.process(x[:cut])
        s.process(x[cut + 40 :], gap_before=40)
        report = s.finish()
        assert s.dropped_samples == 40
        quality = report.quality
        assert quality is not None and quality.gap_count == 1
        assert quality.dropped_samples == 40
        # dropped samples still count toward total time
        assert report.total_cycles == pytest.approx(len(x) * CLOCK / RATE)
        # far-from-gap stalls stay confident; the report still has most
        confident = report.confident_miss_count
        assert confident >= 0.8 * len(report.stalls)
        assert len(report.stalls) > 20

    def test_nan_run_treated_as_gap(self):
        x = dip_signal()
        x[2500:2520] = np.nan
        s = StreamingEmprof(RATE, CLOCK, normalizer=NORM)
        for begin in range(0, len(x), 640):
            s.process(x[begin : begin + 640])
        report = s.finish()
        assert s.dropped_samples == 20
        assert report.quality is not None
        assert report.quality.gap_count == 1
        assert all(np.isfinite(st.begin_sample) for st in report.stalls)

    def test_all_nan_chunk(self):
        s = StreamingEmprof(RATE, CLOCK, normalizer=NORM)
        s.process(dip_signal(n=2000))
        s.process(np.full(64, np.nan))
        s.process(dip_signal(n=2000, seed=1))
        report = s.finish()
        assert s.dropped_samples == 64
        assert report.quality.gap_count == 1

    def test_rejects_negative_gap_and_2d(self):
        s = StreamingEmprof(RATE, CLOCK, normalizer=NORM)
        with pytest.raises(ValueError):
            s.process(np.zeros(4), gap_before=-1)
        with pytest.raises(ValueError):
            s.process(np.zeros((2, 2)))

    def test_finish_is_terminal(self):
        s = StreamingEmprof(RATE, CLOCK, normalizer=NORM)
        s.process(dip_signal(n=1200))
        s.finish()
        with pytest.raises(RuntimeError):
            s.process(np.zeros(4))


class TestQualityGating:
    def test_gain_step_flags_nearby_stalls(self):
        x = dip_signal()
        x[3000:] *= 2.0
        report = stream(x).finish()
        assert report.quality is not None
        assert report.quality.gain_steps >= 1
        flagged = [s for s in report.stalls if s.low_confidence]
        assert flagged, "stalls near the gain step must be low-confidence"
        # the flagged ones cluster around the step
        assert all(
            2000 < s.begin_sample < 4000 for s in flagged
        )

    def test_explicit_clip_level_flags(self):
        x = dip_signal()
        # saturated run eating into the leading edge of the dip at 4110
        x[4080:4112] = 1.5
        report = stream(
            x, quality=QualityConfig(clip_level=1.5)
        ).finish()
        assert report.quality.clipped_samples >= 32
        assert any(s.low_confidence for s in report.stalls)

    def test_plateau_heuristic_detects_saturation(self):
        # busy level pushed into a hard ADC ceiling: long runs of the
        # identical full-scale code, dips untouched
        x = np.minimum(dip_signal() * 1.5, 1.2)
        monitor_cfg = QualityConfig(plateau_run_samples=8)
        report = stream(x, quality=monitor_cfg).finish()
        assert report.quality is not None
        assert report.quality.clipped_samples > 0

    def test_flags_never_change_counts(self):
        x = dip_signal()
        x[3000:] *= 2.0
        hardened = stream(x).finish()
        muted = stream(
            x,
            quality=QualityConfig(
                plateau_run_samples=0, burst_factor=0, gain_step_tolerance=0
            ),
        ).finish()
        assert hardened.miss_count == muted.miss_count
        assert [s.begin_sample for s in hardened.stalls] == [
            s.begin_sample for s in muted.stalls
        ]


class TestQualityMonitorUnit:
    def test_mark_gap_guard(self):
        m = QualityMonitor(QualityConfig(gap_guard_samples=8))
        m.mark_gap(100, dropped=10)
        assert m.is_impaired(95, 96)
        assert m.is_impaired(107, 200)
        assert not m.is_impaired(0, 50)
        assert m.gap_count == 1 and m.dropped_samples == 10

    def test_intervals_merge(self):
        m = QualityMonitor()
        m.mark_gap(100, 1)
        m.mark_gap(104, 1)
        m.mark_gap(500, 1)
        assert len(m.intervals()) == 2

    def test_summary_shape(self):
        m = QualityMonitor()
        assert isinstance(m.summary(), QualitySummary)
        assert not m.summary().any_impairment
        m.mark_gap(10, 2)
        assert m.summary().any_impairment
        assert m.summary().impaired_samples > 0


class TestBatchGating:
    def test_flag_low_confidence_overlap(self):
        stalls = [
            DetectedStall(10, 20, 200, 400, 0.1, False),
            DetectedStall(50, 60, 1000, 1200, 0.1, False),
        ]
        out = flag_low_confidence(stalls, [(15, 30)])
        assert out[0].low_confidence and not out[1].low_confidence

    def test_detect_stalls_quality_intervals_param(self):
        x = dip_signal()
        normalized = normalize(x, NORM)
        plain = detect_stalls(normalized, CLOCK / RATE)
        span = (plain[0].begin_sample, plain[0].end_sample)
        gated = detect_stalls(normalized, CLOCK / RATE, quality_intervals=[span])
        assert gated[0].low_confidence
        assert [s.begin_sample for s in gated] == [s.begin_sample for s in plain]


class TestReportAccounting:
    def make_report(self):
        x = dip_signal()
        impaired = FaultInjector(
            [DropoutFault(rate=0.02), GainStepFault(steps=2)], seed=3
        ).apply(x)
        return profile_chunks(
            iter_chunks(impaired, 512),
            sample_rate_hz=RATE,
            clock_hz=CLOCK,
            normalizer=NORM,
        )

    def test_confidence_accessors(self):
        report = self.make_report()
        assert report.low_confidence_count > 0
        assert (
            report.low_confidence_count + report.confident_miss_count
            == report.miss_count
        )
        assert all(not s.low_confidence for s in report.confident_stalls())

    def test_summary_mentions_quality(self):
        report = self.make_report()
        text = report.summary()
        assert "low-confidence" in text
        assert "signal quality" in text

    def test_report_roundtrip_preserves_flags(self, tmp_path):
        report = self.make_report()
        path = tmp_path / "report.json"
        repro_io.save_report(path, report)
        loaded = repro_io.load_report(path)
        assert loaded == report
        assert loaded.quality == report.quality
        assert loaded.low_confidence_count == report.low_confidence_count
