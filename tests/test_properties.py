"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detect import DetectorConfig, detect_stalls
from repro.core.normalize import NormalizerConfig, normalize
from repro.core.validate import count_accuracy, merge_intervals
from repro.emsignal.dsp import resample_to_rate
from repro.sim.cache import Cache
from repro.sim.config import CacheConfig, MemoryConfig, PowerConfig
from repro.sim.dram import MainMemory
from repro.sim.power import PowerAccumulator

# -- cache invariants ----------------------------------------------------------

addresses = st.lists(st.integers(min_value=0, max_value=1 << 22), min_size=1, max_size=300)


@given(addresses)
@settings(max_examples=50, deadline=None)
def test_cache_occupancy_never_exceeds_capacity(addrs):
    cache = Cache(CacheConfig(2048, line_bytes=64, associativity=2),
                  np.random.default_rng(0))
    for a in addrs:
        cache.access(a)
    assert cache.occupancy <= 2048 // 64


@given(addresses)
@settings(max_examples=50, deadline=None)
def test_cache_access_after_access_hits(addrs):
    cache = Cache(CacheConfig(64 * 1024, associativity=8), np.random.default_rng(0))
    for a in addrs:
        cache.access(a)
        assert cache.probe(a)  # just-inserted line is resident


@given(addresses)
@settings(max_examples=50, deadline=None)
def test_cache_hit_miss_partition(addrs):
    cache = Cache(CacheConfig(2048, associativity=2), np.random.default_rng(0))
    for a in addrs:
        cache.access(a)
    assert cache.hits + cache.misses == len(addrs)


@given(addresses)
@settings(max_examples=30, deadline=None)
def test_compulsory_misses_bound(addrs):
    cache = Cache(CacheConfig(2048, associativity=2), np.random.default_rng(0))
    for a in addrs:
        cache.access(a)
    # The first access to every distinct line is necessarily a miss.
    distinct = len({a >> 6 for a in addrs})
    assert cache.misses >= distinct


# -- DRAM invariants -------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=0, max_value=1 << 20),
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_dram_ready_always_after_request(reqs):
    mem = MainMemory(MemoryConfig(access_latency=100))
    cycle = 0
    for dt, addr in reqs:
        cycle += dt
        resp = mem.access(cycle, addr)
        assert resp.ready_cycle >= cycle + 100
        assert resp.latency == resp.ready_cycle - cycle


@given(st.integers(min_value=1, max_value=10**7))
@settings(max_examples=100, deadline=None)
def test_dram_refresh_windows_ordered_and_bounded(k):
    mem = MainMemory(MemoryConfig(refresh_interval=10_000, refresh_duration=400))
    start, end = mem.refresh_window(k)
    assert k * 10_000 <= start < (k + 1) * 10_000
    assert end == start + 400


# -- power accumulator conservation ------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5_000),
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        ),
        max_size=200,
    )
)
@settings(max_examples=50, deadline=None)
def test_power_activity_conserved(events):
    acc = PowerAccumulator(PowerConfig(bin_cycles=16, idle_level=0.0))
    total = 0.0
    for cycle, weight in events:
        acc.add_issue(cycle, weight)
        total += weight
    trace = acc.finalize(5_001)
    assert trace.sum() * 16 == pytest.approx(total, rel=1e-9, abs=1e-9)


# -- normalization invariants --------------------------------------------------------


signals = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    min_size=5,
    max_size=400,
)


@given(signals)
@settings(max_examples=50, deadline=None)
def test_normalize_output_in_unit_interval(values):
    y = normalize(np.array(values), NormalizerConfig(window_samples=21))
    assert np.all(y >= 0.0)
    assert np.all(y <= 1.0)


@given(signals, st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_normalize_gain_invariant(values, gain):
    cfg = NormalizerConfig(window_samples=21)
    a = normalize(np.array(values), cfg)
    b = normalize(np.array(values) * gain, cfg)
    np.testing.assert_allclose(a, b, atol=1e-9)


# -- detection invariants ---------------------------------------------------------------


@given(signals)
@settings(max_examples=50, deadline=None)
def test_detected_stalls_disjoint_ordered_in_bounds(values):
    x = np.clip(np.array(values) / 10.0, 0.0, 1.0)
    cfg = DetectorConfig(min_duration_cycles=30.0, min_duration_samples=2,
                         refresh_min_cycles=100.0)
    stalls = detect_stalls(x, 20.0, cfg)
    prev_end = -1.0
    for s in stalls:
        assert 0.0 <= s.begin_sample < s.end_sample <= len(x)
        assert s.begin_sample >= prev_end
        prev_end = s.end_sample
        assert s.duration_cycles >= 30.0


# -- interval merging invariants ------------------------------------------------------------


intervals = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.floats(min_value=1, max_value=1e4, allow_nan=False),
    ),
    max_size=100,
)


@given(intervals, st.floats(min_value=0, max_value=1e4, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_merge_intervals_invariants(pairs, gap):
    iv = np.array([[b, b + d] for b, d in pairs]).reshape(-1, 2)
    out = merge_intervals(iv, max_gap=gap)
    # Sorted, disjoint beyond the gap, and coverage is preserved.
    assert np.all(np.diff(out[:, 0]) >= 0) if len(out) > 1 else True
    for j in range(1, len(out)):
        assert out[j, 0] - out[j - 1, 1] > gap
    if len(iv):
        assert out[:, 0].min() == iv[:, 0].min()
        assert out[:, 1].max() == iv[:, 1].max()
        assert len(out) <= len(iv)


@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=100, deadline=None)
def test_count_accuracy_bounds(reported, expected):
    acc = count_accuracy(reported, expected)
    assert 0.0 <= acc <= 1.0
    if reported == expected:
        assert acc == 1.0


# -- resampling invariants -----------------------------------------------------------------


@given(
    st.integers(min_value=32, max_value=500),
    st.sampled_from([10e6, 20e6, 25e6, 40e6, 50e6]),
    st.sampled_from([10e6, 20e6, 25e6, 40e6, 50e6]),
)
@settings(max_examples=40, deadline=None)
def test_resample_length_matches_ratio(n, rate_in, rate_out):
    x = np.linspace(0.0, 1.0, n)
    y = resample_to_rate(x, rate_in, rate_out)
    assert len(y) == pytest.approx(n * rate_out / rate_in, abs=2)
