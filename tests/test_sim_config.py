"""Unit tests for the machine configuration objects."""

import pytest

from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    MemoryConfig,
    PowerConfig,
)


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=32 * 1024, line_bytes=64, associativity=4)
        assert cfg.num_sets == 128

    def test_direct_mapped(self):
        cfg = CacheConfig(size_bytes=8 * 1024, line_bytes=64, associativity=1)
        assert cfg.num_sets == 128

    def test_fully_sized_set(self):
        cfg = CacheConfig(size_bytes=4096, line_bytes=64, associativity=64)
        assert cfg.num_sets == 1

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, line_bytes=48)

    def test_rejects_zero_associativity(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, associativity=0)

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=64, associativity=4)

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, hit_latency=0)


class TestMemoryConfig:
    def test_defaults_valid(self):
        cfg = MemoryConfig()
        assert cfg.refresh_enabled

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            MemoryConfig(access_latency=0)

    def test_rejects_non_power_of_two_banks(self):
        with pytest.raises(ValueError):
            MemoryConfig(num_banks=3)

    def test_rejects_refresh_longer_than_interval(self):
        with pytest.raises(ValueError):
            MemoryConfig(refresh_interval=100, refresh_duration=200)

    def test_refresh_validation_skipped_when_disabled(self):
        cfg = MemoryConfig(refresh_enabled=False, refresh_interval=0)
        assert not cfg.refresh_enabled

    def test_rejects_bad_contention_prob(self):
        with pytest.raises(ValueError):
            MemoryConfig(contention_prob=1.5)

    def test_rejects_negative_contention_delay(self):
        with pytest.raises(ValueError):
            MemoryConfig(contention_mean_cycles=-1.0)


class TestCoreConfig:
    def test_defaults_valid(self):
        cfg = CoreConfig()
        assert cfg.width == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"width": 0},
            {"mshr_entries": 0},
            {"runahead": -1},
            {"fetch_buffer": -1},
            {"store_buffer": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            CoreConfig(**kwargs)


class TestPowerConfig:
    def test_rejects_zero_bin(self):
        with pytest.raises(ValueError):
            PowerConfig(bin_cycles=0)

    def test_rejects_negative_idle(self):
        with pytest.raises(ValueError):
            PowerConfig(idle_level=-0.1)


class TestMachineConfig:
    def test_sample_rate(self):
        cfg = MachineConfig(clock_hz=1e9, power=PowerConfig(bin_cycles=20))
        assert cfg.sample_rate_hz == pytest.approx(50e6)

    def test_cycles_seconds_roundtrip(self):
        cfg = MachineConfig(clock_hz=1e9)
        assert cfg.cycles(1e-6) == 1000
        assert cfg.seconds(1000) == pytest.approx(1e-6)

    def test_line_bytes_shared(self):
        cfg = MachineConfig()
        assert cfg.line_bytes == cfg.llc.line_bytes

    def test_with_bandwidth_bins(self):
        cfg = MachineConfig().with_bandwidth_bins(5)
        assert cfg.power.bin_cycles == 5
        # Original untouched (frozen dataclasses).
        assert MachineConfig().power.bin_cycles == 20

    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ValueError):
            MachineConfig(l1d=CacheConfig(32 * 1024, line_bytes=32))

    def test_rejects_llc_smaller_than_l1(self):
        with pytest.raises(ValueError):
            MachineConfig(
                l1d=CacheConfig(512 * 1024),
                llc=CacheConfig(256 * 1024, associativity=8),
            )

    def test_rejects_zero_clock(self):
        with pytest.raises(ValueError):
            MachineConfig(clock_hz=0)

    def test_rejects_negative_prefetch_degree(self):
        with pytest.raises(ValueError):
            MachineConfig(prefetch_degree=-1)
