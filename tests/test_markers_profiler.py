"""Unit tests for marker-window isolation and the Emprof facade."""

import numpy as np
import pytest

from repro.core.markers import find_marker_window
from repro.core.profiler import Emprof, EmprofConfig
from repro.core.detect import DetectorConfig


def marked_signal(marker_len=500, middle_len=800, low=0.1, high=0.9, seed=0):
    """Two flat busy markers around a dip-rich middle section."""
    rng = np.random.default_rng(seed)
    marker = np.full(marker_len, high) + rng.normal(0, 0.005, marker_len)
    middle = np.full(middle_len, high) + rng.normal(0, 0.03, middle_len)
    for start in range(50, middle_len - 20, 90):
        middle[start : start + 14] = low
    lead = np.full(200, 0.5) + rng.normal(0, 0.12, 200)
    return np.concatenate([lead, marker, middle, marker.copy()])


class TestMarkerWindow:
    def test_finds_window(self):
        sig = marked_signal()
        win = find_marker_window(sig, marker_min_samples=300)
        # Window covers the middle, not the markers.
        assert 650 < win.begin_sample < 780
        assert len(sig) - 580 < win.end_sample < len(sig) - 420

    def test_window_width(self):
        win = find_marker_window(marked_signal(), marker_min_samples=300)
        assert win.width == win.end_sample - win.begin_sample

    def test_markers_reported(self):
        win = find_marker_window(marked_signal(), marker_min_samples=300)
        assert len(win.markers) >= 2

    def test_fails_without_markers(self):
        rng = np.random.default_rng(0)
        noise = 0.5 + 0.2 * rng.random(3000)
        with pytest.raises(ValueError):
            find_marker_window(noise, marker_min_samples=300)

    def test_fails_on_short_signal(self):
        with pytest.raises(ValueError):
            find_marker_window(np.full(100, 0.9), marker_min_samples=300)

    def test_rejects_tiny_marker_min(self):
        with pytest.raises(ValueError):
            find_marker_window(marked_signal(), marker_min_samples=2)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            find_marker_window(np.zeros((10, 10)), marker_min_samples=4)


class TestEmprofFacade:
    def test_profile_counts_dips(self):
        sig = marked_signal()
        prof = Emprof(sig, sample_rate_hz=50e6, clock_hz=1e9)
        report = prof.profile()
        assert report.miss_count > 0
        assert report.total_cycles == pytest.approx(len(sig) * 20.0)

    def test_sample_period(self):
        prof = Emprof(np.zeros(10), sample_rate_hz=50e6, clock_hz=1e9)
        assert prof.sample_period_cycles == pytest.approx(20.0)

    def test_normalized_cached(self):
        prof = Emprof(marked_signal(), sample_rate_hz=50e6, clock_hz=1e9)
        a = prof.normalized()
        b = prof.normalized()
        assert a is b

    def test_profile_window_restricts(self):
        sig = marked_signal()
        prof = Emprof(sig, sample_rate_hz=50e6, clock_hz=1e9)
        win = find_marker_window(sig, marker_min_samples=300)
        inner = prof.profile_window(win.begin_sample, win.end_sample)
        full = prof.profile()
        assert 0 < inner.miss_count <= full.miss_count
        # All window stalls are located inside the window.
        for s in inner.stalls:
            assert win.begin_sample <= s.begin_sample
            assert s.end_sample <= win.end_sample + 1

    def test_profile_window_bad_bounds(self):
        prof = Emprof(np.zeros(100), sample_rate_hz=50e6, clock_hz=1e9)
        with pytest.raises(ValueError):
            prof.profile_window(50, 200)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            Emprof(np.zeros(10), sample_rate_hz=0, clock_hz=1e9)

    def test_rejects_2d_signal(self):
        with pytest.raises(ValueError):
            Emprof(np.zeros((2, 5)), sample_rate_hz=1.0, clock_hz=1.0)

    def test_from_simulation(self, sesc_run):
        prof = Emprof.from_simulation(sesc_run)
        assert prof.clock_hz == sesc_run.config.clock_hz
        assert prof.sample_rate_hz == sesc_run.sample_rate_hz
        assert len(prof.signal) == len(sesc_run.power_trace)

    def test_custom_config_respected(self):
        sig = marked_signal()
        strict = EmprofConfig(
            detector=DetectorConfig(min_duration_cycles=5000.0, refresh_min_cycles=6000.0)
        )
        n_strict = Emprof(sig, 50e6, 1e9, config=strict).profile().miss_count
        n_default = Emprof(sig, 50e6, 1e9).profile().miss_count
        assert n_strict < n_default

    def test_region_names_carried(self):
        prof = Emprof(
            marked_signal(), 50e6, 1e9, region_names={1: "main"}
        )
        assert prof.profile().region_names == {1: "main"}
