"""Unit tests for ground-truth trace records and queries."""

import numpy as np
import pytest

from repro.sim.trace import (
    CAUSE_DATA_MEM,
    CAUSE_LLC_HIT,
    CAUSE_MSHR_FULL,
    DLOAD,
    GroundTruth,
    IFETCH,
    MissRecord,
    StallRecord,
)


def make_truth():
    misses = [
        MissRecord(0, DLOAD, 0x1000, 100, 380, stall_id=0, region=1),
        MissRecord(1, IFETCH, 0x2000, 500, 780, stall_id=1, region=2),
        MissRecord(2, DLOAD, 0x3000, 900, 1180, stall_id=None, region=1),
        MissRecord(3, DLOAD, 0x4000, 1500, 1790, stall_id=2, refresh_blocked=True, region=2),
    ]
    stalls = [
        StallRecord(0, 120, 380, CAUSE_DATA_MEM, [0], region=1),
        StallRecord(1, 510, 780, CAUSE_MSHR_FULL, [1], region=2),
        StallRecord(2, 1520, 1790, CAUSE_DATA_MEM, [3], refresh=True, region=2),
        StallRecord(3, 2000, 2018, CAUSE_LLC_HIT, [], region=1),
    ]
    return GroundTruth(
        misses=misses,
        stalls=stalls,
        total_cycles=2500,
        total_instructions=5000,
        region_names={1: "alpha", 2: "beta"},
        region_cycles={1: 1500, 2: 1000},
    )


class TestMissQueries:
    def test_miss_count(self):
        assert make_truth().miss_count() == 4

    def test_stalling_misses(self):
        assert make_truth().stalling_miss_count() == 3

    def test_hidden_misses(self):
        assert make_truth().hidden_miss_count() == 1

    def test_miss_latency_property(self):
        m = make_truth().misses[0]
        assert m.latency == 280


class TestStallQueries:
    def test_memory_stalls_exclude_llc_hits(self):
        truth = make_truth()
        assert truth.memory_stall_count() == 3
        assert all(s.is_memory for s in truth.memory_stalls())

    def test_memory_stall_cycles(self):
        assert make_truth().memory_stall_cycles() == 260 + 270 + 270

    def test_refresh_stall_count(self):
        assert make_truth().refresh_stall_count() == 1

    def test_stall_fraction(self):
        truth = make_truth()
        assert truth.stall_fraction() == pytest.approx(800 / 2500)

    def test_stall_fraction_empty(self):
        assert GroundTruth().stall_fraction() == 0.0

    def test_stall_intervals_shape(self):
        iv = make_truth().stall_intervals()
        assert iv.shape == (3, 2)
        assert (iv[:, 1] > iv[:, 0]).all()

    def test_stall_intervals_empty(self):
        assert GroundTruth().stall_intervals().shape == (0, 2)

    def test_stall_durations(self):
        np.testing.assert_array_equal(
            make_truth().stall_durations(), [260, 270, 270]
        )

    def test_stall_duration_property(self):
        assert make_truth().stalls[0].duration == 260


class TestRegionQueries:
    def test_misses_by_region(self):
        assert make_truth().misses_by_region() == {1: 2, 2: 2}

    def test_stall_cycles_by_region(self):
        assert make_truth().stall_cycles_by_region() == {1: 260, 2: 540}


class TestTimeline:
    def test_miss_rate_timeline_bins(self):
        # Misses detect at cycles 100, 500, 900 (bin 0) and 1500 (bin 1).
        starts, counts = make_truth().miss_rate_timeline(1000)
        assert len(starts) == 3
        np.testing.assert_array_equal(counts, [3, 1, 0])

    def test_timeline_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            make_truth().miss_rate_timeline(0)

    def test_timeline_counts_total(self):
        _, counts = make_truth().miss_rate_timeline(100)
        assert counts.sum() == 4
