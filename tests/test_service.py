"""Tests for ``repro-campaignd``: the supervised campaign daemon.

Covers the protocol-extension seam in statusd (``extra_requests``),
the submit-payload builders, the in-process job-queue lifecycle
(submit / status / cancel / drain / shutdown), graceful SIGTERM in a
real subprocess, and the acceptance scenario: a 100-run campaign with
a worker kill -9'd mid-run while the daemon answers concurrent status
queries - every run still completes exactly once.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.experiments.service import (
    CampaignService,
    build_specs,
    expand_matrix,
)
from repro.obs import statusd
from repro.obs.events import EventBus
from repro.obs.ledger import RunLedger

REPO = Path(__file__).resolve().parents[1]


def query(service, request, timeout_s=5.0):
    host, port = service.address
    return statusd.query(host, port, request, timeout_s=timeout_s)


def poll_status(service, predicate, timeout_s=60.0, interval_s=0.05):
    """Query ``status`` until ``predicate(response)`` is true."""
    deadline = time.monotonic() + timeout_s
    response = None
    while time.monotonic() < deadline:
        response = query(service, {"req": "status"})
        if predicate(response):
            return response
        time.sleep(interval_s)
    raise AssertionError(f"status condition never met; last: {response}")


def job_table(response):
    return {j["id"]: j for j in response["extra"]["service"]["jobs"]}


# -- submit payload builders ------------------------------------------------


def test_expand_matrix_cross_product_with_broadcast():
    runs = expand_matrix({"tm": [4, 8], "seed": [0, 1], "cm": 4})
    assert len(runs) == 4
    names = [r["name"] for r in runs]
    assert len(set(names)) == 4
    assert all(r["cm"] == 4 for r in runs)
    assert {(r["tm"], r["seed"]) for r in runs} == {
        (4, 0), (4, 1), (8, 0), (8, 1)
    }


def test_expand_matrix_rejects_unknown_key_and_empty_axis():
    with pytest.raises(ServiceError, match="unknown matrix key"):
        expand_matrix({"voltage": [1, 2]})
    with pytest.raises(ServiceError, match="axis 'tm' is empty"):
        expand_matrix({"tm": []})


def test_build_specs_happy_path_and_timeouts():
    specs = build_specs(
        [
            {"name": "a", "tm": 4, "timeout_s": 9.0},
            {"name": "b", "seed": 3},
        ],
        default_timeout_s=2.0,
    )
    assert [s.name for s in specs] == ["a", "b"]
    assert specs[0].timeout_s == 9.0  # per-run override wins
    assert specs[1].timeout_s == 2.0
    source = specs[1].source_factory()
    assert source.seed == 3


def test_build_specs_validation_errors():
    with pytest.raises(ServiceError, match="non-empty list"):
        build_specs([])
    with pytest.raises(ServiceError, match="not a JSON object"):
        build_specs(["tm=4"])
    with pytest.raises(ServiceError, match="unknown keys: voltage"):
        build_specs([{"voltage": 3}])
    with pytest.raises(ServiceError, match="duplicate run name"):
        build_specs([{"name": "x"}, {"name": "x"}])
    with pytest.raises(ServiceError, match="not filesystem-safe"):
        build_specs([{"name": "../escape"}])


# -- the statusd protocol-extension seam ------------------------------------


def test_statusd_extra_request_verbs_dispatch():
    def ping(request):
        return {"ok": True, "pong": request.get("n", 0) + 1}

    def boom(request):
        raise RuntimeError("handler exploded")

    with statusd.StatusServer(
        EventBus(), extra_requests={"ping": ping, "boom": boom}
    ) as server:
        host, port = server.address
        assert statusd.query(host, port, {"req": "ping", "n": 41}) == {
            "ok": True,
            "pong": 42,
        }
        # A raising handler becomes an error response, and the server
        # keeps answering on the same port.
        failed = statusd.query(host, port, {"req": "boom"})
        assert failed["ok"] is False
        assert "RuntimeError: handler exploded" in failed["error"]
        unknown = statusd.query(host, port, {"req": "bogus"})
        assert unknown["ok"] is False
        # Extended verbs are advertised alongside the built-ins.
        assert "ping" in unknown["error"]
        assert "status" in unknown["error"]


# -- in-process daemon lifecycle --------------------------------------------


def small_service(tmp_path, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("heartbeat_interval_s", 0.05)
    return CampaignService(tmp_path / "svc", **kw)


def test_submitted_job_runs_to_completion(tmp_path):
    with small_service(tmp_path) as svc:
        reply = query(
            svc,
            {"req": "submit", "matrix": {"tm": [4, 8], "seed": [0, 1], "cm": 4}},
        )
        assert reply == {"ok": True, "job": "job0001", "runs": 4}
        done = poll_status(
            svc,
            lambda r: job_table(r).get("job0001", {}).get("state") == "done",
        )
        job = job_table(done)["job0001"]
        assert job["counts"]["done"] == 4
        assert job["completed"] is True
        manifest = json.loads(
            (tmp_path / "svc" / "job0001" / "manifest.json").read_text()
        )
        assert len(manifest["runs"]) == 4
        assert all(e["status"] == "done" for e in manifest["runs"].values())


def test_submit_requires_exactly_one_payload_shape(tmp_path):
    with small_service(tmp_path) as svc:
        for request in (
            {"req": "submit"},
            {"req": "submit", "runs": [{}], "matrix": {"tm": 4}},
            {"req": "submit", "matrix": {"voltage": [1]}},
            {"req": "submit", "runs": [{}], "dir": "a/b"},
        ):
            reply = query(svc, request)
            assert reply["ok"] is False
        # Unknown verbs advertise the service extensions.
        unknown = query(svc, {"req": "bogus"})
        assert "submit" in unknown["error"]
        assert "shutdown" in unknown["error"]


def test_cancel_queued_job_and_drain(tmp_path):
    with small_service(tmp_path) as svc:
        first = query(
            svc, {"req": "submit", "matrix": {"seed": list(range(12))}}
        )
        second = query(svc, {"req": "submit", "runs": [{"name": "late"}]})
        assert first["ok"] and second["ok"]
        cancel = query(svc, {"req": "cancel", "job": second["job"]})
        assert cancel == {
            "ok": True,
            "job": second["job"],
            "state": "cancelled",
        }
        missing = query(svc, {"req": "cancel", "job": "job9999"})
        assert missing["ok"] is False
        drained = query(svc, {"req": "drain"})
        assert drained["ok"] is True
        rejected = query(svc, {"req": "submit", "runs": [{}]})
        assert rejected["ok"] is False
        assert "draining" in rejected["error"]
        assert svc.wait(timeout_s=60.0)
        final = svc._jobs
        assert final[first["job"]].state == "done"
        assert final[second["job"]].state == "cancelled"


def test_cancel_running_job_interrupts_leases(tmp_path):
    with small_service(tmp_path) as svc:
        reply = query(
            svc, {"req": "submit", "matrix": {"seed": list(range(40))}}
        )
        poll_status(
            svc,
            lambda r: job_table(r)[reply["job"]].get("queue", {}).get("leases"),
        )
        cancel = query(svc, {"req": "cancel", "job": reply["job"]})
        assert cancel["state"] == "cancelled"
        # The state flips to "cancelled" immediately; wait for the
        # execution to actually unwind before auditing the manifest.
        done = poll_status(
            svc,
            lambda r: "finished_unix_s" in job_table(r)[reply["job"]],
        )
        job = job_table(done)[reply["job"]]
        assert job["state"] == "cancelled"
        # Far fewer runs completed than were submitted, and the manifest
        # keeps the interrupted leases (attempts intact) for a resume.
        manifest = json.loads(
            (tmp_path / "svc" / reply["job"] / "manifest.json").read_text()
        )
        statuses = [e["status"] for e in manifest["runs"].values()]
        assert len(manifest["runs"]) < 40
        assert all(s in ("done", "interrupted") for s in statuses)


def test_shutdown_verb_cancels_queued_jobs_and_exits(tmp_path):
    with small_service(tmp_path) as svc:
        first = query(
            svc, {"req": "submit", "matrix": {"seed": list(range(8))}}
        )
        second = query(
            svc, {"req": "submit", "matrix": {"seed": list(range(8))}}
        )
        reply = query(svc, {"req": "shutdown"})
        assert reply == {"ok": True, "shutting_down": True}
        assert svc.wait(timeout_s=60.0)
        states = {jid: j.state for jid, j in svc._jobs.items()}
        assert states[second["job"]] == "cancelled"
        assert states[first["job"]] in ("done", "cancelled")


# -- graceful SIGTERM in a real daemon process ------------------------------


def _daemon_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def test_sigterm_drains_and_exits_zero(tmp_path):
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments.service",
            "serve",
            "--dir",
            str(tmp_path / "svc"),
            "--port",
            "0",
            "--workers",
            "2",
            "--heartbeat-interval-s",
            "0.05",
        ],
        env=_daemon_env(),
        cwd=tmp_path,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = json.loads(process.stdout.readline())
        assert banner["daemon"] == "repro-campaignd"
        host, port = statusd.parse_address(banner["address"])
        reply = statusd.query(
            host, port, {"req": "submit", "matrix": {"seed": [0, 1, 2, 3]}}
        )
        assert reply["ok"] is True
        process.send_signal(signal.SIGTERM)
        out, err = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, err
    assert json.loads(out.splitlines()[-1]) == {"ok": True, "exited": True}


# -- acceptance: 100 runs, a kill -9, concurrent status queries --------------


def test_hundred_run_campaign_survives_worker_kill(tmp_path):
    svc = CampaignService(
        tmp_path / "svc", workers=3, heartbeat_interval_s=0.05
    ).start()
    status_failures = []
    running_seen = threading.Event()
    stop_polling = threading.Event()

    def hammer_status():
        # The acceptance bar: the daemon answers status queries *while*
        # the pass runs and while the supervisor is killing/respawning.
        while not stop_polling.is_set():
            try:
                response = query(svc, {"req": "status"})
                service = response["extra"]["service"]
                if not response.get("ok"):
                    status_failures.append(response)
                if service["active"] is not None:
                    running_seen.set()
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                status_failures.append(repr(exc))
            time.sleep(0.01)

    poller = threading.Thread(target=hammer_status, daemon=True)
    poller.start()
    try:
        reply = query(
            svc,
            {
                "req": "submit",
                "matrix": {
                    "tm": [2, 4, 8, 16, 32],
                    "seed": list(range(20)),
                    "cm": 2,
                },
            },
        )
        assert reply == {"ok": True, "job": "job0001", "runs": 100}

        # Kill a worker that holds a fresh lease, kill -9 style.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            job = svc._jobs["job0001"]
            execution = job.execution
            if execution is not None:
                snap = execution.snapshot()
                if snap["leases"]:
                    victim = sorted(snap["leases"])[0]
                    os.kill(execution.processes[victim].pid, signal.SIGKILL)
                    break
            time.sleep(0.01)
        else:
            raise AssertionError("no lease to kill")

        done = poll_status(
            svc,
            lambda r: job_table(r)["job0001"]["state"] == "done",
            timeout_s=120.0,
        )
    finally:
        stop_polling.set()
        poller.join(timeout=5.0)
        query(svc, {"req": "shutdown"})
        assert svc.wait(timeout_s=60.0)
        svc.close()

    # Exactly-once: all 100 runs completed, none lost, none doubled.
    job = job_table(done)["job0001"]
    assert job["counts"] == {"done": 100, "failed": 0, "skipped": 0}
    assert job["completed"] is True
    manifest = json.loads(
        (tmp_path / "svc" / "job0001" / "manifest.json").read_text()
    )
    assert len(manifest["runs"]) == 100
    assert all(e["status"] == "done" for e in manifest["runs"].values())
    reports = list((tmp_path / "svc" / "job0001").glob("*.report.json"))
    assert len(reports) == 100

    # The daemon stayed responsive throughout.
    assert running_seen.is_set()
    assert not status_failures

    # The kill left an audit trail: a requeue incident in the ledger.
    ledger = RunLedger(tmp_path / "svc" / "LEDGER_obs.jsonl")
    requeues = ledger.read(kind="campaign-requeue")
    assert requeues
    assert all("died" in r.extra["reason"] for r in requeues)
    requeued_runs = {r.label.split("/", 1)[1] for r in requeues}
    assert all(
        manifest["runs"][name]["attempts"] >= 2 for name in requeued_runs
    )
