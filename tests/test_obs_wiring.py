"""Ledger wiring: the profile CLI, the bench harness, and campaigns."""

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.core.detect import DetectorConfig
from repro.core.normalize import NormalizerConfig
from repro.core.profiler import EmprofConfig
from repro.emsignal.receiver import Capture
from repro.errors import HardwareMissingError
from repro.experiments import Campaign, RunSpec
from repro.obs.ledger import RunLedger

SMALL = EmprofConfig(
    normalizer=NormalizerConfig(window_samples=301),
    detector=DetectorConfig(),
)

BENCH_CONFTEST = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "conftest.py"
)


class StaticSource:
    """A SignalSource returning a synthetic dip capture."""

    def capture(self):
        rng = np.random.default_rng(0)
        x = np.full(3000, 0.9) + rng.normal(0, 0.02, 3000)
        for s in range(200, 2800, 170):
            x[s : s + 13] = 0.1
        return Capture(
            magnitude=np.clip(x, 0.0, None),
            sample_rate_hz=50e6,
            clock_hz=1e9,
            bandwidth_hz=50e6,
            region_names={},
        )


class DeadSource:
    def capture(self):
        raise HardwareMissingError("probe unplugged")


class TestProfileCliLedger:
    def _capture(self, tmp_path):
        path = tmp_path / "cap.npz"
        main(
            ["capture", "--workload", "micro", "--tm", "64", "--cm", "4",
             "-o", str(path)]
        )
        return path

    def test_profile_appends_profile_record(self, tmp_path, capsys):
        cap = self._capture(tmp_path)
        ledger_path = tmp_path / "ledger.jsonl"
        code = main(["profile", str(cap), "--ledger", str(ledger_path)])
        assert code == 0
        assert "ledger +1" in capsys.readouterr().out
        records, bad = RunLedger(ledger_path).read_with_errors()
        assert bad == 0
        (entry,) = records
        assert entry.kind == "profile"
        assert entry.label == "cap"
        assert entry.wall_time_s > 0
        assert entry.config_fingerprint.startswith("sha256:")
        assert entry.extra["capture"] == str(cap)
        assert "miss_count" in entry.extra

    def test_two_profiles_make_two_entries(self, tmp_path):
        cap = self._capture(tmp_path)
        ledger_path = tmp_path / "ledger.jsonl"
        main(["profile", str(cap), "--ledger", str(ledger_path)])
        main(["profile", str(cap), "--ledger", str(ledger_path)])
        assert len(RunLedger(ledger_path)) == 2

    def test_no_ledger_flag_no_ledger_file(self, tmp_path):
        cap = self._capture(tmp_path)
        main(["profile", str(cap)])
        assert list(tmp_path.glob("*.jsonl")) == []

    def test_obs_subcommand_delegates_with_flags(self, tmp_path):
        # `repro obs regress ... --allow-missing` must survive the
        # outer parser (unknown-flag forwarding is obs-only).
        missing = str(tmp_path / "absent.jsonl")
        assert main(["obs", "regress", missing, "--allow-missing"]) == 0

    def test_obs_subcommand_exit_codes_pass_through(self, tmp_path):
        missing = str(tmp_path / "absent.jsonl")
        assert main(["obs", "regress", missing]) == 2
        assert main(["obs", "ledger", missing]) == 2

    def test_ledger_defaults_to_bounded_tail(self, tmp_path, capsys):
        # A long history must not flood the terminal by default: the
        # last 20 entries plus a banner, with --tail 0 opting into all.
        from repro.obs.ledger import record

        ledger_path = tmp_path / "long.jsonl"
        ledger = RunLedger(ledger_path, fsync=False)
        for i in range(25):
            ledger.append(
                record(kind="profile", label=f"cap{i:02d}", wall_time_s=0.01)
            )
        assert main(["obs", "ledger", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "showing last 20 of 25 entries" in out
        assert "--tail 0 for all" in out
        assert "cap04" not in out  # oldest five hidden
        assert "cap24" in out

        assert main(["obs", "ledger", str(ledger_path), "--tail", "0"]) == 0
        out = capsys.readouterr().out
        assert "showing last" not in out
        assert "cap00" in out and "cap24" in out


class TestCampaignTelemetry:
    def _specs(self, n=1, factory=StaticSource):
        return [
            RunSpec(name=f"r{i}", source_factory=factory, config=SMALL)
            for i in range(n)
        ]

    def test_ledger_gets_run_and_summary_records(self, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        campaign = Campaign(tmp_path / "camp", ledger=ledger_path)
        campaign.execute(self._specs(2))
        records = RunLedger(ledger_path).read()
        kinds = [r.kind for r in records]
        assert kinds == ["campaign-run", "campaign-run", "campaign"]
        run = records[0]
        assert run.label == "camp/r0"
        assert run.extra["status"] == "done"
        assert run.wall_time_s > 0
        assert run.extra["miss_count"] > 0  # report stats travel along
        summary = records[-1]
        assert summary.label == "camp"
        assert summary.extra["counts"]["done"] == 2
        assert summary.extra["completed"] is True

    def test_failed_run_recorded_with_error(self, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        campaign = Campaign(
            tmp_path / "camp", ledger=ledger_path, sleep=lambda _: None
        )
        campaign.execute(self._specs(1, factory=DeadSource))
        run, summary = RunLedger(ledger_path).read()
        assert run.extra["status"] == "failed"
        assert "HardwareMissingError" in run.extra["error"]
        assert summary.extra["counts"]["failed"] == 1

    def test_flight_sidecars_written_and_retained(self, tmp_path):
        campaign = Campaign(tmp_path / "camp", flight=True, flight_retain=2)
        campaign.execute(self._specs(4))
        sidecars = sorted(p.name for p in (tmp_path / "camp").glob("*.flight"))
        assert sidecars == ["r2.flight", "r3.flight"]  # newest two kept
        from repro import io as repro_io

        header, events = repro_io.load_flight(tmp_path / "camp" / "r3.flight")
        assert header["run"] == "r3"
        assert events
        # Saved reports carry the evidence too.
        report = repro_io.load_report(campaign.report_path("r3"))
        assert report.evidence is not None
        assert len(report.evidence.stalls) == len(report.stalls)

    def test_no_flight_by_default(self, tmp_path):
        from repro import io as repro_io

        campaign = Campaign(tmp_path / "camp")
        campaign.execute(self._specs(1))
        assert list((tmp_path / "camp").glob("*.flight")) == []
        assert repro_io.load_report(campaign.report_path("r0")).evidence is None

    def test_flight_retain_validated(self, tmp_path):
        with pytest.raises(ValueError):
            Campaign(tmp_path / "camp", flight=True, flight_retain=0)

    def test_manifest_entries_carry_timing(self, tmp_path):
        campaign = Campaign(tmp_path / "camp")
        campaign.execute(self._specs(1))
        payload = json.loads(campaign.manifest_path.read_text())
        entry = payload["runs"]["r0"]
        assert entry["status"] == "done"
        assert entry["wall_time_s"] > 0
        assert entry["finished_unix_s"] > 0

    def test_heartbeat_progress(self, tmp_path):
        campaign = Campaign(tmp_path / "camp")
        assert campaign.load_progress() == {}  # fresh campaign
        campaign.execute(self._specs(3))
        progress = campaign.load_progress()
        assert progress["counts"] == {"done": 3, "failed": 0, "skipped": 0}
        assert progress["total_planned"] == 3
        assert progress["last_run"] == "r2"
        assert progress["updated_unix_s"] > 0

    def test_ledger_accepts_runledger_instance(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        campaign = Campaign(tmp_path / "camp", ledger=ledger)
        assert campaign.ledger is ledger

    def test_no_ledger_is_the_default(self, tmp_path):
        campaign = Campaign(tmp_path / "camp")
        result = campaign.execute(self._specs(1))
        assert result.completed
        assert campaign.ledger is None
        assert list(tmp_path.glob("*.jsonl")) == []

    def test_resume_skips_but_still_summarizes(self, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        Campaign(tmp_path / "camp", ledger=ledger_path).execute(self._specs(1))
        Campaign(tmp_path / "camp", ledger=ledger_path).execute(self._specs(1))
        records = RunLedger(ledger_path).read()
        # Second pass: everything skipped => no campaign-run record,
        # one more summary.
        assert [r.kind for r in records] == [
            "campaign-run", "campaign", "campaign",
        ]
        assert records[-1].extra["counts"]["skipped"] == 1


class TestBenchHarness:
    """The bench conftest's session hook, exercised in isolation."""

    @pytest.fixture()
    def bench_conftest(self, tmp_path, monkeypatch):
        spec = importlib.util.spec_from_file_location(
            "bench_conftest_under_test", BENCH_CONFTEST
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        monkeypatch.setattr(module, "_OUT_PATH", tmp_path / "BENCH_obs.json")
        monkeypatch.setattr(
            module, "_LEDGER_PATH", tmp_path / "LEDGER_obs.jsonl"
        )
        return module

    @staticmethod
    def _session(module, nodeid, wall):
        module._BENCH_RESULTS.clear()
        module._BENCH_RESULTS.append(
            {
                "benchmark": nodeid,
                "wall_time_s": wall,
                "metrics": {"counters": {}},
                "spans": {"detect": {"count": 1, "total_s": wall, "mean_s": wall}},
            }
        )
        module.pytest_sessionfinish(session=None, exitstatus=0)

    def test_snapshot_is_schema_stamped(self, bench_conftest):
        self._session(bench_conftest, "benchmarks/test_a.py::test_a", 0.5)
        payload = json.loads(bench_conftest._OUT_PATH.read_text())
        assert payload["format"] == "repro-obs-bench"
        assert payload["schema_version"] == 1
        assert payload["git_rev"]
        assert len(payload["benchmarks"]) == 1

    def test_two_sessions_two_ledger_entries(self, bench_conftest):
        # The acceptance check: `make bench` twice appends two ledger
        # entries while BENCH_obs.json holds only the latest session.
        self._session(bench_conftest, "benchmarks/test_a.py::test_a", 0.5)
        self._session(bench_conftest, "benchmarks/test_a.py::test_a", 0.6)
        records = RunLedger(bench_conftest._LEDGER_PATH).read()
        assert [r.kind for r in records] == ["bench", "bench"]
        assert [r.wall_time_s for r in records] == [0.5, 0.6]
        payload = json.loads(bench_conftest._OUT_PATH.read_text())
        assert len(payload["benchmarks"]) == 1  # latest session only

    def test_no_results_no_files(self, bench_conftest):
        bench_conftest._BENCH_RESULTS.clear()
        bench_conftest.pytest_sessionfinish(session=None, exitstatus=0)
        assert not bench_conftest._OUT_PATH.exists()
        assert not bench_conftest._LEDGER_PATH.exists()

    def test_snapshot_write_leaves_no_temp(self, bench_conftest, tmp_path):
        self._session(bench_conftest, "benchmarks/test_a.py::test_a", 0.5)
        leftovers = [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
