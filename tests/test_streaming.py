"""Tests for streaming EMPROF: batch equivalence and chunk handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detect import DetectorConfig, detect_stalls
from repro.core.normalize import NormalizerConfig, normalize
from repro.core.profiler import Emprof
from repro.core.streaming import (
    OnlineNormalizer,
    StreamingDetector,
    StreamingEmprof,
    profile_chunks,
)

NORM_CFG = NormalizerConfig(window_samples=301)
DET_CFG = DetectorConfig()


def dip_signal(n=5000, seed=0, dip_every=170, dip_len=13):
    rng = np.random.default_rng(seed)
    x = np.full(n, 0.9) + rng.normal(0, 0.02, n)
    for s in range(200, n - 200, dip_every):
        x[s : s + dip_len] = 0.1 + rng.normal(0, 0.01, dip_len)
    return np.clip(x, 0.0, None)


def stream_normalize(x, chunks, cfg=NORM_CFG):
    on = OnlineNormalizer(cfg)
    parts = [on.push(c) for c in np.array_split(x, chunks)]
    parts.append(on.flush())
    return np.concatenate([p for p in parts if len(p)])


class TestOnlineNormalizer:
    @pytest.mark.parametrize("chunks", [1, 7, 53, 499])
    def test_matches_batch_any_chunking(self, chunks):
        x = dip_signal()
        batch = normalize(x, NORM_CFG)
        stream = stream_normalize(x, chunks)
        np.testing.assert_allclose(stream, batch, atol=1e-12)

    def test_latency_is_half_window(self):
        on = OnlineNormalizer(NORM_CFG)
        assert on.latency_samples == 150
        out = on.push(np.full(150, 0.5))
        assert len(out) == 0  # nothing determined yet
        out = on.push(np.full(1, 0.5))
        assert len(out) == 1  # position 0 now has full right context

    def test_flush_emits_everything(self):
        x = dip_signal(n=800)
        on = OnlineNormalizer(NORM_CFG)
        emitted = len(on.push(x)) + len(on.flush())
        assert emitted == len(x)

    def test_rejects_smoothing(self):
        with pytest.raises(ValueError):
            OnlineNormalizer(NormalizerConfig(window_samples=101, smooth_samples=3))

    def test_single_sample_pushes(self):
        x = dip_signal(n=700)
        on = OnlineNormalizer(NORM_CFG)
        parts = [on.push(np.array([v])) for v in x]
        parts.append(on.flush())
        stream = np.concatenate([p for p in parts if len(p)])
        np.testing.assert_allclose(stream, normalize(x, NORM_CFG), atol=1e-12)


class TestStreamingDetector:
    def run_stream(self, normalized, chunks, cfg=DET_CFG):
        det = StreamingDetector(20.0, cfg)
        stalls = []
        for c in np.array_split(normalized, chunks):
            stalls.extend(det.push(c))
        stalls.extend(det.finish())
        return stalls

    @pytest.mark.parametrize("chunks", [1, 5, 61])
    def test_matches_batch_detector(self, chunks):
        norm = normalize(dip_signal(), NORM_CFG)
        batch = detect_stalls(norm, 20.0, DET_CFG)
        stream = self.run_stream(norm, chunks)
        assert len(stream) == len(batch)
        for a, b in zip(batch, stream):
            assert a.begin_sample == pytest.approx(b.begin_sample, abs=1e-9)
            assert a.end_sample == pytest.approx(b.end_sample, abs=1e-9)
            assert a.is_refresh == b.is_refresh
            assert a.min_level == pytest.approx(b.min_level, abs=1e-12)

    def test_dip_split_across_chunks(self):
        x = np.full(400, 0.95)
        x[195:215] = 0.05  # a dip straddling the 200-sample chunk border
        det = StreamingDetector(20.0, DET_CFG)
        stalls = list(det.push(x[:200]))
        stalls += det.push(x[200:])
        stalls += det.finish()
        assert len(stalls) == 1
        assert stalls[0].begin_sample == pytest.approx(194.5, abs=0.6)

    def test_open_dip_at_end_finalized(self):
        x = np.full(300, 0.95)
        x[280:] = 0.05
        det = StreamingDetector(20.0, DET_CFG)
        stalls = list(det.push(x))
        assert stalls == []  # not final until finish()
        stalls = det.finish()
        assert len(stalls) == 1
        assert stalls[0].end_sample == pytest.approx(300, abs=0.01)

    def test_hysteresis_across_chunks(self):
        x = np.full(400, 0.95)
        x[100:120] = 0.05
        x[120] = 0.55  # above threshold, below recover -> must merge
        x[121:140] = 0.05
        det = StreamingDetector(20.0, DET_CFG)
        stalls = list(det.push(x[:121]))  # chunk ends inside the gap
        stalls += det.push(x[121:])
        stalls += det.finish()
        assert len(stalls) == 1

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            StreamingDetector(0.0)


class TestStreamingEmprof:
    @pytest.mark.parametrize("chunks", [3, 29])
    def test_matches_batch_profiler(self, chunks):
        x = dip_signal()
        batch = Emprof(x, 50e6, 1e9).profile()
        stream = profile_chunks(
            np.array_split(x, chunks), 50e6, 1e9, normalizer=NORM_CFG
        )
        # The batch profiler uses the same normalizer defaults except
        # window; align by re-running batch with the same config.
        from repro.core.profiler import EmprofConfig

        batch = Emprof(
            x, 50e6, 1e9, config=EmprofConfig(normalizer=NORM_CFG)
        ).profile()
        assert stream.miss_count == batch.miss_count
        assert stream.stall_cycles == pytest.approx(batch.stall_cycles)
        assert stream.total_cycles == pytest.approx(batch.total_cycles)

    def test_incremental_results_monotone(self):
        x = dip_signal()
        streamer = StreamingEmprof(50e6, 1e9, normalizer=NORM_CFG)
        seen = 0
        for c in np.array_split(x, 10):
            streamer.process(c)
            assert len(streamer.stalls_so_far) >= seen
            seen = len(streamer.stalls_so_far)
        report = streamer.finish()
        assert report.miss_count >= seen

    def test_process_after_finish_rejected(self):
        streamer = StreamingEmprof(50e6, 1e9)
        streamer.finish()
        with pytest.raises(RuntimeError):
            streamer.process(np.zeros(10))

    def test_rejects_2d_chunk(self):
        streamer = StreamingEmprof(50e6, 1e9)
        with pytest.raises(ValueError):
            streamer.process(np.zeros((2, 2)))

    def test_on_simulated_capture(self, olimex_run):
        # Stream the real device power trace in small chunks and match
        # the batch profiler on it.
        from repro.core.profiler import EmprofConfig

        x = olimex_run.power_trace
        rate = olimex_run.sample_rate_hz
        clock = olimex_run.config.clock_hz
        batch = Emprof(
            x, rate, clock, config=EmprofConfig(normalizer=NORM_CFG)
        ).profile()
        stream = profile_chunks(
            np.array_split(x, 17), rate, clock, normalizer=NORM_CFG
        )
        assert stream.miss_count == batch.miss_count
        assert stream.stall_cycles == pytest.approx(batch.stall_cycles)


@given(
    data=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=30,
        max_size=300,
    ),
    chunks=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=60, deadline=None)
def test_streaming_equals_batch_property(data, chunks):
    """For any signal and any chunking, streaming == batch."""
    x = np.array(data)
    cfg_n = NormalizerConfig(window_samples=21)
    cfg_d = DetectorConfig(
        min_duration_cycles=30.0, min_duration_samples=2, refresh_min_cycles=100.0
    )
    norm = normalize(x, cfg_n)
    batch = detect_stalls(norm, 20.0, cfg_d)
    stream_report = profile_chunks(
        np.array_split(x, chunks), 50e6, 1e9, normalizer=cfg_n, detector=cfg_d
    )
    assert stream_report.miss_count == len(batch)
    for a, b in zip(batch, stream_report.stalls):
        assert abs(a.begin_sample - b.begin_sample) < 1e-9
        assert abs(a.end_sample - b.end_sample) < 1e-9
