"""Tests for the signal-source abstraction."""

import numpy as np
import pytest

from repro import io as repro_io
from repro.acquire import (
    FileSource,
    SdrSource,
    SignalSource,
    SimulatedSource,
    profile_source,
)
from repro.devices import samsung
from repro.workloads import Microbenchmark


@pytest.fixture(scope="module")
def small_workload():
    return Microbenchmark(total_misses=32, consecutive_misses=4,
                          blank_iterations=4000)


class TestSimulatedSource:
    def test_implements_protocol(self, small_workload):
        assert isinstance(SimulatedSource(small_workload), SignalSource)

    def test_capture_defaults_to_olimex(self, small_workload):
        source = SimulatedSource(small_workload)
        cap = source.capture()
        assert cap.clock_hz == pytest.approx(1.008e9)
        assert cap.bandwidth_hz == 40e6
        assert len(cap.magnitude) > 100

    def test_custom_device(self, small_workload):
        source = SimulatedSource(small_workload, device=samsung())
        assert source.capture().clock_hz == pytest.approx(0.8e9)

    def test_ground_truth_retained(self, small_workload):
        source = SimulatedSource(small_workload)
        assert source.last_result is None
        source.capture()
        assert source.last_result is not None
        assert source.last_result.ground_truth.miss_count() > 30

    def test_deterministic_per_seed(self, small_workload):
        a = SimulatedSource(small_workload, seed=5).capture()
        b = SimulatedSource(small_workload, seed=5).capture()
        np.testing.assert_array_equal(a.magnitude, b.magnitude)


class TestFileSource:
    def test_roundtrip(self, small_workload, tmp_path):
        cap = SimulatedSource(small_workload).capture()
        path = tmp_path / "cap.npz"
        repro_io.save_capture(path, cap)
        loaded = FileSource(path).capture()
        np.testing.assert_array_equal(loaded.magnitude, cap.magnitude)
        assert isinstance(FileSource(path), SignalSource)


class TestSdrSource:
    def test_raises_with_adapter_hint(self):
        with pytest.raises(NotImplementedError, match="SoapySDR"):
            SdrSource()


class TestProfileSource:
    def test_profiles_any_source(self, small_workload):
        capture, report = profile_source(SimulatedSource(small_workload))
        assert report.miss_count > 0
        assert report.clock_hz == capture.clock_hz
