"""Tests for capture/report/ground-truth serialization."""

import numpy as np
import pytest

from repro import io as repro_io
from repro.core.events import DetectedStall, ProfileReport
from repro.emsignal.receiver import Capture
from repro.sim.trace import (
    CAUSE_DATA_MEM,
    DLOAD,
    GroundTruth,
    IFETCH,
    MissRecord,
    StallRecord,
)


@pytest.fixture()
def capture():
    rng = np.random.default_rng(0)
    return Capture(
        magnitude=rng.random(500),
        sample_rate_hz=40e6,
        clock_hz=1.008e9,
        bandwidth_hz=40e6,
        region_names={1: "main", 2: "loop"},
    )


@pytest.fixture()
def report():
    stalls = [
        DetectedStall(10.5, 24.25, 210.0, 485.0, 0.04, is_refresh=False, region=1),
        DetectedStall(100.0, 220.0, 2000.0, 4400.0, 0.02, is_refresh=True),
    ]
    return ProfileReport(
        stalls=stalls,
        total_cycles=50_000.0,
        clock_hz=1.008e9,
        sample_period_cycles=25.2,
        region_names={1: "main"},
    )


@pytest.fixture()
def truth():
    misses = [
        MissRecord(0, DLOAD, 0x1000, 100, 380, stall_id=0, region=1),
        MissRecord(1, IFETCH, 0x2000, 500, 780, stall_id=None,
                   refresh_blocked=True, region=2),
    ]
    stalls = [StallRecord(0, 120, 380, CAUSE_DATA_MEM, [0], False, 1)]
    return GroundTruth(
        misses=misses,
        stalls=stalls,
        total_cycles=1000,
        total_instructions=4000,
        region_names={1: "a", 2: "b"},
        region_cycles={1: 600, 2: 400},
    )


class TestCaptureRoundtrip:
    def test_roundtrip(self, capture, tmp_path):
        path = tmp_path / "cap.npz"
        repro_io.save_capture(path, capture)
        loaded = repro_io.load_capture(path)
        np.testing.assert_array_equal(loaded.magnitude, capture.magnitude)
        assert loaded.sample_rate_hz == capture.sample_rate_hz
        assert loaded.clock_hz == capture.clock_hz
        assert loaded.bandwidth_hz == capture.bandwidth_hz
        assert loaded.region_names == capture.region_names

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, format="something-else", data=np.zeros(3))
        with pytest.raises(ValueError):
            repro_io.load_capture(path)


class TestReportRoundtrip:
    def test_roundtrip(self, report, tmp_path):
        path = tmp_path / "report.json"
        repro_io.save_report(path, report)
        loaded = repro_io.load_report(path)
        assert loaded.miss_count == report.miss_count
        assert loaded.total_cycles == report.total_cycles
        assert loaded.clock_hz == report.clock_hz
        assert loaded.region_names == report.region_names
        for a, b in zip(report.stalls, loaded.stalls):
            assert a == b

    def test_statistics_survive(self, report, tmp_path):
        path = tmp_path / "report.json"
        repro_io.save_report(path, report)
        loaded = repro_io.load_report(path)
        assert loaded.stall_cycles == pytest.approx(report.stall_cycles)
        assert loaded.refresh_count == report.refresh_count

    def test_dict_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            repro_io.report_from_dict({"format": "nope", "stalls": []})


class TestGroundTruthRoundtrip:
    def test_roundtrip(self, truth, tmp_path):
        path = tmp_path / "truth.npz"
        repro_io.save_ground_truth(path, truth)
        loaded = repro_io.load_ground_truth(path)
        assert loaded.total_cycles == truth.total_cycles
        assert loaded.total_instructions == truth.total_instructions
        assert loaded.region_names == truth.region_names
        assert loaded.region_cycles == truth.region_cycles
        assert loaded.miss_count() == truth.miss_count()
        for a, b in zip(truth.misses, loaded.misses):
            assert a == b
        for a, b in zip(truth.stalls, loaded.stalls):
            assert a == b

    def test_queries_survive(self, truth, tmp_path):
        path = tmp_path / "truth.npz"
        repro_io.save_ground_truth(path, truth)
        loaded = repro_io.load_ground_truth(path)
        assert loaded.memory_stall_cycles() == truth.memory_stall_cycles()
        assert loaded.hidden_miss_count() == truth.hidden_miss_count()

    def test_empty_truth(self, tmp_path):
        path = tmp_path / "empty.npz"
        repro_io.save_ground_truth(path, GroundTruth())
        loaded = repro_io.load_ground_truth(path)
        assert loaded.miss_count() == 0
        assert loaded.stalls == []

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, format="emprof-capture-v1")
        with pytest.raises(ValueError):
            repro_io.load_ground_truth(path)


class TestEndToEndPersistence:
    def test_simulated_capture_roundtrip(self, olimex_run, tmp_path):
        from repro.emsignal import measure

        cap = measure(olimex_run, bandwidth_hz=40e6)
        path = tmp_path / "run.npz"
        repro_io.save_capture(path, cap)
        loaded = repro_io.load_capture(path)

        from repro.core.profiler import Emprof

        a = Emprof.from_capture(cap).profile()
        b = Emprof.from_capture(loaded).profile()
        assert a.miss_count == b.miss_count
        assert a.stall_cycles == pytest.approx(b.stall_cycles)
