"""Tests for capture/report/ground-truth serialization."""

import json

import numpy as np
import pytest

from repro import io as repro_io
from repro.core.events import DetectedStall, ProfileReport
from repro.emsignal.receiver import Capture
from repro.errors import CorruptCaptureError
from repro.sim.trace import (
    CAUSE_DATA_MEM,
    DLOAD,
    GroundTruth,
    IFETCH,
    MissRecord,
    StallRecord,
)


@pytest.fixture()
def capture():
    rng = np.random.default_rng(0)
    return Capture(
        magnitude=rng.random(500),
        sample_rate_hz=40e6,
        clock_hz=1.008e9,
        bandwidth_hz=40e6,
        region_names={1: "main", 2: "loop"},
    )


@pytest.fixture()
def report():
    stalls = [
        DetectedStall(10.5, 24.25, 210.0, 485.0, 0.04, is_refresh=False, region=1),
        DetectedStall(100.0, 220.0, 2000.0, 4400.0, 0.02, is_refresh=True),
    ]
    return ProfileReport(
        stalls=stalls,
        total_cycles=50_000.0,
        clock_hz=1.008e9,
        sample_period_cycles=25.2,
        region_names={1: "main"},
    )


@pytest.fixture()
def truth():
    misses = [
        MissRecord(0, DLOAD, 0x1000, 100, 380, stall_id=0, region=1),
        MissRecord(1, IFETCH, 0x2000, 500, 780, stall_id=None,
                   refresh_blocked=True, region=2),
    ]
    stalls = [StallRecord(0, 120, 380, CAUSE_DATA_MEM, [0], False, 1)]
    return GroundTruth(
        misses=misses,
        stalls=stalls,
        total_cycles=1000,
        total_instructions=4000,
        region_names={1: "a", 2: "b"},
        region_cycles={1: 600, 2: 400},
    )


class TestCaptureRoundtrip:
    def test_roundtrip(self, capture, tmp_path):
        path = tmp_path / "cap.npz"
        repro_io.save_capture(path, capture)
        loaded = repro_io.load_capture(path)
        np.testing.assert_array_equal(loaded.magnitude, capture.magnitude)
        assert loaded.sample_rate_hz == capture.sample_rate_hz
        assert loaded.clock_hz == capture.clock_hz
        assert loaded.bandwidth_hz == capture.bandwidth_hz
        assert loaded.region_names == capture.region_names

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, format="something-else", data=np.zeros(3))
        with pytest.raises(ValueError):
            repro_io.load_capture(path)


class TestReportRoundtrip:
    def test_roundtrip(self, report, tmp_path):
        path = tmp_path / "report.json"
        repro_io.save_report(path, report)
        loaded = repro_io.load_report(path)
        assert loaded.miss_count == report.miss_count
        assert loaded.total_cycles == report.total_cycles
        assert loaded.clock_hz == report.clock_hz
        assert loaded.region_names == report.region_names
        for a, b in zip(report.stalls, loaded.stalls):
            assert a == b

    def test_statistics_survive(self, report, tmp_path):
        path = tmp_path / "report.json"
        repro_io.save_report(path, report)
        loaded = repro_io.load_report(path)
        assert loaded.stall_cycles == pytest.approx(report.stall_cycles)
        assert loaded.refresh_count == report.refresh_count

    def test_dict_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            repro_io.report_from_dict({"format": "nope", "stalls": []})

    def test_report_without_evidence_has_no_evidence_key(self, report):
        # Pre-flight report JSON must stay byte-for-byte compatible.
        assert "evidence" not in repro_io.report_to_dict(report)

    def test_evidence_round_trips(self, report, tmp_path):
        from dataclasses import replace

        from repro.obs.flight import FLIGHT_SCHEMA_VERSION, ReportEvidence

        evidence = ReportEvidence(
            schema_version=FLIGHT_SCHEMA_VERSION,
            threshold=0.45,
            recover_threshold=0.7,
            min_duration_cycles=70.0,
            min_duration_samples=4,
            total_events=12,
        )
        with_evidence = replace(report, evidence=evidence)
        path = tmp_path / "evidence.json"
        repro_io.save_report(path, with_evidence)
        loaded = repro_io.load_report(path)
        assert loaded.evidence == evidence


class TestFlightSidecarIO:
    def test_save_and_load(self, tmp_path):
        from repro.obs.flight import (
            FLIGHT_SCHEMA_VERSION,
            FlightEvent,
            FlightRecorder,
        )

        recorder = FlightRecorder(capacity=8)
        recorder.record(
            FlightEvent(
                schema_version=FLIGHT_SCHEMA_VERSION, kind="finish", pos=9.0
            )
        )
        path = tmp_path / "run.flight"
        assert repro_io.save_flight(path, recorder, capture="cap.npz") == 1
        header, events = repro_io.load_flight(path)
        assert header["capture"] == "cap.npz"
        assert events[0].kind == "finish"

    def test_load_missing_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            repro_io.load_flight(tmp_path / "absent.flight")

    def test_load_garbage_is_corrupt_capture_error(self, tmp_path):
        path = tmp_path / "garbage.flight"
        path.write_text("not a flight sidecar\n")
        with pytest.raises(CorruptCaptureError, match="flight"):
            repro_io.load_flight(path)


class TestGroundTruthRoundtrip:
    def test_roundtrip(self, truth, tmp_path):
        path = tmp_path / "truth.npz"
        repro_io.save_ground_truth(path, truth)
        loaded = repro_io.load_ground_truth(path)
        assert loaded.total_cycles == truth.total_cycles
        assert loaded.total_instructions == truth.total_instructions
        assert loaded.region_names == truth.region_names
        assert loaded.region_cycles == truth.region_cycles
        assert loaded.miss_count() == truth.miss_count()
        for a, b in zip(truth.misses, loaded.misses):
            assert a == b
        for a, b in zip(truth.stalls, loaded.stalls):
            assert a == b

    def test_queries_survive(self, truth, tmp_path):
        path = tmp_path / "truth.npz"
        repro_io.save_ground_truth(path, truth)
        loaded = repro_io.load_ground_truth(path)
        assert loaded.memory_stall_cycles() == truth.memory_stall_cycles()
        assert loaded.hidden_miss_count() == truth.hidden_miss_count()

    def test_empty_truth(self, tmp_path):
        path = tmp_path / "empty.npz"
        repro_io.save_ground_truth(path, GroundTruth())
        loaded = repro_io.load_ground_truth(path)
        assert loaded.miss_count() == 0
        assert loaded.stalls == []

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, format="emprof-capture-v1")
        with pytest.raises(ValueError):
            repro_io.load_ground_truth(path)


class TestCorruptionDetection:
    """v2 checksum/length verification and typed corruption errors."""

    def save(self, capture, tmp_path, **overrides):
        path = tmp_path / "cap.npz"
        repro_io.save_capture(path, capture)
        if overrides:
            with np.load(path, allow_pickle=False) as data:
                fields = {k: data[k] for k in data.files}
            fields.update(overrides)
            np.savez_compressed(path, **fields)
        return path

    def test_error_names_the_file(self, capture, tmp_path):
        path = self.save(capture, tmp_path, checksum=np.int64(1))
        with pytest.raises(CorruptCaptureError) as excinfo:
            repro_io.load_capture(path)
        assert str(path) in str(excinfo.value)
        assert str(excinfo.value.path) == str(path)
        assert isinstance(excinfo.value, ValueError)  # back-compat

    def test_detects_bit_rot(self, capture, tmp_path):
        flipped = capture.magnitude.copy()
        flipped[100] += 1e-9
        path = self.save(capture, tmp_path, magnitude=flipped)
        with pytest.raises(CorruptCaptureError, match="checksum"):
            repro_io.load_capture(path)

    def test_detects_truncated_array(self, capture, tmp_path):
        path = self.save(capture, tmp_path, magnitude=capture.magnitude[:100])
        with pytest.raises(CorruptCaptureError, match="truncated"):
            repro_io.load_capture(path)

    def test_detects_truncated_file(self, capture, tmp_path):
        path = self.save(capture, tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptCaptureError):
            repro_io.load_capture(path)

    def test_rejects_non_npz_garbage(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(CorruptCaptureError):
            repro_io.load_capture(path)

    def test_missing_field(self, capture, tmp_path):
        path = tmp_path / "cap.npz"
        np.savez(path, format="emprof-capture-v1",
                 magnitude=capture.magnitude)
        with pytest.raises(CorruptCaptureError, match="missing field"):
            repro_io.load_capture(path)

    def test_malformed_region_json(self, capture, tmp_path):
        path = self.save(
            capture, tmp_path, region_names="{not json"
        )
        with pytest.raises(CorruptCaptureError, match="region_names"):
            repro_io.load_capture(path)

    def test_non_dict_region_json(self, capture, tmp_path):
        path = self.save(capture, tmp_path, region_names="[1, 2]")
        with pytest.raises(CorruptCaptureError, match="region_names"):
            repro_io.load_capture(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            repro_io.load_capture(tmp_path / "nope.npz")

    def test_v1_capture_without_checksum_loads(self, capture, tmp_path):
        path = tmp_path / "v1.npz"
        np.savez_compressed(
            path,
            format="emprof-capture-v1",
            magnitude=capture.magnitude,
            sample_rate_hz=capture.sample_rate_hz,
            clock_hz=capture.clock_hz,
            bandwidth_hz=capture.bandwidth_hz,
            region_names=json.dumps(
                {str(k): v for k, v in capture.region_names.items()}
            ),
        )
        loaded = repro_io.load_capture(path)
        np.testing.assert_array_equal(loaded.magnitude, capture.magnitude)
        assert loaded.region_names == capture.region_names

    def test_truth_checksum_mismatch(self, truth, tmp_path):
        path = tmp_path / "truth.npz"
        repro_io.save_ground_truth(path, truth)
        with np.load(path, allow_pickle=False) as data:
            fields = {k: data[k] for k in data.files}
        fields["miss_addr"] = np.asarray(fields["miss_addr"]) + 1
        np.savez_compressed(path, **fields)
        with pytest.raises(CorruptCaptureError, match="checksum"):
            repro_io.load_ground_truth(path)

    def test_truth_truncated_stalls(self, truth, tmp_path):
        path = tmp_path / "truth.npz"
        repro_io.save_ground_truth(path, truth)
        with np.load(path, allow_pickle=False) as data:
            fields = {k: data[k] for k in data.files}
        fields["n_stalls"] = np.int64(int(fields["n_stalls"]) + 2)
        np.savez_compressed(path, **fields)
        with pytest.raises(CorruptCaptureError, match="truncated"):
            repro_io.load_ground_truth(path)

    def test_truth_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            repro_io.load_ground_truth(tmp_path / "nope.npz")


class TestEndToEndPersistence:
    def test_simulated_capture_roundtrip(self, olimex_run, tmp_path):
        from repro.emsignal import measure

        cap = measure(olimex_run, bandwidth_hz=40e6)
        path = tmp_path / "run.npz"
        repro_io.save_capture(path, cap)
        loaded = repro_io.load_capture(path)

        from repro.core.profiler import Emprof

        a = Emprof.from_capture(cap).profile()
        b = Emprof.from_capture(loaded).profile()
        assert a.miss_count == b.miss_count
        assert a.stall_cycles == pytest.approx(b.stall_cycles)
