"""Unit tests for the stride prefetcher."""

import numpy as np

from repro.sim.cache import Cache
from repro.sim.config import CacheConfig
from repro.sim.prefetcher import StridePrefetcher


def setup(degree=2):
    llc = Cache(CacheConfig(64 * 1024, associativity=8), np.random.default_rng(0))
    return llc, StridePrefetcher(llc, degree=degree)


def miss_stream(pf, start_line, stride, count, line_bytes=64):
    for k in range(count):
        pf.on_llc_miss((start_line + k * stride) * line_bytes)


class TestStrideDetection:
    def test_unit_stride_confirmed_and_prefetched(self):
        llc, pf = setup()
        miss_stream(pf, 100, 1, 3)
        assert pf.issued >= 2
        # The next lines ahead of the stream are now resident.
        assert llc.probe(103 * 64)

    def test_large_stride_covered(self):
        llc, pf = setup()
        miss_stream(pf, 0, 16, 3)
        assert llc.probe(48 * 64)

    def test_negative_stride_covered(self):
        llc, pf = setup()
        miss_stream(pf, 1000, -2, 3)
        assert llc.probe((1000 - 3 * 2) * 64)

    def test_random_stream_issues_nothing(self):
        llc, pf = setup()
        rng = np.random.default_rng(5)
        for _ in range(40):
            pf.on_llc_miss(int(rng.integers(0, 1 << 20)) * 64)
        # A random stream should trigger essentially no prefetches.
        assert pf.issued <= 2

    def test_degree_controls_coverage(self):
        _, pf1 = setup(degree=1)
        miss_stream(pf1, 0, 1, 4)
        _, pf4 = setup(degree=4)
        miss_stream(pf4, 0, 1, 4)
        assert pf4.issued > pf1.issued

    def test_zero_degree_disabled(self):
        llc, pf = setup(degree=0)
        miss_stream(pf, 0, 1, 10)
        assert pf.issued == 0

    def test_repeat_miss_same_line_ignored(self):
        llc, pf = setup()
        for _ in range(5):
            pf.on_llc_miss(64 * 10)
        assert pf.issued == 0

    def test_already_resident_counts_hint(self):
        llc, pf = setup()
        llc.fill(3 * 64)
        llc.fill(4 * 64)
        miss_stream(pf, 0, 1, 3)  # wants to prefetch lines 3, 4
        assert pf.useful_hint >= 1

    def test_reset_clears_everything(self):
        llc, pf = setup()
        miss_stream(pf, 0, 1, 5)
        pf.reset()
        assert pf.issued == 0
        assert pf.useful_hint == 0
        # After reset, stream must be re-learned from scratch.
        pf.on_llc_miss(500 * 64)
        assert pf.issued == 0

    def test_rejects_negative_degree(self):
        import pytest

        llc, _ = setup()
        with pytest.raises(ValueError):
            StridePrefetcher(llc, degree=-1)

    def test_table_bounded(self):
        llc, pf = setup()
        # Many unrelated one-off misses; table must not grow unbounded.
        for k in range(100):
            pf.on_llc_miss((k * 1000 + k * k) * 64)
        assert len(pf._streams) <= StridePrefetcher.TABLE_SIZE
