"""Tests for the post-profiling analysis layer."""

import pytest

from repro.analysis import (
    BALANCED,
    COMPUTE_BOUND,
    MEMORY_BOUND,
    MEMORY_SENSITIVE,
    boundedness,
    compare_reports,
    dvfs_profitability,
    dvfs_runtime_scale,
    overlap_factor,
    rank_regions,
    speedup_headroom,
)
from repro.attribution.report import RegionReport
from repro.core.events import DetectedStall, ProfileReport
from repro.sim.trace import CAUSE_DATA_MEM, DLOAD, GroundTruth, MissRecord, StallRecord


def make_report(stall_cycles, total_cycles, refresh_cycles=0.0):
    stalls = []
    if stall_cycles > 0:
        stalls.append(DetectedStall(0, stall_cycles / 20, 0, stall_cycles, 0.05))
    if refresh_cycles > 0:
        stalls.append(
            DetectedStall(
                1000, 1000 + refresh_cycles / 20, 20_000, 20_000 + refresh_cycles,
                0.05, is_refresh=True,
            )
        )
    return ProfileReport(
        stalls=stalls,
        total_cycles=total_cycles,
        clock_hz=1e9,
        sample_period_cycles=20.0,
    )


class TestBoundedness:
    def test_compute_bound(self):
        verdict = boundedness(make_report(100, 10_000))
        assert verdict.label == COMPUTE_BOUND

    def test_balanced(self):
        assert boundedness(make_report(1_000, 10_000)).label == BALANCED

    def test_memory_sensitive(self):
        assert boundedness(make_report(3_000, 10_000)).label == MEMORY_SENSITIVE

    def test_memory_bound(self):
        assert boundedness(make_report(7_000, 10_000)).label == MEMORY_BOUND

    def test_refresh_share(self):
        verdict = boundedness(make_report(1_000, 100_000, refresh_cycles=1_000))
        assert verdict.refresh_share == pytest.approx(0.5)

    def test_empty_report(self):
        verdict = boundedness(make_report(0, 10_000))
        assert verdict.label == COMPUTE_BOUND
        assert verdict.refresh_share == 0.0


class TestOverlapFactor:
    def make_truth(self, misses, groups):
        recs = [
            MissRecord(i, DLOAD, 0, i * 1000, i * 1000 + 280, stall_id=min(i, groups - 1))
            for i in range(misses)
        ]
        stalls = [
            StallRecord(j, j * 1000, j * 1000 + 280, CAUSE_DATA_MEM, [])
            for j in range(groups)
        ]
        return GroundTruth(misses=recs, stalls=stalls, total_cycles=misses * 1000 + 1)

    def test_no_overlap(self):
        assert overlap_factor(self.make_truth(10, 10)) == pytest.approx(1.0)

    def test_two_to_one(self):
        assert overlap_factor(self.make_truth(10, 5)) == pytest.approx(2.0)

    def test_no_stalls(self):
        truth = GroundTruth(
            misses=[MissRecord(0, DLOAD, 0, 0, 280)], total_cycles=1000
        )
        assert overlap_factor(truth) == 1.0


class TestSpeedupHeadroom:
    def test_no_stalls_no_speedup(self):
        assert speedup_headroom(make_report(0, 10_000)) == pytest.approx(1.0)

    def test_half_stalled_doubles(self):
        assert speedup_headroom(make_report(5_000, 10_000)) == pytest.approx(2.0)

    def test_partial_removal(self):
        r = make_report(5_000, 10_000)
        assert speedup_headroom(r, removable_fraction=0.5) == pytest.approx(4 / 3)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            speedup_headroom(make_report(100, 1000), removable_fraction=1.5)


class TestRankRegions:
    def rows(self):
        return [
            RegionReport("small_hot", cycles=1_000, total_misses=50,
                         miss_rate_per_mcycle=50_000, stall_percent=60.0,
                         avg_latency_cycles=280),
            RegionReport("big_warm", cycles=50_000, total_misses=300,
                         miss_rate_per_mcycle=6_000, stall_percent=20.0,
                         avg_latency_cycles=280),
            RegionReport("big_cold", cycles=49_000, total_misses=3,
                         miss_rate_per_mcycle=60, stall_percent=0.5,
                         avg_latency_cycles=280),
        ]

    def test_big_warm_outranks_small_hot(self):
        # 20% of half the program beats 60% of 1% of it.
        ranking = rank_regions(self.rows())
        assert ranking[0].region == "big_warm"
        assert ranking[-1].region == "big_cold"

    def test_scores_are_program_fractions(self):
        ranking = rank_regions(self.rows())
        assert 0.0 < ranking[0].score < 1.0
        total = sum(p.score for p in ranking)
        assert total < 1.0

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            rank_regions([], total_cycles=0)


class TestDvfs:
    def test_compute_bound_scales_with_clock(self):
        # No stalls: doubling the clock halves runtime.
        r = make_report(0, 10_000)
        assert dvfs_runtime_scale(r, 2.0) == pytest.approx(0.5)
        assert dvfs_profitability(r, 2.0) == pytest.approx(2.0)

    def test_fully_memory_bound_immune_to_clock(self):
        r = make_report(10_000, 10_000)
        assert dvfs_runtime_scale(r, 2.0) == pytest.approx(1.0)
        assert dvfs_runtime_scale(r, 0.5) == pytest.approx(1.0)

    def test_half_stalled_midpoint(self):
        r = make_report(5_000, 10_000)
        assert dvfs_runtime_scale(r, 2.0) == pytest.approx(0.75)

    def test_downclocking_memory_bound_is_cheap(self):
        # The DVFS-profitability insight: a memory-bound program loses
        # little runtime at a lower clock.
        bound = make_report(8_000, 10_000)
        compute = make_report(500, 10_000)
        assert dvfs_runtime_scale(bound, 0.5) < dvfs_runtime_scale(compute, 0.5)

    def test_identity_scale(self):
        r = make_report(3_000, 10_000)
        assert dvfs_runtime_scale(r, 1.0) == pytest.approx(1.0)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            dvfs_runtime_scale(make_report(0, 100), 0.0)


class TestCompareReports:
    def test_improvement_detected(self):
        before = make_report(5_000, 10_000)
        after = make_report(1_000, 6_500)
        delta = compare_reports(before, after)
        assert delta.improved
        assert delta.stall_cycle_delta == pytest.approx(-4_000)
        assert delta.time_speedup == pytest.approx(10_000 / 6_500)

    def test_regression_detected(self):
        before = make_report(1_000, 10_000)
        after = make_report(3_000, 12_000)
        assert not compare_reports(before, after).improved

    def test_rejects_empty_after(self):
        with pytest.raises(ValueError):
            compare_reports(make_report(0, 100), make_report(0, 0))

    def test_end_to_end_prefetcher_comparison(self, micro_workload):
        # A device with a prefetcher vs without, on a *streaming*
        # workload: the comparison layer should report the win.
        from repro import simulate, Emprof
        from repro.devices import olimex, samsung
        from repro.workloads import spec_workload

        wl = spec_workload("equake")
        before = Emprof.from_simulation(simulate(wl, olimex())).profile()
        after = Emprof.from_simulation(simulate(wl, samsung())).profile()
        delta = compare_reports(before, after)
        assert delta.miss_delta < 0  # fewer stalls with the prefetcher
